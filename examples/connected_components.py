"""Choosing a components algorithm by graph shape: LP vs SV vs SCLP.

Section 6.2's story: label propagation (adjacent-vertex) needs O(diameter)
rounds, so on high-diameter road networks the pointer-jumping algorithms
(trans-vertex CC-SV, hybrid CC-SCLP) win by skipping many hops per round -
while on low-diameter power-law graphs LP's hub-driven flooding wins. This
example runs all three on both graph shapes and prints the crossover.

Run:  python examples/connected_components.py
"""

from repro.algorithms import cc_lp, cc_sclp, cc_sv
from repro.baselines import gluon_cc_lp
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition

HOSTS = 8


def profile(graph_name, graph):
    print(f"\n== {graph_name}: {graph.num_nodes} nodes, {graph.num_edges} edges ==")
    rows = []
    for name, algorithm in (
        ("Kimbap CC-LP", cc_lp),
        ("Kimbap CC-SCLP", cc_sclp),
        ("Kimbap CC-SV", cc_sv),
        ("Gluon CC-LP", gluon_cc_lp),
    ):
        pgraph = partition(graph, HOSTS, "cvc")
        cluster = Cluster(HOSTS, threads_per_host=48)
        result = algorithm(cluster, pgraph)
        elapsed = cluster.elapsed()
        rows.append((name, result.rounds, elapsed))
        print(
            f"  {name:15s} rounds={result.rounds:4d} "
            f"comp={elapsed.computation:7.3f}s comm={elapsed.communication:7.3f}s "
            f"total={elapsed.total:7.3f}s"
        )
    winner = min(rows, key=lambda row: row[2].total)
    print(f"  -> fastest: {winner[0]}")
    return winner[0]


def main() -> None:
    road = generators.road_like(64, 8, seed=3)
    powerlaw = generators.powerlaw_like(9, seed=3)

    road_winner = profile("high-diameter road network", road)
    powerlaw_winner = profile("low-diameter power-law graph", powerlaw)

    print(
        "\npaper's crossover: pointer jumping wins on high diameters, "
        "label propagation on power laws"
    )
    print(f"   road winner: {road_winner} | power-law winner: {powerlaw_winner}")


if __name__ == "__main__":
    main()
