"""Community detection on a social-network analog: Louvain vs Leiden vs Vite.

The scenario the paper's introduction motivates: community detection needs
*trans-vertex* operators (a node must read the totals of its neighbors'
clusters, which live on arbitrary nodes), so it cannot run on
adjacent-vertex frameworks at all. This example runs

* Kimbap's distributed Louvain (LV),
* Kimbap's distributed Leiden (LD) - the first distributed Leiden,
  guaranteeing internally connected communities,
* the hand-optimized Vite baseline,

on the same graph and compares quality and modeled cost.

Run:  python examples/community_detection.py
"""

import networkx as nx

from repro.algorithms import leiden, louvain
from repro.baselines import vite_louvain
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition

HOSTS = 4


def run(name, fn, graph):
    pgraph = partition(graph, HOSTS, "oec")  # Vite supports edge-cuts only
    cluster = Cluster(HOSTS, threads_per_host=48)
    result = fn(cluster, pgraph)
    elapsed = cluster.elapsed()
    print(
        f"{name:10s} Q={result.stats['modularity']:.4f} "
        f"communities={result.stats['num_communities']:4d} "
        f"rounds={result.rounds:4d} modeled={elapsed.total:8.3f}s"
    )
    return result


def main() -> None:
    graph = generators.powerlaw_like(9, seed=12, weighted=True)
    print(f"social-network analog: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    lv = run("Kimbap-LV", louvain, graph)
    ld = run("Kimbap-LD", leiden, graph)
    vite = run("Vite", vite_louvain, graph)

    # Leiden's guarantee: every community is internally connected.
    nx_graph = graph.to_networkx().to_undirected()
    disconnected = 0
    for community in set(ld.values.values()):
        members = [n for n, c in ld.values.items() if c == community]
        if not nx.is_connected(nx_graph.subgraph(members)):
            disconnected += 1
    print(f"\nLeiden disconnected communities: {disconnected} (guaranteed 0)")
    assert disconnected == 0

    same_quality = abs(lv.stats["modularity"] - vite.stats["modularity"]) < 1e-9
    print(f"Kimbap-LV and Vite agree exactly (same algorithm): {same_quality}")


if __name__ == "__main__":
    main()
