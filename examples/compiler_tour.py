"""A tour of the Kimbap compiler (paper Section 5).

Takes the Shiloach-Vishkin program exactly as Figure 4 writes it (a
shared-memory KimbapWhile + ParFor), shows the operator analysis, the
generated BSP code with and without the Section 5.2 optimizations
(compare with Figure 8!), and runs both to the same answer while counting
the communication the optimizations save.

Run:  python examples/compiler_tour.py
"""

from repro.cluster import Cluster
from repro.compiler import analyze_operator, compile_program
from repro.compiler.apps import compiled_cc_sv
from repro.compiler.programs import cc_sv_hook, cc_sv_shortcut
from repro.graph import generators
from repro.partition import partition


def show_analysis(name, program):
    analysis = analyze_operator(program.par_for)
    kind = "trans-vertex" if analysis.is_trans_vertex else "adjacent-vertex"
    print(f"operator {name!r}: {kind}")
    for access in analysis.reads:
        print(f"  read  {access.stmt}  [key is {access.kind}]")
    for access in analysis.reduces:
        print(f"  reduce {access.stmt}  [key is {access.kind}]")
    print(f"  accesses edges: {analysis.accesses_edges}")
    print()


def main() -> None:
    hook, shortcut = cc_sv_hook(), cc_sv_shortcut()

    print("=" * 64)
    print("1. What the programmer wrote (Figure 4), analyzed")
    print("=" * 64)
    show_analysis("hook", hook)
    show_analysis("shortcut", shortcut)

    print("=" * 64)
    print("2. Generated code WITH optimizations (compare Figure 8)")
    print("=" * 64)
    print(compile_program(hook).describe())
    print()
    print(compile_program(shortcut).describe())
    print()

    print("=" * 64)
    print("3. Generated code WITHOUT optimizations (Figure 12's NO-OPT)")
    print("=" * 64)
    print(compile_program(hook, optimize=False).describe())
    print()

    print("=" * 64)
    print("4. Run both on the simulated cluster")
    print("=" * 64)
    graph = generators.road_like(24, 8, seed=5)
    for optimize in (True, False):
        pgraph = partition(graph, 4, "cvc")
        cluster = Cluster(4, threads_per_host=48)
        result = compiled_cc_sv(cluster, pgraph, optimize=optimize)
        elapsed = cluster.elapsed()
        mode = "OPT   " if optimize else "NO-OPT"
        print(
            f"{mode} components={len(set(result.values.values()))} "
            f"total={elapsed.total:6.3f}s "
            f"messages={cluster.log.total_messages():6d} "
            f"bytes={cluster.log.total_bytes():8d}"
        )


if __name__ == "__main__":
    main()
