"""Quickstart: connected components on a simulated 4-host cluster.

Builds a synthetic road network, partitions it with a Cartesian
vertex-cut, runs the Shiloach-Vishkin algorithm (the paper's running
example - a *trans-vertex* program no adjacent-vertex framework can
express), and prints the modeled execution profile.

Run:  python examples/quickstart.py
"""

from repro.algorithms import cc_sv
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition

def main() -> None:
    # 1. An input graph: a high-diameter road-network analog.
    graph = generators.road_like(rows=32, cols=8, seed=42)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} directed edges")

    # 2. Partition it across 4 simulated hosts (Cartesian vertex-cut, as
    #    the paper uses for connected components).
    pgraph = partition(graph, num_hosts=4, policy="cvc")
    print(
        f"partitioned: policy={pgraph.policy}, "
        f"replication factor {pgraph.replication_factor():.2f}"
    )

    # 3. A cluster: 4 hosts x 48 virtual threads (one Stampede2 node each).
    cluster = Cluster(num_hosts=4, threads_per_host=48)

    # 4. Run CC-SV. Inside: hook reduces onto parent(parent(n)) - an
    #    arbitrary node's property - through the distributed node-property
    #    map; shortcut pointer-jumps with request/response rounds.
    result = cc_sv(cluster, pgraph)

    components = sorted(set(result.values.values()))
    print(f"\nfound {len(components)} connected component(s) in {result.rounds} BSP rounds")

    elapsed = cluster.elapsed()
    print(
        f"modeled time: {elapsed.total:.3f}s "
        f"(computation {elapsed.computation:.3f}s, "
        f"communication {elapsed.communication:.3f}s)"
    )
    print(
        f"traffic: {cluster.log.total_messages()} messages, "
        f"{cluster.log.total_bytes()} bytes"
    )


if __name__ == "__main__":
    main()
