"""The tutorial's custom algorithm, end to end (docs/TUTORIAL.md).

Degree-weighted label spreading built directly on the node-property-map
API, then label propagation written as Figure 4-style *source text* and
pushed through the compiler. Shows the full surface a downstream user
touches when writing a new algorithm.

Run:  python examples/custom_algorithm.py
"""

from repro import verify
from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.compiler import compile_program, parse_program
from repro.compiler.interp import run_compiled
from repro.core import MIN, SUM, NodePropMap
from repro.graph import generators
from repro.partition import partition
from repro.runtime import kimbap_while, par_for


def main() -> None:
    graph = generators.powerlaw_like(8, seed=1)
    pgraph = partition(graph, num_hosts=4, policy="cvc")
    cluster = Cluster(num_hosts=4, threads_per_host=48)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, 4 hosts\n")

    # -- global degrees via SUM reduction (vertex cut: no host knows them) --
    degree = NodePropMap(cluster, pgraph, "degree")
    label = NodePropMap(cluster, pgraph, "label")
    degree.set_initial(lambda node: 0)
    label.set_initial(lambda node: node)

    def local_degree(ctx):
        if ctx.part.degree(ctx.local):
            degree.reduce(ctx.host, ctx.thread, ctx.node, ctx.part.degree(ctx.local), SUM)

    par_for(cluster, pgraph, "all", local_degree, label="deg")
    degree.reduce_sync()

    # -- custom operator: adopt the min label among higher-degree neighbors --
    label.pin_mirrors(invariant="none")
    degree.pin_mirrors(invariant="none")

    def round_body():
        def operator(ctx):
            my_label = label.read_local(ctx.host, ctx.local)
            my_degree = degree.read_local(ctx.host, ctx.local)
            for edge in ctx.edges():
                dst_local = ctx.edge_dst_local(edge)
                if degree.read_local(ctx.host, dst_local) > my_degree:
                    neighbor_label = label.read_local(ctx.host, dst_local)
                    if neighbor_label < my_label:
                        label.reduce(
                            ctx.host, ctx.thread, ctx.node, neighbor_label, MIN
                        )

        par_for(cluster, pgraph, "all", operator, label="spread")
        label.reduce_sync()
        label.broadcast_sync()

    rounds = kimbap_while(label, round_body)
    label.unpin_mirrors()
    degree.unpin_mirrors()
    remaining = len(set(label.snapshot().values()))
    print(f"degree-weighted spreading: {rounds} rounds, {remaining} labels remain")

    # -- finish the job with compiled label propagation from source text --
    program = parse_program(
        """
        while_updated label {
          parfor src in nodes {
            l = label.read(src);
            for e in edges(src) {
              label.reduce(e.dst, l, min);
            }
          }
        }
        """,
        name="spread_lp",
    )
    loop = compile_program(program)
    print("\ncompiled continuation:")
    print(loop.describe())
    run_compiled(loop, cluster, pgraph, {"label": label})
    verify.check_components(graph, label.snapshot())
    print("\nfinal labels are exactly the connected components (verified)")
    elapsed = cluster.elapsed()
    print(
        f"modeled: {elapsed.total:.3f}s "
        f"({elapsed.computation:.3f} comp / {elapsed.communication:.3f} comm)"
    )


if __name__ == "__main__":
    main()
