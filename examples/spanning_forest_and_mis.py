"""MSF and MIS: the remaining trans-vertex / adjacent-vertex applications.

Boruvka's minimum spanning forest needs reductions keyed by dynamically
computed component roots (trans-vertex); priority MIS is purely
adjacent-vertex. This example runs both on a weighted road analog, checks
the forest against networkx, and shows how the same programs run unchanged
on every runtime variant of Section 6.4 - at very different modeled cost.

Run:  python examples/spanning_forest_and_mis.py
"""

import networkx as nx

from repro.algorithms import boruvka_msf, mis
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import generators
from repro.partition import partition

HOSTS = 4


def main() -> None:
    graph = generators.road_like(24, 8, seed=9, weighted=True)
    print(f"weighted road analog: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    # --- minimum spanning forest -----------------------------------------
    pgraph = partition(graph, HOSTS, "cvc")
    cluster = Cluster(HOSTS, threads_per_host=48)
    msf = boruvka_msf(cluster, pgraph)
    nx_weight = sum(
        data["weight"]
        for _, _, data in nx.minimum_spanning_edges(
            graph.to_networkx().to_undirected(), data=True
        )
    )
    print(
        f"MSF: {int(msf.stats['forest_edges'])} edges, "
        f"weight {msf.stats['forest_weight']:.2f} "
        f"(networkx: {nx_weight:.2f}) in {msf.rounds} rounds, "
        f"modeled {cluster.elapsed().total:.3f}s"
    )
    assert abs(msf.stats["forest_weight"] - nx_weight) < 1e-6

    # --- maximal independent set -----------------------------------------
    pgraph = partition(graph, HOSTS, "cvc")
    cluster = Cluster(HOSTS, threads_per_host=48)
    result = mis(cluster, pgraph)
    print(
        f"MIS: {int(result.stats['set_size'])} nodes selected "
        f"in {result.rounds} rounds, modeled {cluster.elapsed().total:.3f}s"
    )

    # --- same program, every runtime variant ------------------------------
    print("\nMIS across runtime variants (identical output, different cost):")
    baseline = None
    for variant in (
        RuntimeVariant.KIMBAP,
        RuntimeVariant.SGR_CF,
        RuntimeVariant.SGR_ONLY,
        RuntimeVariant.MC,
    ):
        pgraph = partition(graph, HOSTS, "cvc")
        cluster = Cluster(HOSTS, threads_per_host=48)
        result = mis(cluster, pgraph, variant=variant)
        if baseline is None:
            baseline = result.values
        agrees = result.values == baseline
        print(
            f"  {variant.label:12s} modeled={cluster.elapsed().total:8.3f}s "
            f"matches-default={agrees}"
        )
        assert agrees


if __name__ == "__main__":
    main()
