"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs must go through `setup.py develop`. All real metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
