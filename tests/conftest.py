"""Shared fixtures: small graphs and clusters used across the suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition


@pytest.fixture
def road_graph():
    return generators.road_like(8, 4, seed=1)


@pytest.fixture
def powerlaw_graph():
    return generators.powerlaw_like(6, seed=3)


@pytest.fixture
def cluster4():
    return Cluster(4, threads_per_host=8)


@pytest.fixture
def road_pgraph(road_graph):
    return partition(road_graph, 4, "oec")
