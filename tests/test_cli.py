"""CLI tests: argument wiring and output of every subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "CC-SV"])
        assert args.graph == "road"
        assert args.hosts == 4
        assert args.variant == "sgr+cf+gar"

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "PageRank"])

    def test_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "MIS", "--graph", "twitter"])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "MIS", "--variant", "turbo"])


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for name in ("road", "powerlaw", "web", "web_xl"):
            assert name in out

    def test_run_cc_sv(self, capsys):
        assert main(["run", "CC-SV", "--hosts", "2", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "Kimbap" in out
        assert "rounds:" in out
        assert "messages:" in out

    def test_run_with_variant(self, capsys):
        code = main(
            ["run", "MIS", "--hosts", "2", "--threads", "4", "--variant", "sgr-only"]
        )
        assert code == 0
        assert "sgr-only" in capsys.readouterr().out

    def test_variants_sweep(self, capsys):
        assert main(["variants", "MIS", "--hosts", "2", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        for label in ("mc", "sgr-only", "sgr+cf", "Kimbap"):
            assert label in out  # the default variant prints as plain Kimbap

    def test_compare_lv(self, capsys):
        assert main(["compare-lv", "--hosts", "2", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "Vite" in out
        assert "Galois" in out
        assert "speedup over Vite" in out
