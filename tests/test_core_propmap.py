"""Node-property map tests: BSP semantics across all runtime variants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, SUM, NodePropMap, RuntimeVariant
from repro.graph import generators
from repro.partition import partition

ALL_VARIANTS = list(RuntimeVariant)


def make_map(variant=RuntimeVariant.KIMBAP, hosts=3, policy="oec", graph=None):
    graph = graph or generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, hosts, policy)
    cluster = Cluster(hosts, threads_per_host=4)
    prop = NodePropMap(cluster, pgraph, "p", variant=variant)
    return cluster, pgraph, prop


@pytest.mark.parametrize("variant", ALL_VARIANTS)
class TestEveryVariant:
    def test_initialize_and_read_own_masters(self, variant):
        cluster, pgraph, prop = make_map(variant)
        prop.set_initial(lambda n: n * 10)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for host in range(cluster.num_hosts):
                for node in pgraph.parts[host].masters_global.tolist():
                    assert prop.read(host, node) == node * 10

    def test_snapshot_reflects_init(self, variant):
        _, pgraph, prop = make_map(variant)
        prop.set_initial(lambda n: n + 1)
        snap = prop.snapshot()
        assert len(snap) == pgraph.num_nodes
        assert all(snap[n] == n + 1 for n in snap)

    def test_reduce_visible_next_round_at_owner(self, variant):
        cluster, pgraph, prop = make_map(variant)
        prop.set_initial(lambda n: 100)
        target = 5
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, target, 7, MIN)
        prop.reduce_sync()
        assert prop.snapshot()[target] == 7
        assert prop.is_updated()

    def test_no_change_means_not_updated(self, variant):
        cluster, _, prop = make_map(variant)
        prop.set_initial(lambda n: 0)
        prop.reset_updated()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, 3, 5, MIN)  # 0 is already smaller
        prop.reduce_sync()
        assert not prop.is_updated()

    def test_request_then_read_remote(self, variant):
        cluster, pgraph, prop = make_map(variant)
        prop.set_initial(lambda n: n * 2)
        # host 0 requests a node owned elsewhere
        remote = pgraph.parts[-1].masters_global[0]
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(0, remote) == remote * 2

    def test_remote_cache_dropped_after_reduce_sync(self, variant):
        cluster, pgraph, prop = make_map(variant)
        prop.set_initial(lambda n: 1)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        prop.reduce_sync()
        if variant.uses_gar:
            # GAR: the sorted remote arrays are gone, reads must fail.
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                with pytest.raises(KeyError):
                    prop.read(0, remote)

    def test_concurrent_reduces_combine(self, variant):
        cluster, _, prop = make_map(variant)
        prop.set_initial(lambda n: 1000)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread, value in enumerate([30, 10, 20]):
                prop.reduce(0, thread, 2, value, MIN)
            prop.reduce(1, 0, 2, 5, MIN)  # another host piles on
        prop.reduce_sync()
        assert prop.snapshot()[2] == 5

    def test_sum_reduction(self, variant):
        cluster, _, prop = make_map(variant)
        prop.set_initial(lambda n: 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(3):
                prop.reduce(0, thread, 1, 10, SUM)
        prop.reduce_sync()
        assert prop.snapshot()[1] == 30

    def test_mixed_ops_rejected(self, variant):
        cluster, _, prop = make_map(variant)
        prop.set_initial(lambda n: 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, 1, 1, SUM)
            with pytest.raises(ValueError):
                prop.reduce(0, 0, 2, 1, MIN)


class TestGarSpecifics:
    def test_master_read_is_vector_read(self):
        cluster, pgraph, prop = make_map(RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        node = int(pgraph.parts[0].masters_global[0])
        cluster.reset()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.read(0, node)
        counters = cluster.log.total_counters()
        assert counters.vector_reads == 1
        assert counters.hash_probes == 0
        assert counters.binsearch_steps == 0

    def test_remote_read_uses_binary_search(self):
        cluster, pgraph, prop = make_map(RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        cluster.reset()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.read(0, remote)
        assert cluster.log.total_counters().binsearch_steps >= 1

    def test_request_for_own_master_skipped(self):
        cluster, pgraph, prop = make_map(RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        own = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            assert not prop.request(0, own)
        assert len(prop.bitsets[0]) == 0

    def test_request_deduplicated(self):
        cluster, pgraph, prop = make_map(RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            assert prop.request(0, remote)
            assert not prop.request(0, remote)
        assert len(prop.bitsets[0]) == 1

    def test_unrequested_remote_read_raises(self):
        cluster, pgraph, prop = make_map(RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                prop.read(0, remote)


class TestPinnedMirrors:
    def make_pinned(self, policy="cvc", invariant="none"):
        graph = generators.powerlaw_like(6, seed=2)
        pgraph = partition(graph, 4, policy)
        cluster = Cluster(4, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "p", variant=RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        prop.pin_mirrors(invariant=invariant)
        return cluster, pgraph, prop

    def test_pin_materializes_mirror_values(self):
        cluster, pgraph, prop = self.make_pinned()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for part in pgraph.parts:
                for mirror in part.mirrors_global.tolist():
                    assert prop.read(part.host_id, mirror) == mirror

    def test_broadcast_refreshes_updated_mirrors(self):
        cluster, pgraph, prop = self.make_pinned()
        # find a node that has a mirror somewhere
        owner, mirror_host, node = None, None, None
        for candidate_owner, pairs in enumerate(pgraph.mirror_hosts_by_owner):
            if pairs:
                owner = candidate_owner
                mirror_host, ids = pairs[0]
                node = int(ids[0])
                break
        assert node is not None
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(owner, 0, node, -5, MIN)
        prop.reduce_sync()
        prop.broadcast_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(mirror_host, node) == -5

    def test_broadcast_without_updates_sends_nothing(self):
        cluster, _, prop = self.make_pinned()
        cluster.reset()
        prop.broadcast_sync()
        assert cluster.log.total_messages() == 0

    def test_unpin_drops_mirror_values(self):
        cluster, pgraph, prop = self.make_pinned()
        prop.unpin_mirrors()
        part = next(p for p in pgraph.parts if p.num_mirrors)
        mirror = int(part.mirrors_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                prop.read(part.host_id, mirror)

    def test_push_invariant_skips_outgoing_free_mirrors(self):
        """Under OEC no mirror has outgoing edges, so a push-invariant pin
        broadcasts nothing at all - Gluon's elision."""
        graph = generators.powerlaw_like(6, seed=2)
        pgraph = partition(graph, 4, "oec")
        cluster = Cluster(4, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "p", variant=RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        cluster.reset()
        prop.pin_mirrors(invariant="push")
        assert cluster.log.total_messages() == 0

    def test_none_invariant_broadcasts_to_all_mirrors(self):
        graph = generators.powerlaw_like(6, seed=2)
        pgraph = partition(graph, 4, "oec")
        cluster = Cluster(4, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "p", variant=RuntimeVariant.KIMBAP)
        prop.set_initial(lambda n: n)
        cluster.reset()
        prop.pin_mirrors(invariant="none")
        assert cluster.log.total_messages() > 0

    def test_bad_invariant_rejected(self):
        cluster, _, prop = self.make_pinned()
        with pytest.raises(ValueError):
            prop.pin_mirrors(invariant="sideways")


class TestCrossVariantAgreement:
    @given(
        st.lists(
            st.tuples(st.integers(0, 23), st.integers(-100, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_min_reductions_agree_everywhere(self, updates):
        """All four runtimes must produce identical canonical values for the
        same reduction stream - the paper's variants differ in cost only."""
        snapshots = []
        for variant in ALL_VARIANTS:
            cluster, pgraph, prop = make_map(variant)
            prop.set_initial(lambda n: 1000)
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                for index, (key, value) in enumerate(updates):
                    host = index % cluster.num_hosts
                    thread = index % cluster.threads_per_host
                    prop.reduce(host, thread, key, value, MIN)
            prop.reduce_sync()
            snapshots.append(prop.snapshot())
        assert all(snapshot == snapshots[0] for snapshot in snapshots[1:])


class TestMessageAccounting:
    def test_value_nbytes_scales_reduce_traffic(self):
        cluster8, pgraph, prop8 = make_map(RuntimeVariant.KIMBAP)
        prop8.set_initial(lambda n: 0)
        cluster8.reset()
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster8.phase(PhaseKind.REDUCE_COMPUTE):
            prop8.reduce(0, 0, remote, -1, MIN)
        prop8.reduce_sync()
        bytes8 = cluster8.log.total_bytes()

        cluster32, pgraph2, _ = make_map(RuntimeVariant.KIMBAP)
        prop32 = NodePropMap(
            cluster32, pgraph2, "wide", variant=RuntimeVariant.KIMBAP, value_nbytes=32
        )
        prop32.set_initial(lambda n: 0)
        cluster32.reset()
        with cluster32.phase(PhaseKind.REDUCE_COMPUTE):
            prop32.reduce(0, 0, remote, -1, MIN)
        prop32.reduce_sync()
        assert cluster32.log.total_bytes() > bytes8

    def test_mismatched_cluster_rejected(self):
        graph = generators.road_like(6, 4, seed=0)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(3)
        with pytest.raises(ValueError):
            NodePropMap(cluster, pgraph, "p")
