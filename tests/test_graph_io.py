"""Round-trip tests for graph serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, generators, io


class TestEdgeListFormat:
    def test_roundtrip_unweighted(self, tmp_path):
        graph = generators.powerlaw_like(5, seed=1)
        path = tmp_path / "graph.txt"
        io.save_edge_list(graph, path)
        loaded = io.load_edge_list(path)
        assert loaded.num_nodes == graph.num_nodes
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)

    def test_roundtrip_weighted(self, tmp_path):
        graph = generators.road_like(4, 4, seed=0, weighted=True)
        path = tmp_path / "graph.txt"
        io.save_edge_list(graph, path)
        loaded = io.load_edge_list(path)
        assert np.allclose(loaded.weights, graph.weights)

    def test_header_preserves_isolated_trailing_nodes(self, tmp_path):
        graph = Graph.from_edge_list(10, [(0, 1)])
        path = tmp_path / "graph.txt"
        io.save_edge_list(graph, path)
        assert io.load_edge_list(path).num_nodes == 10

    def test_headerless_file_infers_node_count(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 4\n")
        graph = io.load_edge_list(path)
        assert graph.num_nodes == 5
        assert graph.num_edges == 2

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n\n0 1\n\n# another\n1 0\n")
        assert io.load_edge_list(path).num_edges == 2

    def test_partial_weights_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 2.5\n1 0\n")
        with pytest.raises(ValueError):
            io.load_edge_list(path)


class TestNpzFormat:
    def test_roundtrip(self, tmp_path):
        graph = generators.web_like(5, seed=2, weighted=True)
        path = tmp_path / "graph.npz"
        io.save_npz(graph, path)
        loaded = io.load_npz(path)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        assert np.allclose(loaded.weights, graph.weights)

    def test_roundtrip_unweighted(self, tmp_path):
        graph = generators.cycle(6)
        path = tmp_path / "graph.npz"
        io.save_npz(graph, path)
        assert io.load_npz(path).weights is None


class TestMetisFormat:
    def test_roundtrip_unweighted(self, tmp_path):
        graph = generators.road_like(6, 4, seed=3)
        path = tmp_path / "graph.metis"
        io.save_metis(graph, path)
        loaded = io.load_metis(path)
        assert loaded.num_nodes == graph.num_nodes
        assert sorted(loaded.iter_edges()) == sorted(graph.iter_edges())

    def test_roundtrip_weighted(self, tmp_path):
        graph = generators.cycle(7, weighted=True)
        path = tmp_path / "graph.metis"
        io.save_metis(graph, path)
        loaded = io.load_metis(path)
        assert np.allclose(
            sorted(loaded.weights.tolist()), sorted(graph.weights.tolist())
        )

    def test_header_counts_undirected_edges(self, tmp_path):
        graph = generators.path(5)
        path = tmp_path / "graph.metis"
        io.save_metis(graph, path)
        header = path.read_text().splitlines()[0].split()
        assert header == ["5", "4"]

    def test_rejects_directed_graph(self, tmp_path):
        directed = Graph.from_edge_list(3, [(0, 1)])
        with pytest.raises(ValueError):
            io.save_metis(directed, tmp_path / "x.metis")

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 2\n2\n")  # header says 3 nodes, only 1 line
        with pytest.raises(ValueError):
            io.load_metis(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        graph = io.load_metis(path)
        assert sorted(graph.iter_edges()) == [(0, 1), (1, 0)]

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = Graph.from_edge_list(4, [(0, 1), (1, 0)])
        path = tmp_path / "iso.metis"
        io.save_metis(graph, path)
        assert io.load_metis(path).num_nodes == 4
