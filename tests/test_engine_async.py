"""The execution-engine layer: BSP extraction and the async engine.

Two contracts, two verification modes (mirroring the refactor's design):

* ``BSPEngine`` is a pure extraction of the historical drive loop, so
  runs through it must be **byte-identical** to the default path -
  ``RunResult.to_dict()`` compared as serialized JSON.
* ``AsyncEngine`` replaces the schedule entirely (priority/delta, no
  global barrier), so it is held to **value equivalence** against the
  BSP oracle: exact for the monotone label-correcting apps (CC-LP,
  SSSP, BFS), within the declared residual tolerance for delta-PR -
  across all four partitioning policies, plus a hypothesis sweep over
  random graphs.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.variants import RuntimeVariant
from repro.eval.harness import KIMBAP_APPS, run_kimbap
from repro.exec import AsyncEngine, BSPEngine, Executor, UnsupportedPlanError, make_engine
from repro.faults import named_plan
from repro.graph import generators
from repro.partition import POLICIES, partition
from repro.verify import check_equivalent_values

# Async value-equivalence tolerance vs the BSP oracle, per app.
TOLERANCE = {"PR": 1e-6, "SSSP": 1e-9, "CC-LP": 0.0, "BFS": 0.0}
ASYNC_APPS = sorted(TOLERANCE)


def _graph(app: str, seed: int = 3):
    # Weighted for SSSP (its plan folds edge weights); road-like keeps the
    # diameter high enough that scheduling order actually matters.
    return generators.road_like(5, 4, seed=seed, weighted=True)


def _run(app: str, graph, hosts: int, policy: str, engine: str):
    pgraph = partition(graph, hosts, policy)
    cluster = Cluster(hosts, threads_per_host=4)
    executor = Executor(cluster, engine=engine)
    try:
        result = KIMBAP_APPS[app](cluster, pgraph, executor=executor)
    finally:
        executor.close()
    return result, executor


class TestAsyncValueEquivalence:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("app", ASYNC_APPS)
    def test_matches_bsp_oracle_on_every_policy(self, app, policy):
        graph = _graph(app)
        oracle, _ = _run(app, graph, 3, policy, "bsp")
        result, executor = _run(app, graph, 3, policy, "async")
        check_equivalent_values(oracle.values, result.values, TOLERANCE[app])
        assert executor.engine.name == "async"
        assert executor.engine.last_updates > 0

    @pytest.mark.parametrize("app", ASYNC_APPS)
    def test_deterministic_for_fixed_seed(self, app):
        graph = _graph(app)
        first, first_exec = _run(app, graph, 3, "cvc", "async")
        second, second_exec = _run(app, graph, 3, "cvc", "async")
        assert first.values == second.values
        assert first_exec.engine.last_updates == second_exec.engine.last_updates
        assert first_exec.engine.last_chunks == second_exec.engine.last_chunks

    @settings(max_examples=8, deadline=None)
    @given(
        nodes=st.integers(min_value=6, max_value=40),
        degree=st.floats(min_value=1.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**16),
        hosts=st.integers(min_value=2, max_value=4),
    )
    def test_random_graphs_converge_to_the_oracle(self, nodes, degree, seed, hosts):
        graph = generators.erdos_renyi(nodes, degree, seed=seed, weighted=True)
        for app in ("CC-LP", "SSSP"):
            oracle, _ = _run(app, graph, hosts, "cvc", "bsp")
            result, _ = _run(app, graph, hosts, "cvc", "async")
            check_equivalent_values(oracle.values, result.values, TOLERANCE[app])

    def test_pagerank_error_bounded_by_declared_tolerance(self):
        graph = _graph("PR")
        oracle, _ = _run("PR", graph, 3, "hvc", "bsp")
        result, _ = _run("PR", graph, 3, "hvc", "async")
        worst = max(
            abs(oracle.values[node] - result.values[node])
            for node in oracle.values
        )
        assert worst <= TOLERANCE["PR"]
        assert math.isclose(sum(result.values.values()), 1.0, abs_tol=1e-6)


class TestBSPByteIdentity:
    def test_explicit_bsp_engine_is_byte_identical_to_default(self):
        graph = generators.road_like(4, 3, seed=1, weighted=True)
        default = run_kimbap("CC-LP", "road", 2, graph=graph)
        explicit = run_kimbap("CC-LP", "road", 2, graph=graph, engine="bsp")
        assert json.dumps(default.to_dict(), sort_keys=True) == json.dumps(
            explicit.to_dict(), sort_keys=True
        )

    def test_engine_key_serialized_only_when_not_bsp(self):
        graph = generators.road_like(4, 3, seed=1, weighted=True)
        bsp = run_kimbap("CC-LP", "road", 2, graph=graph, engine="bsp")
        asynchronous = run_kimbap("CC-LP", "road", 2, graph=graph, engine="async")
        assert "engine" not in bsp.to_dict()
        assert asynchronous.to_dict()["engine"] == "async"
        assert asynchronous.async_stats["updates"] > 0
        assert asynchronous.async_stats["chunks"] > 0
        check_equivalent_values(bsp.values, asynchronous.values)


class TestEngineSelection:
    def test_make_engine_rejects_unknown_names(self):
        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster)
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine(executor, "speculative")

    def test_engine_instances_are_accepted(self):
        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster)
        engine = BSPEngine(executor)
        assert Executor(cluster, engine=engine).engine is engine

    def test_async_refuses_parallel_jobs(self):
        """The async chunk schedule is inherently sequential across hosts
        (owner-serialized apply order); the pool replays BSP rounds."""
        cluster = Cluster(2, threads_per_host=2)
        with pytest.raises(ValueError, match="jobs"):
            Executor(cluster, jobs=2, engine="async")

    def test_chunk_size_option_threads_through(self):
        cluster = Cluster(2, threads_per_host=2)
        engine = make_engine(Executor(cluster), "async", chunk_size=7)
        assert isinstance(engine, AsyncEngine)
        assert engine.chunk_size == 7


class TestUnsupportedPlans:
    def test_plan_without_residual_declaration(self):
        """Apps whose kernels declare no residual cannot run async."""
        graph = generators.road_like(4, 3, seed=1)
        with pytest.raises(UnsupportedPlanError, match="residual"):
            run_kimbap("CC-SV", "road", 2, graph=graph, engine="async")

    def test_fault_injection_is_refused(self):
        graph = generators.road_like(4, 3, seed=1, weighted=True)
        plan = named_plan("crash", seed=0, hosts=2, crash_round=1, checkpoint_interval=2)
        with pytest.raises(UnsupportedPlanError, match="fault"):
            run_kimbap("CC-LP", "road", 2, graph=graph, engine="async", fault_plan=plan)

    def test_non_gar_variants_are_refused(self):
        """The async engine writes owner values straight through the GAR
        bulk path; the kvstore (MC) variant has no such surface."""
        graph = generators.road_like(4, 3, seed=1, weighted=True)
        with pytest.raises(UnsupportedPlanError, match="GAR"):
            run_kimbap(
                "CC-LP", "road", 2, graph=graph,
                variant=RuntimeVariant.MC, engine="async",
            )
