"""Tests for the ablation flags and activity tracking on the property map."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, NodePropMap
from repro.graph import generators
from repro.partition import partition


def setting(hosts=3, **map_kwargs):
    graph = generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, hosts, "oec")
    cluster = Cluster(hosts, threads_per_host=4)
    prop = NodePropMap(cluster, pgraph, "p", **map_kwargs)
    prop.set_initial(lambda node: node)
    return graph, pgraph, cluster, prop


class TestRemoteLayout:
    def test_hash_layout_reads_correctly(self):
        _, pgraph, cluster, prop = setting(remote_layout="hash")
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(0, remote) == remote

    def test_hash_layout_charges_probes_not_binsearch(self):
        _, pgraph, cluster, prop = setting(remote_layout="hash")
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        cluster.reset()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.read(0, remote)
        counters = cluster.log.total_counters()
        assert counters.hash_probes >= 1
        assert counters.binsearch_steps == 0

    def test_hash_layout_dropped_after_reduce_sync(self):
        _, pgraph, cluster, prop = setting(remote_layout="hash")
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
        prop.request_sync()
        prop.reduce_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                prop.read(0, remote)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            setting(remote_layout="btree")


class TestSerialCombine:
    def test_serial_combine_charges_more(self):
        def combine_cost(serial):
            _, _, cluster, prop = setting(serial_combine=serial)
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                for thread in range(4):
                    prop.reduce(0, thread, 5, thread, MIN)
            prop.reduce_sync()
            return cluster.log.total_counters().combine_ops

        assert combine_cost(True) == 4 * combine_cost(False)

    def test_serial_combine_same_values(self):
        _, _, cluster, prop = setting(serial_combine=True)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(4):
                prop.reduce(0, thread, 5, -thread, MIN)
        prop.reduce_sync()
        assert prop.snapshot()[5] == -3


class TestRequestDedup:
    def test_dedup_off_keeps_duplicates(self):
        _, pgraph, cluster, prop = setting(request_dedup=False)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            for _ in range(5):
                prop.request(0, remote)
        prop.request_sync()
        dedup_setting = setting(request_dedup=True)
        _, pgraph2, cluster2, prop2 = dedup_setting
        with cluster2.phase(PhaseKind.REQUEST_COMPUTE):
            for _ in range(5):
                prop2.request(0, remote)
        prop2.request_sync()
        assert cluster.log.total_bytes() > cluster2.log.total_bytes()

    def test_dedup_off_still_reads_correctly(self):
        _, pgraph, cluster, prop = setting(request_dedup=False)
        remote = int(pgraph.parts[-1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_COMPUTE):
            prop.request(0, remote)
            prop.request(0, remote)
        prop.request_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(0, remote) == remote


class TestActivityTracking:
    def test_everything_active_initially(self):
        _, pgraph, cluster, prop = setting()
        prop.reset_updated()
        for host in range(cluster.num_hosts):
            for node in pgraph.parts[host].local_to_global.tolist():
                assert prop.is_active(host, int(node))

    def test_only_changed_keys_active_after_round(self):
        _, pgraph, cluster, prop = setting()
        prop.reset_updated()
        target = int(pgraph.parts[0].masters_global[0])
        untouched = int(pgraph.parts[0].masters_global[1])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, target, -1, MIN)
        prop.reduce_sync()
        prop.reset_updated()
        assert prop.is_active(0, target)
        assert not prop.is_active(0, untouched)

    def test_no_change_means_inactive(self):
        _, pgraph, cluster, prop = setting()
        prop.reset_updated()
        target = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, target, 10_000, MIN)  # loses to current value
        prop.reduce_sync()
        prop.reset_updated()
        assert not prop.is_active(0, target)

    def test_mirror_becomes_active_via_broadcast(self):
        graph = generators.powerlaw_like(6, seed=2)
        pgraph = partition(graph, 4, "cvc")
        cluster = Cluster(4, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "p")
        prop.set_initial(lambda node: node)
        prop.pin_mirrors(invariant="none")
        owner, mirror_host, node = None, None, None
        for candidate, pairs in enumerate(pgraph.mirror_hosts_by_owner):
            if pairs:
                owner, (mirror_host, ids) = candidate, pairs[0]
                node = int(ids[0])
                break
        prop.reset_updated()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(owner, 0, node, -5, MIN)
        prop.reduce_sync()
        prop.broadcast_sync()
        prop.reset_updated()
        assert prop.is_active(mirror_host, node)

    def test_non_gar_variants_always_active(self):
        from repro.core import RuntimeVariant

        _, pgraph, cluster, prop = setting(variant=RuntimeVariant.SGR_ONLY)
        prop.reset_updated()
        prop.reset_updated()
        assert prop.is_active(0, int(pgraph.parts[0].masters_global[0]))
