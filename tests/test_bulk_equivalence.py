"""The bulk execution path's equivalence contract, end to end.

The vectorized fast path (``par_for_bulk`` + ``reduce_bulk`` + the bulk
sync collectives) promises **byte-identical** ``RunResult.to_dict()``
output - every counter, conflict count, modeled second, and trace row -
plus identical final property values, against the scalar reference path.
These tests enforce the contract across runtime variants, host counts,
thread counts, and random graphs, and pin down the building blocks
(closed-form thread dealing, bulk bitset sets, reduction folds) against
their scalar definitions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.cluster import SimulatedOutOfMemory, static_thread
from repro.cluster.metrics import PhaseKind
from repro.core.bitset import ConcurrentBitset
from repro.core.reducers import MIN, SUM
from repro.core.reduction import SharedMapReduction, ThreadLocalReduction
from repro.core.variants import RuntimeVariant
from repro.eval.harness import APP_WEIGHTED, KIMBAP_APPS, run_kimbap
from repro.graph import generators

# Backend selection lives on the executor, so every application is
# bulk-capable; the whole registry is under the byte-identity contract.
APPS = tuple(sorted(KIMBAP_APPS))
# The original bulk-path kernels keep the expensive full-variant matrix.
CORE_APPS = ("PR", "SSSP", "CC-LP")
VARIANTS = tuple(RuntimeVariant)


def app_weighted(app: str) -> bool:
    return APP_WEIGHTED.get(app, False)


def random_graph(seed: int, weighted: bool = False):
    kind = seed % 3
    if kind == 0:
        return generators.erdos_renyi(40, 3.0, seed=seed, weighted=weighted)
    if kind == 1:
        return generators.road_like(6, 5, seed=seed, weighted=weighted)
    return generators.rmat(5, 4, seed=seed, weighted=weighted)


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_equivalent(app, graph, hosts, variant, threads):
    scalar = run_kimbap(
        app, "equiv", hosts, variant=variant, graph=graph, threads=threads,
        bulk=False,
    )
    bulk = run_kimbap(
        app, "equiv", hosts, variant=variant, graph=graph, threads=threads,
        bulk=True,
    )
    assert canonical(scalar) == canonical(bulk), (
        f"{app} {variant.name} hosts={hosts} threads={threads}: "
        "bulk RunResult.to_dict() diverged from scalar"
    )
    assert scalar.values == bulk.values


class TestRunResultEquivalence:
    """Whole-run byte-identity, the tentpole invariant."""

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
    @pytest.mark.parametrize("app", CORE_APPS)
    def test_all_variants(self, app, variant):
        graph = generators.powerlaw_like(scale=7, seed=3, weighted=app_weighted(app))
        assert_equivalent(app, graph, hosts=4, variant=variant, threads=4)

    @pytest.mark.parametrize("app", APPS)
    def test_all_apps(self, app):
        """Every registered application is byte-identical across backends."""
        graph = generators.erdos_renyi(50, 3.0, seed=7, weighted=app_weighted(app))
        assert_equivalent(
            app, graph, hosts=3, variant=RuntimeVariant.KIMBAP, threads=4
        )

    @pytest.mark.parametrize("app", APPS)
    def test_single_host_single_thread(self, app):
        graph = generators.erdos_renyi(60, 3.0, seed=5, weighted=app_weighted(app))
        assert_equivalent(
            app, graph, hosts=1, variant=RuntimeVariant.KIMBAP, threads=1
        )

    @pytest.mark.parametrize("app", APPS)
    def test_many_threads(self, app):
        # More threads than a host has nodes: empty thread segments.
        graph = generators.erdos_renyi(30, 2.5, seed=11, weighted=app_weighted(app))
        assert_equivalent(
            app, graph, hosts=2, variant=RuntimeVariant.KIMBAP, threads=48
        )

    @given(
        seed=st.integers(0, 10_000),
        app=st.sampled_from(APPS),
        variant=st.sampled_from(VARIANTS),
        hosts=st.integers(1, 5),
        threads=st.sampled_from((1, 2, 4, 16)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random(self, seed, app, variant, hosts, threads):
        graph = random_graph(seed, weighted=app_weighted(app))
        assert_equivalent(app, graph, hosts, variant, threads)

    def test_weighted_sssp_uses_edge_weights(self):
        graph = generators.road_like(6, 5, seed=9, weighted=True)
        assert_equivalent(
            "SSSP", graph, hosts=3, variant=RuntimeVariant.KIMBAP, threads=4
        )
        scalar = run_kimbap(
            "SSSP", "w", 3, graph=graph, bulk=False
        )
        assert any(
            v not in (0.0,) and v == v and v != int(v)
            for v in scalar.values.values()
            if v != float("inf")
        ), "weighted graph should produce fractional distances"


class TestThreadDealing:
    """The closed-form chunk bounds equal OpenMP-static dealing per item."""

    @given(
        total=st.integers(0, 500),
        threads=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_threads_of_matches_static_thread(self, total, threads):
        cluster = Cluster(1, threads_per_host=threads)
        dealt = cluster.threads_of(total)
        assert dealt.shape == (total,)
        expected = [static_thread(i, total, threads) for i in range(total)]
        assert dealt.tolist() == expected

    @given(total=st.integers(0, 500), threads=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_boundaries_partition_the_range(self, total, threads):
        cluster = Cluster(1, threads_per_host=threads)
        bounds = cluster.thread_boundaries(total)
        assert bounds[0] == 0 and bounds[-1] == total
        assert (np.diff(bounds) >= 0).all()


class TestBitsetBulk:
    @given(
        size=st.integers(1, 64),
        batches=st.lists(
            st.lists(st.integers(0, 63), max_size=30), max_size=5
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_many_matches_sequential_set(self, size, batches):
        batches = [[i % size for i in batch] for batch in batches]
        bulk = ConcurrentBitset(size)
        scalar = ConcurrentBitset(size)
        for batch in batches:
            newly = bulk.set_many(np.asarray(batch, dtype=np.int64))
            expected = [scalar.set(i) for i in batch]
            assert newly.tolist() == expected
        assert bulk.nonzero().tolist() == scalar.nonzero().tolist()


class TestReductionBulk:
    """reduce_bulk folds and charges exactly like the scalar sequence."""

    @given(
        items=st.lists(
            st.tuples(st.integers(0, 20), st.integers(-50, 50)), max_size=60
        ),
        threads=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_thread_local_fold(self, items, threads):
        def dealt(cluster):
            total = len(items)
            return [cluster.thread_of(i, total) for i in range(total)]

        scalar_cluster = Cluster(1, threads_per_host=threads)
        scalar = ThreadLocalReduction(scalar_cluster, 0)
        with scalar_cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread, (key, value) in zip(dealt(scalar_cluster), items):
                scalar.reduce(thread, key, value, SUM)
        with scalar_cluster.phase(PhaseKind.REDUCE_SYNC):
            scalar_combined = scalar.collect(SUM)

        bulk_cluster = Cluster(1, threads_per_host=threads)
        bulk = ThreadLocalReduction(bulk_cluster, 0)
        with bulk_cluster.phase(PhaseKind.REDUCE_COMPUTE):
            bulk.reduce_bulk(
                np.asarray(dealt(bulk_cluster), dtype=np.int64),
                np.asarray([k for k, _ in items], dtype=np.int64),
                np.asarray([v for _, v in items], dtype=np.int64),
                SUM,
            )
        with bulk_cluster.phase(PhaseKind.REDUCE_SYNC):
            keys, values = bulk.collect_arrays(SUM)

        assert dict(zip(keys.tolist(), values.tolist())) == scalar_combined
        assert (
            scalar_cluster.log.total_counters().as_dict()
            == bulk_cluster.log.total_counters().as_dict()
        )

    @given(
        items=st.lists(
            st.tuples(st.integers(0, 12), st.integers(-50, 50)), max_size=50
        ),
        threads=st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_shared_map_conflicts(self, items, threads):
        def dealt(cluster):
            total = len(items)
            return [cluster.thread_of(i, total) for i in range(total)]

        scalar_cluster = Cluster(1, threads_per_host=threads)
        scalar = SharedMapReduction(scalar_cluster, 0)
        with scalar_cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread, (key, value) in zip(dealt(scalar_cluster), items):
                scalar.reduce(thread, key, value, MIN)
        scalar_combined = scalar.collect(MIN)

        bulk_cluster = Cluster(1, threads_per_host=threads)
        bulk = SharedMapReduction(bulk_cluster, 0)
        with bulk_cluster.phase(PhaseKind.REDUCE_COMPUTE):
            bulk.reduce_bulk(
                np.asarray(dealt(bulk_cluster), dtype=np.int64),
                np.asarray([k for k, _ in items], dtype=np.int64),
                np.asarray([v for _, v in items], dtype=np.int64),
                MIN,
            )
        keys, values = bulk.collect_arrays(MIN)

        assert dict(zip(keys.tolist(), values.tolist())) == scalar_combined
        assert (
            scalar_cluster.log.total_counters().as_dict()
            == bulk_cluster.log.total_counters().as_dict()
        ), "conflict arithmetic must match the scalar CAS sequence"


class TestMemoryAccountingTotals:
    """The O(1) per-host running totals (no per-report live-owner sum)."""

    def test_peak_tracks_running_totals(self):
        cluster = Cluster(2)
        cluster.track_memory(0, "a", 100)
        cluster.track_memory(0, "b", 50)
        cluster.track_memory(0, "a", 30)  # shrink: total 80, peak stays 150
        assert cluster.peak_memory_slots[0] == 150
        cluster.track_memory(1, "a", 10)
        assert cluster.peak_memory_slots[1] == 10

    def test_release_then_regrow(self):
        cluster = Cluster(1)
        cluster.track_memory(0, "a", 40)
        cluster.track_memory(0, "b", 10)
        cluster.release_memory("a")
        cluster.track_memory(0, "c", 20)  # total 30 < peak 50
        assert cluster.peak_memory_slots[0] == 50
        cluster.track_memory(0, "c", 45)  # total 55: new peak
        assert cluster.peak_memory_slots[0] == 55

    def test_totals_match_live_slot_sum(self):
        cluster = Cluster(3)
        sequence = [
            (0, "a", 5), (1, "a", 7), (0, "b", 3), (0, "a", 0),
            (2, "c", 9), (1, "a", 2), (0, "b", 8),
        ]
        for host, owner, slots in sequence:
            cluster.track_memory(host, owner, slots)
        cluster.release_memory("a")
        for host in range(3):
            expected = sum(
                s for (h, _), s in cluster._live_slots.items() if h == host
            )
            assert cluster._host_slot_totals[host] == expected

    def test_oom_still_raises(self):
        cluster = Cluster(1, memory_limit_slots=100)
        cluster.track_memory(0, "a", 60)
        with pytest.raises(SimulatedOutOfMemory):
            cluster.track_memory(0, "b", 41)


class TestKvSnapshotScan:
    """kv snapshot() reads shards by prefix scan, not per-id probing."""

    def test_scan_prefix_filters(self):
        from repro.kvstore.store import KvServer

        server = KvServer(server_id=0)
        server.set("npm:a:1", 10)
        server.set("npm:a:2", 20)
        server.set("npm:ab:3", 30)
        server.set("other", 40)
        found = dict(server.scan_prefix("npm:a:"))
        assert found == {"npm:a:1": 10, "npm:a:2": 20}

    def test_mc_snapshot_values(self):
        from repro.partition import partition

        graph = generators.erdos_renyi(30, 3.0, seed=4)
        result = run_kimbap(
            "CC-LP", "kv", 3, variant=RuntimeVariant.MC, graph=graph
        )
        assert set(result.values) == set(range(graph.num_nodes))

    def test_prefix_collision_between_map_names(self):
        """A map named ``x:9`` shards under ``npm:x:9:...``, which shares
        the ``npm:x:`` prefix; the integer-suffix filter must skip it."""
        from repro.cluster import Cluster as C
        from repro.core.propmap import NodePropMap
        from repro.partition import partition

        graph = generators.erdos_renyi(12, 2.0, seed=1)
        cluster = C(2)
        pgraph = partition(graph, 2, "cvc")
        outer = NodePropMap(cluster, pgraph, "x", variant=RuntimeVariant.MC)
        inner = NodePropMap(cluster, pgraph, "x:9", variant=RuntimeVariant.MC)
        outer.set_initial(lambda node: node)
        inner.set_initial(lambda node: node * 100)
        values = outer.snapshot()
        assert values == {node: node for node in range(graph.num_nodes)}
