"""End-to-end compiled apps: agreement with hand-written kernels, OPT vs NO-OPT."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import cc_lp, cc_sclp, cc_sv
from repro.cluster import Cluster
from repro.compiler.apps import (
    COMPILED_APPS,
    compiled_cc_lp,
    compiled_cc_sclp,
    compiled_cc_sv,
    compiled_mis,
)
from repro.core import RuntimeVariant
from repro.graph import generators
from repro.partition import partition

GRAPHS = {
    "road": generators.road_like(8, 4, seed=1),
    "powerlaw": generators.powerlaw_like(6, seed=3),
}


def components_truth(graph):
    expected = {}
    for component in nx.connected_components(graph.to_networkx().to_undirected()):
        smallest = min(component)
        for node in component:
            expected[node] = smallest
    return expected


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("optimize", [True, False])
class TestCompiledCorrectness:
    def test_cc_apps_match_truth(self, graph_name, optimize):
        graph = GRAPHS[graph_name]
        expected = components_truth(graph)
        for app in (compiled_cc_sv, compiled_cc_lp, compiled_cc_sclp):
            cluster = Cluster(3, threads_per_host=4)
            result = app(cluster, partition(graph, 3, "cvc"), optimize=optimize)
            assert {
                n: result.values[n] for n in range(graph.num_nodes)
            } == expected, app.__name__

    def test_mis_valid(self, graph_name, optimize):
        graph = GRAPHS[graph_name]
        cluster = Cluster(3, threads_per_host=4)
        result = compiled_mis(cluster, partition(graph, 3, "cvc"), optimize=optimize)
        values = result.values
        nx_graph = graph.to_networkx().to_undirected()
        for u, v in nx_graph.edges():
            assert not (values[u] == 1 and values[v] == 1)
        for node in nx_graph.nodes():
            assert values[node] == 1 or any(
                values[m] == 1 for m in nx_graph.neighbors(node)
            )


class TestCompiledVsHandWritten:
    """The compiled pipeline and the Figure 8-level kernels must agree."""

    @pytest.mark.parametrize(
        "compiled,manual",
        [(compiled_cc_sv, cc_sv), (compiled_cc_lp, cc_lp), (compiled_cc_sclp, cc_sclp)],
    )
    def test_same_results(self, compiled, manual):
        graph = GRAPHS["powerlaw"]
        compiled_result = compiled(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        manual_result = manual(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        assert compiled_result.values == manual_result.values

    def test_cc_lp_same_round_count(self):
        graph = GRAPHS["road"]
        compiled_result = compiled_cc_lp(
            Cluster(2, threads_per_host=4), partition(graph, 2, "oec")
        )
        manual_result = cc_lp(
            Cluster(2, threads_per_host=4), partition(graph, 2, "oec")
        )
        assert compiled_result.rounds == manual_result.rounds


class TestOptimizationImpact:
    """Figure 12's direction: OPT must beat NO-OPT, mostly in communication."""

    @pytest.mark.parametrize("app_name", ["CC-LP", "MIS"])
    def test_opt_faster_than_no_opt(self, app_name):
        graph = GRAPHS["powerlaw"]
        app = COMPILED_APPS[app_name]
        opt_cluster = Cluster(4, threads_per_host=4)
        app(opt_cluster, partition(graph, 4, "cvc"), optimize=True)
        no_opt_cluster = Cluster(4, threads_per_host=4)
        app(no_opt_cluster, partition(graph, 4, "cvc"), optimize=False)
        assert opt_cluster.elapsed().total < no_opt_cluster.elapsed().total

    def test_opt_sends_fewer_request_messages(self):
        from repro.cluster.metrics import PhaseKind

        graph = GRAPHS["powerlaw"]
        opt_cluster = Cluster(4, threads_per_host=4)
        compiled_cc_lp(opt_cluster, partition(graph, 4, "cvc"), optimize=True)
        no_opt_cluster = Cluster(4, threads_per_host=4)
        compiled_cc_lp(no_opt_cluster, partition(graph, 4, "cvc"), optimize=False)

        def request_msgs(cluster):
            return sum(
                sum(p.msgs_sent)
                for p in cluster.log.phases
                if p.kind is PhaseKind.REQUEST_SYNC
            )

        assert request_msgs(opt_cluster) == 0
        assert request_msgs(no_opt_cluster) > 0

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_compiled_apps_run_on_all_variants(self, variant):
        """Section 6.4: all variants run the same compiler-generated code."""
        graph = GRAPHS["road"]
        expected = components_truth(graph)
        cluster = Cluster(3, threads_per_host=4)
        result = compiled_cc_sv(
            cluster, partition(graph, 3, "cvc"), variant=variant
        )
        assert {n: result.values[n] for n in range(graph.num_nodes)} == expected


class TestInterpreter:
    def test_extern_variables_bind(self):
        from repro.compiler.compile import compile_program
        from repro.compiler.interp import run_compiled
        from repro.compiler.ir import (
            ActiveNode,
            KimbapWhile,
            MapRead,
            MapReduce,
            ParFor,
            Var,
            stmts,
        )
        from repro.core import MIN, NodePropMap

        program = KimbapWhile(
            ("values",),
            ParFor(
                stmts(
                    MapRead("current", "values", ActiveNode()),
                    MapReduce("values", ActiveNode(), Var("floor"), MIN),
                )
            ),
            name="clamp",
        )
        graph = generators.path(6)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=2)
        values = NodePropMap(cluster, pgraph, "values")
        values.set_initial(lambda node: 100)
        loop = compile_program(program)
        run_compiled(loop, cluster, pgraph, {"values": values}, extern={"floor": 7})
        assert all(v == 7 for v in values.snapshot().values())

    def test_unbound_variable_raises(self):
        from repro.compiler.interp import _Executor
        from repro.compiler.ir import Var

        graph = generators.path(4)
        pgraph = partition(graph, 1, "oec")
        cluster = Cluster(1)
        executor = _Executor(cluster, pgraph, {})
        with pytest.raises(NameError):
            executor.eval(Var("nope"), None, {})
