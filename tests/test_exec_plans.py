"""The operator-plan execution layer: plan summaries, executor semantics,
compiled-program parity with hand-written plans, and the ``plan`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import cc_lp, cc_sv, pagerank
from repro.algorithms.cc_lp import cc_lp_plan
from repro.cli import main
from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.compiler.apps import (
    compiled_cc_lp,
    compiled_cc_sv,
    compiled_pagerank,
)
from repro.compiler.compile import compile_program
from repro.compiler.interp import run_compiled
from repro.compiler.programs import cc_lp_program
from repro.core.propmap import NodePropMap
from repro.exec import (
    PLAN_SCHEMA,
    CmpFilter,
    DstCmpFilter,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    apply_value_filter,
    filter_summary,
    format_plan_summary,
    plan_summary,
)
from repro.graph import generators
from repro.partition import partition
from repro.trace import build_timeline


@pytest.fixture(scope="module")
def graph():
    return generators.powerlaw_like(scale=6, seed=3)


def run_handwritten(app, graph, bulk):
    cluster = Cluster(3, threads_per_host=4)
    executor = Executor(cluster, bulk=bulk)
    return app(cluster, partition(graph, 3, "cvc"), executor=executor)


class TestPlanSummaries:
    def test_edge_push_summary(self, graph):
        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        label = NodePropMap(cluster, pgraph, "cc_label")
        summary = plan_summary(cc_lp_plan(pgraph, label))
        assert summary["name"] == "cc_lp"
        assert summary["loop"] == "quiescence"
        assert summary["quiesce"] == ["cc_label"]
        operator = summary["steps"][0]
        assert operator["form"] == "edge-push"
        assert operator["space"] == "all"
        assert operator["writes"] == [{"map": "cc_label", "reducer": "min"}]
        text = format_plan_summary(summary)
        assert "operator cc_lp (edge-push, all, reduce-compute)" in text
        assert "sync reduce cc_label" in text

    def test_once_plan_reports_no_loop_metadata(self, graph):
        cluster = Cluster(1)
        pgraph = partition(graph, 1, "cvc")
        plan = Plan(
            name="warmup",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator("noop", "masters", ScalarKernel(lambda ctx: None))
                )
            ],
            once=True,
        )
        summary = plan_summary(plan)
        assert summary["loop"] == "once"
        assert "quiesce" not in summary
        assert Executor(cluster).run(plan) == 0


class TestFilterSpecs:
    """Schema v1.2: declarative filter predicates serialize in full,
    opaque callables get a refusal record."""

    def test_sssp_plan_serializes_filters(self, graph):
        from repro.algorithms.sssp import sssp_plan

        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        dist = NodePropMap(cluster, pgraph, "sssp_dist")
        summary = plan_summary(sssp_plan(pgraph, dist))
        operator = next(
            step for step in summary["steps"] if step["step"] == "operator"
        )
        filters = operator["filters"]
        assert filters["active"] == {"kind": "active", "map": "sssp_dist"}
        assert filters["value"]["kind"] == "cmp"
        assert filters["value"]["op"] == "ne"
        assert json.dumps(filters)  # JSON-serializable all the way down

    def test_cmp_filter_summary_forms(self):
        import numpy as np

        assert CmpFilter("lt", 3.0).summary() == {
            "kind": "cmp",
            "op": "lt",
            "const": 3.0,
        }
        other = np.arange(5, dtype=np.float64)
        summary = CmpFilter("le", other=other).summary()
        assert summary["kind"] == "cmp"
        assert summary["other"] == {"len": 5, "dtype": "float64"}

    def test_dst_cmp_filter_summary(self):
        import numpy as np

        array = np.arange(4, dtype=np.int64)
        summary = DstCmpFilter("gt", array).summary()
        assert summary == {
            "kind": "dst-cmp",
            "op": "gt",
            "array": {"len": 4, "dtype": "int64"},
        }

    def test_cmp_filter_validation(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            CmpFilter("spaceship", 1)
        with pytest.raises(ValueError, match="exactly one"):
            CmpFilter("lt")
        with pytest.raises(ValueError, match="exactly one"):
            CmpFilter("lt", const=1, other=[1])

    def test_opaque_callable_gets_refusal_record(self):
        def my_filter(values):
            return values > 0

        summary = filter_summary(my_filter)
        assert summary["kind"] == "opaque"
        assert "my_filter" in summary["callable"]
        assert "interpreted" in summary["message"]
        assert json.dumps(summary)

    def test_apply_value_filter_routes_node_ids(self):
        import numpy as np

        values = np.array([1.0, 5.0, 2.0])
        nodes = np.array([2, 0, 1])
        # Plain callables keep their one-argument contract.
        plain = apply_value_filter(lambda v: v > 1.5, values, nodes)
        assert plain.tolist() == [False, True, True]
        # other= specs compare against the per-node operand array.
        other = np.array([10.0, 1.0, 0.5])
        spec = CmpFilter("lt", other=other)
        routed = apply_value_filter(spec, values, nodes)
        assert routed.tolist() == [
            bool(values[i] < other[nodes[i]]) for i in range(3)
        ]


class TestExecutorSemantics:
    def test_bulk_flag_deprecation_shim(self, graph):
        cluster = Cluster(2, threads_per_host=2)
        with pytest.deprecated_call():
            result = cc_lp(cluster, partition(graph, 2, "cvc"), bulk=True)
        reference = run_handwritten(cc_lp, graph, bulk=True)
        assert result.values == reference.values

    def test_executor_backend_overrides_nothing_per_algorithm(self, graph):
        # One executor drives different algorithms with one backend choice.
        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster, bulk=True)
        pgraph = partition(graph, 2, "cvc")
        first = cc_lp(cluster, pgraph, executor=executor)
        second = cc_sv(cluster, pgraph, executor=executor)
        assert set(first.values) == set(second.values)
        assert first.values == second.values


class TestCompiledParity:
    """Compiled programs ride the same executor as hand-written plans."""

    @pytest.mark.parametrize("bulk", [False, True], ids=["scalar", "bulk"])
    def test_compiled_pagerank_matches_handwritten(self, graph, bulk):
        compiled = compiled_pagerank(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        manual = run_handwritten(pagerank, graph, bulk)
        assert compiled.values == manual.values
        assert compiled.rounds == manual.rounds

    @pytest.mark.parametrize("bulk", [False, True], ids=["scalar", "bulk"])
    @pytest.mark.parametrize(
        "compiled,manual",
        [(compiled_cc_lp, cc_lp), (compiled_cc_sv, cc_sv)],
        ids=["cc_lp", "cc_sv"],
    )
    def test_compiled_cc_matches_handwritten(self, graph, bulk, compiled, manual):
        compiled_result = compiled(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        manual_result = run_handwritten(manual, graph, bulk)
        assert compiled_result.values == manual_result.values

    def test_compiled_loop_byte_identical_across_backends(self, graph):
        def run(bulk):
            cluster = Cluster(3, threads_per_host=4)
            pgraph = partition(graph, 3, "cvc")
            label = NodePropMap(cluster, pgraph, "label")
            label.set_initial(lambda node: node)
            rounds = run_compiled(
                compile_program(cc_lp_program()),
                cluster,
                pgraph,
                {"label": label},
                executor=Executor(cluster, bulk=bulk),
            )
            return (
                rounds,
                label.snapshot(),
                cluster.log.total_counters().as_dict(),
                cluster.elapsed().total,
            )

        assert run(False) == run(True)

    def test_compiled_trace_round_and_operator_attribution(self, graph):
        cluster = Cluster(2, threads_per_host=4)
        result = compiled_cc_lp(cluster, partition(graph, 2, "cvc"))
        timeline = build_timeline(cluster.log, cluster.cost_model, 4)
        computes = [
            s for s in timeline.slices if s.kind is PhaseKind.REDUCE_COMPUTE
        ]
        assert computes and any(s.operator == "cc_lp" for s in computes)
        assert max(s.round for s in timeline.slices) == result.rounds


class TestPlanCli:
    def test_plan_text(self, capsys):
        assert main(["plan", "CC-LP"]) == 0
        out = capsys.readouterr().out
        assert "plan cc_lp [quiescence]" in out
        assert "operator cc_lp (edge-push, all, reduce-compute)" in out

    def test_plan_json(self, capsys):
        assert main(["plan", "PR", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == PLAN_SCHEMA
        assert payload["app"] == "PR"
        names = [plan["name"] for plan in payload["plans"]]
        assert names == ["pr:warmup", "pagerank"]
        forms = [
            step["form"]
            for plan in payload["plans"]
            for step in plan["steps"]
            if step["step"] == "operator"
        ]
        assert "edge-push" in forms and "degree-reduce" in forms
