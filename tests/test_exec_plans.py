"""The operator-plan execution layer: plan summaries, executor semantics,
compiled-program parity with hand-written plans, and the ``plan`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import cc_lp, cc_sv, pagerank
from repro.algorithms.cc_lp import cc_lp_plan
from repro.cli import main
from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.compiler.apps import (
    compiled_cc_lp,
    compiled_cc_sv,
    compiled_pagerank,
)
from repro.compiler.compile import compile_program
from repro.compiler.interp import run_compiled
from repro.compiler.programs import cc_lp_program
from repro.core.propmap import NodePropMap
from repro.exec import (
    PLAN_SCHEMA,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    format_plan_summary,
    plan_summary,
)
from repro.graph import generators
from repro.partition import partition
from repro.trace import build_timeline


@pytest.fixture(scope="module")
def graph():
    return generators.powerlaw_like(scale=6, seed=3)


def run_handwritten(app, graph, bulk):
    cluster = Cluster(3, threads_per_host=4)
    executor = Executor(cluster, bulk=bulk)
    return app(cluster, partition(graph, 3, "cvc"), executor=executor)


class TestPlanSummaries:
    def test_edge_push_summary(self, graph):
        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        label = NodePropMap(cluster, pgraph, "cc_label")
        summary = plan_summary(cc_lp_plan(pgraph, label))
        assert summary["name"] == "cc_lp"
        assert summary["loop"] == "quiescence"
        assert summary["quiesce"] == ["cc_label"]
        operator = summary["steps"][0]
        assert operator["form"] == "edge-push"
        assert operator["space"] == "all"
        assert operator["writes"] == [{"map": "cc_label", "reducer": "min"}]
        text = format_plan_summary(summary)
        assert "operator cc_lp (edge-push, all, reduce-compute)" in text
        assert "sync reduce cc_label" in text

    def test_once_plan_reports_no_loop_metadata(self, graph):
        cluster = Cluster(1)
        pgraph = partition(graph, 1, "cvc")
        plan = Plan(
            name="warmup",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator("noop", "masters", ScalarKernel(lambda ctx: None))
                )
            ],
            once=True,
        )
        summary = plan_summary(plan)
        assert summary["loop"] == "once"
        assert "quiesce" not in summary
        assert Executor(cluster).run(plan) == 0


class TestExecutorSemantics:
    def test_bulk_flag_deprecation_shim(self, graph):
        cluster = Cluster(2, threads_per_host=2)
        with pytest.deprecated_call():
            result = cc_lp(cluster, partition(graph, 2, "cvc"), bulk=True)
        reference = run_handwritten(cc_lp, graph, bulk=True)
        assert result.values == reference.values

    def test_executor_backend_overrides_nothing_per_algorithm(self, graph):
        # One executor drives different algorithms with one backend choice.
        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster, bulk=True)
        pgraph = partition(graph, 2, "cvc")
        first = cc_lp(cluster, pgraph, executor=executor)
        second = cc_sv(cluster, pgraph, executor=executor)
        assert set(first.values) == set(second.values)
        assert first.values == second.values


class TestCompiledParity:
    """Compiled programs ride the same executor as hand-written plans."""

    @pytest.mark.parametrize("bulk", [False, True], ids=["scalar", "bulk"])
    def test_compiled_pagerank_matches_handwritten(self, graph, bulk):
        compiled = compiled_pagerank(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        manual = run_handwritten(pagerank, graph, bulk)
        assert compiled.values == manual.values
        assert compiled.rounds == manual.rounds

    @pytest.mark.parametrize("bulk", [False, True], ids=["scalar", "bulk"])
    @pytest.mark.parametrize(
        "compiled,manual",
        [(compiled_cc_lp, cc_lp), (compiled_cc_sv, cc_sv)],
        ids=["cc_lp", "cc_sv"],
    )
    def test_compiled_cc_matches_handwritten(self, graph, bulk, compiled, manual):
        compiled_result = compiled(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc")
        )
        manual_result = run_handwritten(manual, graph, bulk)
        assert compiled_result.values == manual_result.values

    def test_compiled_loop_byte_identical_across_backends(self, graph):
        def run(bulk):
            cluster = Cluster(3, threads_per_host=4)
            pgraph = partition(graph, 3, "cvc")
            label = NodePropMap(cluster, pgraph, "label")
            label.set_initial(lambda node: node)
            rounds = run_compiled(
                compile_program(cc_lp_program()),
                cluster,
                pgraph,
                {"label": label},
                executor=Executor(cluster, bulk=bulk),
            )
            return (
                rounds,
                label.snapshot(),
                cluster.log.total_counters().as_dict(),
                cluster.elapsed().total,
            )

        assert run(False) == run(True)

    def test_compiled_trace_round_and_operator_attribution(self, graph):
        cluster = Cluster(2, threads_per_host=4)
        result = compiled_cc_lp(cluster, partition(graph, 2, "cvc"))
        timeline = build_timeline(cluster.log, cluster.cost_model, 4)
        computes = [
            s for s in timeline.slices if s.kind is PhaseKind.REDUCE_COMPUTE
        ]
        assert computes and any(s.operator == "cc_lp" for s in computes)
        assert max(s.round for s in timeline.slices) == result.rounds


class TestPlanCli:
    def test_plan_text(self, capsys):
        assert main(["plan", "CC-LP"]) == 0
        out = capsys.readouterr().out
        assert "plan cc_lp [quiescence]" in out
        assert "operator cc_lp (edge-push, all, reduce-compute)" in out

    def test_plan_json(self, capsys):
        assert main(["plan", "PR", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == PLAN_SCHEMA
        assert payload["app"] == "PR"
        names = [plan["name"] for plan in payload["plans"]]
        assert names == ["pr:warmup", "pagerank"]
        forms = [
            step["form"]
            for plan in payload["plans"]
            for step in plan["steps"]
            if step["step"] == "operator"
        ]
        assert "edge-push" in forms and "degree-reduce" in forms
