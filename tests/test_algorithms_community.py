"""Louvain and Leiden tests: partition validity, modularity, Leiden guarantee."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import leiden, louvain
from repro.algorithms.common import coarsen, modularity, weighted_degrees
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import Graph, generators
from repro.partition import partition


def planted_cliques(num_cliques=4, clique_size=8, seed=0):
    """Cliques joined by single bridge edges: unambiguous community truth."""
    blocks = generators.complete(clique_size)
    graph = blocks
    for _ in range(num_cliques - 1):
        graph = generators.disjoint_union(graph, blocks)
    srcs = list(graph.edge_sources())
    dsts = list(graph.indices)
    for i in range(num_cliques - 1):
        a = i * clique_size
        b = (i + 1) * clique_size
        srcs += [a, b]
        dsts += [b, a]
    return Graph.from_arrays(
        num_cliques * clique_size, np.array(srcs), np.array(dsts)
    ).symmetrized()


def run(algorithm, graph, hosts=2, policy="oec", **kwargs):
    return algorithm(
        Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy), **kwargs
    )


class TestModularityHelper:
    def test_singletons_modularity(self):
        graph = generators.complete(4)
        labels = np.arange(4)
        # Each singleton: no internal edges; Q = -sum((k/2m)^2)
        assert modularity(graph, labels) == pytest.approx(-4 * (3 / 12) ** 2)

    def test_matches_networkx(self):
        graph = generators.powerlaw_like(6, seed=1, weighted=True)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, graph.num_nodes)
        communities = [
            {int(n) for n in np.flatnonzero(labels == c)} for c in range(5)
        ]
        communities = [c for c in communities if c]
        expected = nx.algorithms.community.modularity(
            graph.to_networkx().to_undirected(), communities, weight="weight"
        )
        assert modularity(graph, labels) == pytest.approx(expected)

    def test_all_in_one_community(self):
        graph = generators.cycle(6)
        assert modularity(graph, np.zeros(6, dtype=int)) == pytest.approx(0.0)


class TestCoarsen:
    def test_preserves_total_weight(self):
        graph = generators.powerlaw_like(6, seed=2, weighted=True)
        labels = np.arange(graph.num_nodes) // 4
        coarse, _ = coarsen(graph, labels)
        assert coarse.weights.sum() == pytest.approx(graph.weights.sum())

    def test_preserves_strengths(self):
        graph = generators.road_like(6, 4, seed=1, weighted=True)
        labels = np.arange(graph.num_nodes) % 7
        coarse, coarse_of = coarsen(graph, labels)
        fine_strengths = weighted_degrees(graph)
        coarse_strengths = weighted_degrees(coarse)
        for coarse_node in range(coarse.num_nodes):
            members = np.flatnonzero(coarse_of == coarse_node)
            assert coarse_strengths[coarse_node] == pytest.approx(
                fine_strengths[members].sum()
            )

    def test_intra_edges_become_self_loops(self):
        graph = generators.complete(4).with_unit_weights()
        coarse, _ = coarsen(graph, np.zeros(4, dtype=int))
        assert coarse.num_nodes == 1
        assert coarse.num_edges == 1  # one self-loop
        assert coarse.weights[0] == pytest.approx(12.0)

    def test_modularity_invariant_under_coarsening(self):
        """Aggregating a partition must not change its modularity - the
        invariant Louvain's level structure relies on."""
        graph = generators.powerlaw_like(6, seed=3, weighted=True)
        labels = np.arange(graph.num_nodes) % 9
        coarse, coarse_of = coarsen(graph, labels)
        fine_q = modularity(graph, labels)
        coarse_q = modularity(coarse, np.arange(coarse.num_nodes) % 3 * 0 + np.arange(coarse.num_nodes) * 0 + np.arange(coarse.num_nodes) // 3)
        # compare with the same grouping projected down
        projected = (np.arange(coarse.num_nodes) // 3)[coarse_of]
        assert modularity(graph, projected) == pytest.approx(
            modularity(coarse, np.arange(coarse.num_nodes) // 3)
        )


@pytest.mark.parametrize("algorithm", [louvain, leiden])
class TestCommunityDetection:
    def test_recovers_planted_cliques(self, algorithm):
        graph = planted_cliques(4, 6)
        result = run(algorithm, graph)
        assert result.stats["num_communities"] == 4
        # every clique ends up in a single community
        labels = [result.values[n] for n in range(graph.num_nodes)]
        for clique in range(4):
            members = labels[clique * 6 : (clique + 1) * 6]
            assert len(set(members)) == 1

    def test_partition_is_total(self, algorithm):
        graph = generators.powerlaw_like(6, seed=5, weighted=True)
        result = run(algorithm, graph)
        assert set(result.values) == set(range(graph.num_nodes))

    def test_positive_modularity_on_modular_graph(self, algorithm):
        graph = planted_cliques(3, 7)
        result = run(algorithm, graph)
        assert result.stats["modularity"] > 0.5

    def test_single_host(self, algorithm):
        graph = planted_cliques(3, 5)
        result = run(algorithm, graph, hosts=1)
        assert result.stats["num_communities"] == 3

    def test_deterministic(self, algorithm):
        graph = generators.powerlaw_like(6, seed=8, weighted=True)
        first = run(algorithm, graph)
        second = run(algorithm, graph)
        assert first.values == second.values


class TestLeidenGuarantee:
    def test_all_communities_connected(self):
        """Leiden's headline property (Traag et al.): every community is
        internally connected. Louvain does not guarantee this."""
        graph = generators.powerlaw_like(7, seed=4, weighted=True)
        result = run(leiden, graph, hosts=3)
        nx_graph = graph.to_networkx().to_undirected()
        labels = result.values
        for community in set(labels.values()):
            members = [n for n, c in labels.items() if c == community]
            induced = nx_graph.subgraph(members)
            assert nx.is_connected(induced), f"community {community} disconnected"

    def test_leiden_quality_at_least_comparable(self):
        graph = planted_cliques(4, 6)
        louvain_q = run(louvain, graph).stats["modularity"]
        leiden_q = run(leiden, graph).stats["modularity"]
        assert leiden_q >= louvain_q - 0.05

    def test_leiden_slower_than_louvain(self):
        """The paper reports LD ~7x slower than LV (more edge iterations for
        refining). Directionally, LD must cost more modeled time."""
        graph = generators.powerlaw_like(6, seed=6, weighted=True)
        lv_cluster = Cluster(2, threads_per_host=4)
        louvain(lv_cluster, partition(graph, 2, "oec"))
        ld_cluster = Cluster(2, threads_per_host=4)
        leiden(ld_cluster, partition(graph, 2, "oec"))
        assert ld_cluster.elapsed().total > lv_cluster.elapsed().total


class TestVariants:
    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_louvain_all_variants_agree(self, variant):
        graph = planted_cliques(3, 5)
        baseline = run(louvain, graph).values
        assert run(louvain, graph, variant=variant).values == baseline
