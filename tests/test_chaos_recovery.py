"""The self-healing pool's contract: real worker kills recover byte-identically.

``tests/test_parallel_equivalence.py`` pins the fault-free ``jobs=N``
byte-identity contract; this module pins the *recovery* contract from
ISSUE 7: a ``jobs=N`` run that loses a worker to a real ``SIGKILL``
(or ``SIGTERM``, or a simulated OOM kill) at **any** sync boundary
completes with ``RunResult.to_dict()`` byte-identical to an undisturbed
``jobs=1`` run, under both recovery policies (``refork`` re-forks a
replacement; ``reshard`` re-deals the dead worker's hosts onto the
survivors, degrading to the serial path when the last worker is gone).

The kill-sweep drives a seeded :class:`~repro.faults.chaos.ChaosPlan`
through every sync boundary (sampled with a spread when an app has many)
for two applications on both kernel backends. The rest covers the
supervisor's failure taxonomy (typed, picklable, context-carrying
errors), arena-corruption recovery, the silent-worker timeout, chaos
composed with the *modeled* fault layer, and the zero-overhead gate
(``fail-fast`` + no chaos counts nothing and changes nothing).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

from repro.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.eval.harness import run_kimbap
from repro.exec import EdgePush, Executor, Operator, OperatorStep, Plan
from repro.exec.pool import (
    HEALABLE_ERRORS,
    ArenaCorruption,
    ArenaIntegrityError,
    ExchangeTimeout,
    HostShardPool,
    PoolError,
    ProtocolDivergence,
    WorkerDied,
    _Arena,
    fork_available,
)
from repro.faults import (
    CHAOS_SCHEMA,
    ChaosEvent,
    ChaosPlan,
    FaultPlan,
    HostCrash,
    random_chaos,
)
from repro.graph import generators
from repro.partition.policies import partition

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="host-parallel execution needs POSIX fork"
)

GRAPH = generators.erdos_renyi(24, 2.0, seed=5)
HOSTS = 4
POLICIES = ("refork", "reshard")


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run(app, *, jobs=1, bulk=False, recovery="fail-fast", chaos=None, faults=None):
    return run_kimbap(
        app,
        "chaos",
        HOSTS,
        graph=GRAPH,
        threads=2,
        jobs=jobs,
        bulk=bulk,
        recovery=recovery,
        chaos_plan=chaos,
        fault_plan=faults,
    )


# Shared across the sweep: the jobs=1 oracle and the boundary count of a
# fault-free healing-armed run, computed once per (app, backend).
_BASELINES: dict[tuple[str, bool], str] = {}
_BOUNDARIES: dict[tuple[str, bool], int] = {}


def baseline(app, bulk=False) -> str:
    key = (app, bulk)
    if key not in _BASELINES:
        _BASELINES[key] = canonical(run(app, bulk=bulk))
    return _BASELINES[key]


def probe_boundaries(app, bulk=False) -> int:
    """Sync-boundary count of a fault-free ``jobs=2`` run with the
    supervisor armed - which doubles as the heals-nothing zero-diff check."""
    key = (app, bulk)
    if key not in _BOUNDARIES:
        result = run(app, jobs=2, bulk=bulk, recovery="refork")
        assert canonical(result) == baseline(app, bulk)
        stats = result.parallel
        assert stats["deaths_detected"] == 0
        assert stats["heals"] == 0
        assert stats["boundaries"] > 0
        _BOUNDARIES[key] = stats["boundaries"]
    return _BOUNDARIES[key]


def spread(count: int, cap: int = 8) -> list[int]:
    """Every boundary when there are few; an even spread (always
    including the first, second, and last) when there are many."""
    if count <= cap:
        return list(range(1, count + 1))
    step = (count - 1) / (cap - 1)
    picked = {1, 2, count} | {1 + round(i * step) for i in range(cap)}
    return sorted(min(max(b, 1), count) for b in picked)


# ------------------------------------------------ the kill-at-boundary sweep


@needs_fork
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("bulk", (False, True), ids=("scalar", "bulk"))
@pytest.mark.parametrize("app", ("K-CORE", "CC-SV"))
class TestKillSweep:
    def test_kill_at_each_boundary_recovers_identically(self, app, bulk, policy):
        expect = baseline(app, bulk)
        for boundary in spread(probe_boundaries(app, bulk)):
            chaos = ChaosPlan(
                name=f"kill@{boundary}",
                events=(ChaosEvent(boundary=boundary, worker=1),),
            )
            result = run(app, jobs=2, bulk=bulk, recovery=policy, chaos=chaos)
            assert canonical(result) == expect, (
                f"{app} bulk={bulk} {policy}: SIGKILL at boundary {boundary} "
                "diverged from the jobs=1 oracle"
            )
            stats = result.parallel
            assert stats["deaths_detected"] == 1, (app, bulk, policy, boundary)
            assert stats["heals"] == 1
            if policy == "reshard":
                # jobs=2 minus one shard degrades to the serial path.
                assert stats["reshards"] == 1
            else:
                assert stats["reforks"] == 1


# --------------------------------------------- acceptance + kill-kind matrix


@needs_fork
class TestChaosRecovery:
    @pytest.mark.parametrize("policy,worker", (("refork", 2), ("reshard", 3)))
    def test_pagerank_jobs4_loses_a_worker(self, policy, worker):
        """The ISSUE acceptance case: PageRank at jobs=4, one worker
        SIGKILLed mid-run, byte-identical under either policy."""
        chaos = ChaosPlan(events=(ChaosEvent(boundary=3, worker=worker),))
        result = run("PR", jobs=4, recovery=policy, chaos=chaos)
        assert canonical(result) == baseline("PR")
        stats = result.parallel
        assert stats["deaths_detected"] == 1
        assert stats["heals"] == 1

    @pytest.mark.parametrize("kind", ("sigterm", "oom"))
    def test_other_kill_kinds(self, kind):
        chaos = ChaosPlan(events=(ChaosEvent(boundary=3, worker=1, kind=kind),))
        result = run("CC-SV", jobs=2, recovery="refork", chaos=chaos)
        assert canonical(result) == baseline("CC-SV")
        assert result.parallel["deaths_detected"] == 1

    def test_two_kills_refork(self):
        chaos = ChaosPlan(
            events=(
                ChaosEvent(boundary=2, worker=1),
                ChaosEvent(boundary=9, worker=3),
            )
        )
        result = run("CC-SV", jobs=4, recovery="refork", chaos=chaos)
        assert canonical(result) == baseline("CC-SV")
        stats = result.parallel
        assert stats["deaths_detected"] == 2
        assert stats["reforks"] == 2

    def test_two_kills_reshard_shrinks_twice(self):
        chaos = ChaosPlan(
            events=(
                ChaosEvent(boundary=2, worker=1),
                ChaosEvent(boundary=9, worker=1),
            )
        )
        result = run("CC-SV", jobs=4, recovery="reshard", chaos=chaos)
        assert canonical(result) == baseline("CC-SV")
        stats = result.parallel
        assert stats["deaths_detected"] == 2
        assert stats["reshards"] == 2

    def test_chaos_composes_with_modeled_faults(self):
        """A modeled HostCrash (restore-and-replay, priced in the faults
        report) plus a real SIGKILL in the same run: results and faults
        report both match the chaos-free serial run."""
        faults = FaultPlan(
            name="crash@2",
            checkpoint_interval=2,
            crashes=(HostCrash(host=1, round=2),),
        )
        serial = run("CC-LP", faults=faults)
        chaos = ChaosPlan(events=(ChaosEvent(boundary=4, worker=1),))
        chaotic = run("CC-LP", jobs=2, recovery="refork", chaos=chaos, faults=faults)
        assert canonical(serial) == canonical(chaotic)
        assert serial.faults == chaotic.faults
        assert serial.faults["recoveries"] >= 1
        assert chaotic.parallel["deaths_detected"] == 1

    def test_fail_fast_counts_nothing(self):
        """The zero-overhead gate: without healing or chaos the pool never
        counts boundaries (the supervisor machinery is fully off)."""
        result = run("K-CORE", jobs=2)
        assert canonical(result) == baseline("K-CORE")
        stats = result.parallel
        assert stats["boundaries"] == 0
        assert stats["heals"] == 0


# ------------------------------------------------- arena corruption recovery


@needs_fork
class TestArenaCorruptionRecovery:
    def test_corrupt_coordinator_read_heals(self, monkeypatch):
        """A frame that fails validation raises ArenaCorruption into the
        same recovery path as a dead worker: the run still completes
        byte-identical to jobs=1."""
        expect = baseline("CC-SV")
        owner = os.getpid()
        fired = {"done": False}
        real_read = _Arena.read

        def flaky_read(self, slot, via, seq=0, check=False):
            if not fired["done"] and os.getpid() == owner and via[0] == "shm":
                fired["done"] = True
                raise ArenaIntegrityError("synthetic frame corruption (test)")
            return real_read(self, slot, via, seq=seq, check=check)

        monkeypatch.setattr(_Arena, "read", flaky_read)
        result = run("CC-SV", jobs=2, recovery="refork")
        assert canonical(result) == expect
        stats = result.parallel
        assert stats["heals"] >= 1
        assert stats["diagnostics"] >= 1


# ----------------------------------------------------- supervisor unit tests


class _AliveProcess:
    pid = 4242

    @staticmethod
    def is_alive() -> bool:
        return True


def _shardable_pool() -> HostShardPool:
    cluster = Cluster(HOSTS, threads_per_host=2)
    pgraph = partition(GRAPH, HOSTS, "cvc")
    target = NodePropMap(cluster, pgraph, "dist")
    plan = Plan(
        name="p",
        pgraph=pgraph,
        steps=[OperatorStep(Operator("push", "all", EdgePush(target=target, op=MIN)))],
        once=True,
    )
    return HostShardPool(Executor(cluster, jobs=2, recovery="refork"), plan, jobs=2)


class TestSupervisorUnits:
    def test_silent_worker_times_out(self):
        pool = _shardable_pool()
        pool.exchange_timeout = 0.2
        parent, child = multiprocessing.get_context("fork").Pipe()
        try:
            with pytest.raises(ExchangeTimeout) as exc:
                pool._watch_peer(parent, 1, _AliveProcess())
        finally:
            parent.close()
            child.close()
        assert exc.value.worker == 1
        assert "sent nothing" in str(exc.value)
        assert pool.dead

    def test_executor_rejects_unknown_recovery(self):
        with pytest.raises(ValueError, match="recovery"):
            Executor(Cluster(2), recovery="bogus")


# -------------------------------------------------------- the error taxonomy


class TestPoolErrorTaxonomy:
    def test_context_in_message_and_attributes(self):
        err = WorkerDied("worker gone", worker=2, shard=(3, 4, 5), phase="exchange")
        assert (err.worker, err.shard, err.phase) == (2, (3, 4, 5), "exchange")
        text = str(err)
        assert "worker 2" in text
        assert "hosts 3..5" in text
        assert "phase 'exchange'" in text

    def test_pickles_with_context(self):
        err = ExchangeTimeout("slow", worker=1, shard=(0, 1), phase="flush")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ExchangeTimeout)
        assert (clone.worker, clone.shard, clone.phase) == (1, (0, 1), "flush")
        assert str(clone) == str(err)

    def test_healable_set(self):
        assert set(HEALABLE_ERRORS) == {WorkerDied, ExchangeTimeout, ArenaCorruption}
        for cls in HEALABLE_ERRORS:
            assert issubclass(cls, PoolError)
            assert issubclass(cls, RuntimeError)
        # A protocol divergence means the replicas disagree - replaying
        # the same divergent state cannot help, so it is never healed.
        assert issubclass(ProtocolDivergence, PoolError)
        assert ProtocolDivergence not in HEALABLE_ERRORS


# ------------------------------------------------------------ the chaos plan


class TestChaosPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="boundary"):
            ChaosEvent(boundary=0, worker=1)
        with pytest.raises(ValueError, match="coordinator"):
            ChaosEvent(boundary=1, worker=0)
        with pytest.raises(ValueError, match="kind"):
            ChaosEvent(boundary=1, worker=1, kind="nuke")

    def test_describe_is_json_ready(self):
        plan = ChaosPlan(
            name="demo", seed=7, events=(ChaosEvent(boundary=2, worker=1),)
        )
        described = plan.describe()
        assert described["schema"] == CHAOS_SCHEMA
        assert described["events"] == [
            {"boundary": 2, "worker": 1, "kind": "sigkill"}
        ]
        json.dumps(described)  # must serialize

    def test_random_chaos_is_seed_deterministic(self):
        one = random_chaos(11, workers=3, boundaries=40, events=3)
        two = random_chaos(11, workers=3, boundaries=40, events=3)
        assert one == two
        assert len(one.events) == 3
        boundaries = [event.boundary for event in one.events]
        assert boundaries == sorted(boundaries)
        assert len(set(boundaries)) == 3
        for event in one.events:
            assert 1 <= event.boundary <= 40
            assert 1 <= event.worker <= 3
            assert event.kind in ("sigkill", "sigterm", "oom")
        assert random_chaos(12, workers=3, boundaries=40, events=3) != one
