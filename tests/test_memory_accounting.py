"""Memory accounting tests: the paper's max-RSS comparisons and OOM cells."""

from __future__ import annotations

import pytest

from repro.algorithms import cc_lp, leiden, louvain
from repro.baselines import vite_louvain
from repro.cluster import Cluster
from repro.cluster.cluster import SimulatedOutOfMemory
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, NodePropMap
from repro.graph import generators
from repro.partition import partition

GRAPH = generators.road_like(8, 4, seed=2, weighted=True)


class TestTracking:
    def test_peak_is_monotone(self):
        cluster = Cluster(2)
        cluster.track_memory(0, "a", 100)
        cluster.track_memory(0, "a", 10)  # shrinking does not lower the peak
        assert cluster.peak_memory_slots[0] == 100

    def test_owners_accumulate_per_host(self):
        cluster = Cluster(2)
        cluster.track_memory(0, "a", 100)
        cluster.track_memory(0, "b", 50)
        cluster.track_memory(1, "a", 10)
        assert cluster.peak_memory_slots == [150, 10]
        assert cluster.max_memory_slots() == 150

    def test_release(self):
        cluster = Cluster(1)
        cluster.track_memory(0, "a", 100)
        cluster.release_memory("a")
        cluster.track_memory(0, "b", 10)
        assert cluster.peak_memory_slots[0] == 100  # peak sticks
        assert cluster._live_slots == {(0, "b"): 10}

    def test_limit_raises(self):
        cluster = Cluster(1, memory_limit_slots=100)
        cluster.track_memory(0, "a", 60)
        with pytest.raises(SimulatedOutOfMemory):
            cluster.track_memory(0, "b", 60)


class TestPropMapFootprint:
    def test_map_reports_on_init(self):
        pgraph = partition(GRAPH, 2, "oec")
        cluster = Cluster(2, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "m")
        prop.set_initial(lambda node: node)
        assert cluster.max_memory_slots() > 0

    def test_pending_reductions_counted(self):
        pgraph = partition(GRAPH, 2, "oec")
        cluster = Cluster(2, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "m")
        prop.set_initial(lambda node: node)
        base = cluster.max_memory_slots()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for key in range(GRAPH.num_nodes):
                prop.reduce(0, key % 4, key, -1, MIN)
        prop.reduce_sync()
        assert cluster.max_memory_slots() > base

    def test_two_maps_cost_more_than_one(self):
        pgraph = partition(GRAPH, 2, "oec")
        one = Cluster(2, threads_per_host=4)
        NodePropMap(one, pgraph, "a").set_initial(lambda n: n)
        two = Cluster(2, threads_per_host=4)
        NodePropMap(two, pgraph, "a").set_initial(lambda n: n)
        NodePropMap(two, pgraph, "b").set_initial(lambda n: n)
        assert two.max_memory_slots() > one.max_memory_slots()


class TestPaperClaims:
    def test_ld_uses_more_memory_than_lv(self):
        """Figure 9b's missing points: 'LD runs out-of-memory in some cases
        because it consumes more memory to store additional information for
        subclusters compared to LV.'"""
        lv_cluster = Cluster(2, threads_per_host=4)
        louvain(lv_cluster, partition(GRAPH, 2, "oec"))
        ld_cluster = Cluster(2, threads_per_host=4)
        leiden(ld_cluster, partition(GRAPH, 2, "oec"))
        assert ld_cluster.max_memory_slots() > lv_cluster.max_memory_slots()

    def test_ld_ooms_where_lv_fits(self):
        lv_peak = Cluster(2, threads_per_host=4)
        louvain(lv_peak, partition(GRAPH, 2, "oec"))
        limit = int(lv_peak.max_memory_slots() * 1.2)

        ok_cluster = Cluster(2, threads_per_host=4, memory_limit_slots=limit)
        louvain(ok_cluster, partition(GRAPH, 2, "oec"))  # LV fits

        oom_cluster = Cluster(2, threads_per_host=4, memory_limit_slots=limit)
        with pytest.raises(SimulatedOutOfMemory):
            leiden(oom_cluster, partition(GRAPH, 2, "oec"))

    def test_kimbap_rss_within_a_small_factor_of_vite(self):
        """Section 6.2: Kimbap's max RSS ~10% above Vite's (thread-local
        maps cost memory). Our modeled footprints must stay in that
        neighbourhood: higher than Vite, but not by multiples."""
        kimbap_cluster = Cluster(4, threads_per_host=8)
        louvain(kimbap_cluster, partition(GRAPH, 4, "oec"))
        vite_cluster = Cluster(4, threads_per_host=8)
        vite_louvain(vite_cluster, partition(GRAPH, 4, "oec"))
        ratio = kimbap_cluster.max_memory_slots() / vite_cluster.max_memory_slots()
        assert 1.0 <= ratio < 3.0

    def test_cc_lp_modest_footprint(self):
        """Section 6.2: for CC-LP, Kimbap's max RSS ~ Gluon's. One label
        map: footprint stays within a small multiple of the proxy count."""
        pgraph = partition(GRAPH, 2, "cvc")
        cluster = Cluster(2, threads_per_host=4)
        cc_lp(cluster, pgraph)
        proxies = max(part.num_local for part in pgraph.parts)
        assert cluster.max_memory_slots() < 4 * proxies
