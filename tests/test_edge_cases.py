"""Edge cases and failure injection across the stack."""

from __future__ import annotations

import math

import pytest

from repro import verify
from repro.algorithms import bfs, cc_lp, cc_sv, k_core, mis, pagerank
from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, NodePropMap
from repro.graph import Graph, generators
from repro.partition import POLICIES, partition


class TestMoreHostsThanNodes:
    """Over-decomposition must degrade gracefully: empty partitions exist,
    answers stay exact."""

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_partition_keeps_all_hosts(self, policy):
        graph = generators.path(3)
        pgraph = partition(graph, 8, policy)
        assert pgraph.num_hosts == 8
        total_masters = sum(p.num_masters for p in pgraph.parts)
        assert total_masters == 3

    def test_cc_sv_still_correct(self):
        graph = generators.path(3)
        result = cc_sv(Cluster(8, threads_per_host=2), partition(graph, 8, "cvc"))
        verify.check_components(graph, result.values)

    def test_single_node_many_hosts(self):
        graph = Graph.from_edge_list(1, [])
        result = cc_lp(Cluster(4, threads_per_host=2), partition(graph, 4, "oec"))
        assert result.values == {0: 0}

    def test_mis_on_overdecomposed_graph(self):
        graph = generators.cycle(5)
        result = mis(Cluster(7, threads_per_host=2), partition(graph, 7, "cvc"))
        verify.check_independent_set(graph, result.values)


class TestPropMapMisuse:
    def make(self):
        graph = generators.path(4)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=2)
        return cluster, NodePropMap(cluster, pgraph, "m")

    def test_out_of_range_reduce_rejected(self):
        cluster, prop = self.make()
        prop.set_initial(lambda node: node)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                prop.reduce(0, 0, 99, 1, MIN)
            with pytest.raises(KeyError):
                prop.reduce(0, 0, -1, 1, MIN)

    def test_read_before_initialization_raises(self):
        cluster, prop = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                prop.read(0, 0)

    def test_double_pin_is_idempotent(self):
        cluster, prop = self.make()
        prop.set_initial(lambda node: node)
        prop.pin_mirrors()
        prop.pin_mirrors()
        assert prop.pinned
        prop.unpin_mirrors()
        assert not prop.pinned

    def test_unpin_without_pin_is_noop(self):
        cluster, prop = self.make()
        prop.unpin_mirrors()
        assert not prop.pinned

    def test_broadcast_unpinned_is_free(self):
        cluster, prop = self.make()
        prop.set_initial(lambda node: node)
        cluster.reset()
        prop.broadcast_sync()
        assert cluster.log.phases == []


class TestDegenerateGraphs:
    def test_self_loop_only_graph(self):
        graph = Graph.from_edge_list(3, [(0, 0), (1, 1)])
        result = cc_sv(Cluster(2, threads_per_host=2), partition(graph, 2, "oec"))
        assert result.values == {0: 0, 1: 1, 2: 2}

    def test_bfs_from_isolated_source(self):
        graph = generators.disjoint_union(
            Graph.from_edge_list(1, []), generators.path(4)
        )
        result = bfs(
            Cluster(2, threads_per_host=2), partition(graph, 2, "cvc"), source=0
        )
        assert result.values[0] == 0
        assert all(result.values[n] == math.inf for n in range(1, 5))

    def test_pagerank_on_single_node(self):
        graph = Graph.from_edge_list(1, [])
        result = pagerank(Cluster(1), partition(graph, 1, "oec"))
        assert result.values[0] == pytest.approx(1.0)

    def test_k_core_on_tree_is_one(self):
        graph = generators.path(10)
        result = k_core(Cluster(2, threads_per_host=2), partition(graph, 2, "oec"))
        assert all(v == 1 for v in result.values.values())

    def test_dense_parallel_structure(self):
        graph = generators.complete(5, weighted=True)
        for policy in sorted(POLICIES):
            result = cc_sv(
                Cluster(3, threads_per_host=2), partition(graph, 3, policy)
            )
            assert all(v == 0 for v in result.values.values())


class TestClusterEdgeCases:
    def test_single_thread_host(self):
        graph = generators.path(6)
        result = cc_lp(Cluster(2, threads_per_host=1), partition(graph, 2, "oec"))
        verify.check_components(graph, result.values)

    def test_many_threads_few_nodes(self):
        graph = generators.path(3)
        result = cc_lp(Cluster(1, threads_per_host=64), partition(graph, 1, "oec"))
        verify.check_components(graph, result.values)

    def test_counters_by_kind_partition_log(self):
        cluster = Cluster(2)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            cluster.counters(0).local_ops += 5
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.counters(1).local_ops += 3
        by_kind = cluster.log.counters_by_kind()
        assert by_kind[PhaseKind.REDUCE_COMPUTE].local_ops == 5
        assert by_kind[PhaseKind.REDUCE_SYNC].local_ops == 3
