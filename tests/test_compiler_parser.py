"""Parser tests: Figure 4 source round-trips to the hand-built IR."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.compiler.compile import compile_program
from repro.compiler.interp import run_compiled
from repro.compiler.parser import ParseError, parse_program, tokenize
from repro.compiler.programs import cc_lp_program, cc_sv_hook, cc_sv_shortcut
from repro.core import NodePropMap
from repro.graph import generators
from repro.partition import partition
from repro.runtime import BoolReducer

HOOK_SOURCE = """
// Figure 4's Hook, as source text
while_updated parent {
  parfor src in nodes {
    src_parent = parent.read(src);
    for edge in edges(src) {
      dst_parent = parent.read(edge.dst);
      if (src_parent > dst_parent) {
        work_done.reduce_or(true);
        parent.reduce(src_parent, dst_parent, min);
      }
    }
  }
}
"""

SHORTCUT_SOURCE = """
while_updated parent {
  parfor node in nodes {
    parent_value = parent.read(node);
    grand_parent = parent.read(parent_value);
    if (parent_value != grand_parent) {
      parent.reduce(node, grand_parent, min);
    }
  }
}
"""

LP_SOURCE = """
while_updated label {
  parfor src in nodes {
    label_value = label.read(src);
    for edge in edges(src) {
      label.reduce(edge.dst, label_value, min);
    }
  }
}
"""


class TestTokenizer:
    def test_tokens(self):
        tokens = tokenize("a = b.read(c); // comment\n}")
        texts = [t.text for t in tokens]
        assert texts == ["a", "=", "b", ".", "read", "(", "c", ")", ";", "}", ""]

    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert tokens[0].text == "1"
        assert tokens[1].text == "2.5"

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_multi_char_operators(self):
        texts = [t.text for t in tokenize("a >= b != c")]
        assert ">=" in texts and "!=" in texts


class TestRoundTrip:
    """Parsed source must equal the hand-constructed IR exactly (frozen
    dataclass equality), so the whole downstream pipeline is shared."""

    def test_hook(self):
        parsed = parse_program(HOOK_SOURCE, name="hook")
        assert parsed == cc_sv_hook()

    def test_shortcut(self):
        parsed = parse_program(SHORTCUT_SOURCE, name="shortcut")
        assert parsed == cc_sv_shortcut()

    def test_cc_lp(self):
        parsed = parse_program(LP_SOURCE, name="cc_lp")
        assert parsed == cc_lp_program()

    def test_parsed_program_compiles_identically(self):
        parsed_loop = compile_program(parse_program(HOOK_SOURCE, name="hook"))
        built_loop = compile_program(cc_sv_hook())
        assert parsed_loop.describe() == built_loop.describe()


class TestEndToEnd:
    def test_parsed_cc_sv_runs_correctly(self):
        graph = generators.road_like(6, 4, seed=1)
        pgraph = partition(graph, 3, "cvc")
        cluster = Cluster(3, threads_per_host=4)
        parent = NodePropMap(cluster, pgraph, "parent")
        parent.set_initial(lambda node: node)
        work_done = BoolReducer(cluster, "work_done")
        hook = compile_program(parse_program(HOOK_SOURCE, name="hook"))
        shortcut = compile_program(parse_program(SHORTCUT_SOURCE, name="shortcut"))
        maps = {"parent": parent}
        reducers = {"work_done": work_done}
        while True:
            work_done.set_all(False)
            run_compiled(hook, cluster, pgraph, maps, reducers)
            work_done.sync()
            run_compiled(shortcut, cluster, pgraph, maps, reducers)
            if not work_done.read():
                break
        from repro.verify import check_components

        check_components(graph, parent.snapshot())


class TestSyntaxErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("while_updated m { parfor n in nodes { a = n } }")

    def test_unknown_reduce_op(self):
        with pytest.raises(ParseError):
            parse_program(
                "while_updated m { parfor n in nodes { m.reduce(n, n, xor); } }"
            )

    def test_foreign_edges_rejected(self):
        """Section 3.2: only the active node's edges are accessible."""
        with pytest.raises(ParseError):
            parse_program(
                "while_updated m { parfor n in nodes {"
                " other = m.read(n);"
                " for e in edges(other) { } } }"
            )

    def test_dst_on_non_edge_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "while_updated m { parfor n in nodes { a = n.dst; } }"
            )

    def test_nested_read_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "while_updated m { parfor n in nodes {"
                " m.reduce(n, m.read(n) + 1, min); } }"
            )

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_program(HOOK_SOURCE + " extra")

    def test_keyword_as_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_program("while_updated nodes { parfor n in nodes { } }")

    def test_unknown_attribute(self):
        with pytest.raises(ParseError):
            parse_program(
                "while_updated m { parfor n in nodes {"
                " for e in edges(n) { a = e.src; } } }"
            )


class TestExpressions:
    def test_arithmetic_precedence(self):
        program = parse_program(
            "while_updated m { parfor n in nodes { a = 1 + 2 * 3; } }"
        )
        from repro.compiler.ir import Assign, BinOp, Const

        assign = program.par_for.body[0]
        assert assign == Assign("a", BinOp("+", Const(1), BinOp("*", Const(2), Const(3))))

    def test_parentheses_override(self):
        program = parse_program(
            "while_updated m { parfor n in nodes { a = (1 + 2) * 3; } }"
        )
        from repro.compiler.ir import BinOp

        assert program.par_for.body[0].expr.op == "*"

    def test_min_max_functions(self):
        program = parse_program(
            "while_updated m { parfor n in nodes { a = min(n, 5); } }"
        )
        assert program.par_for.body[0].expr.op == "min"

    def test_boolean_chain(self):
        program = parse_program(
            "while_updated m { parfor n in nodes {"
            " a = not (n > 1) and true or false; } }"
        )
        assert program.par_for.body[0].expr.op == "or"

    def test_edge_weight(self):
        program = parse_program(
            "while_updated m { parfor n in nodes {"
            " for e in edges(n) { m.reduce(e.dst, e.weight, sum); } } }"
        )
        from repro.compiler.ir import EdgeWeight, ForEdges

        loop = program.par_for.body[0]
        assert isinstance(loop, ForEdges)
        assert loop.body[0].value == EdgeWeight("e")


class TestUnparser:
    """print -> parse must be the identity on user-level IR."""

    def test_round_trips_the_figure4_programs(self):
        from repro.compiler.parser import to_source

        for factory in (cc_sv_hook, cc_sv_shortcut, cc_lp_program):
            program = factory()
            source = to_source(program, active_var="src")
            assert parse_program(source, name=program.name) == program

    def test_rejects_compiler_internal_statements(self):
        from repro.compiler.ir import ActiveNode, KimbapWhile, MapRequest, ParFor, stmts
        from repro.compiler.parser import to_source

        program = KimbapWhile(
            ("m",), ParFor(stmts(MapRequest("m", ActiveNode())))
        )
        with pytest.raises(TypeError):
            to_source(program)

    def test_property_random_programs_round_trip(self):
        from hypothesis import given, settings

        from repro.compiler.parser import to_source
        from tests.test_compiler_properties import bodies

        from repro.compiler.ir import KimbapWhile, ParFor

        @given(bodies())
        @settings(max_examples=60, deadline=None)
        def check(body):
            program = KimbapWhile(("m",), ParFor(body), name="p")
            source = to_source(program)
            assert parse_program(source, name="p") == program

        check()
