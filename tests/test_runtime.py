"""Tests for the BSP runtime: par_for, kimbap_while, BoolReducer."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, NodePropMap
from repro.graph import generators
from repro.partition import partition
from repro.runtime import BoolReducer, kimbap_while, par_for


@pytest.fixture
def setting():
    graph = generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, 3, "oec")
    cluster = Cluster(3, threads_per_host=4)
    return graph, pgraph, cluster


class TestParFor:
    def test_masters_mode_visits_every_node_once(self, setting):
        graph, pgraph, cluster = setting
        visited = []
        par_for(cluster, pgraph, "masters", lambda ctx: visited.append(ctx.node))
        assert sorted(visited) == list(range(graph.num_nodes))

    def test_all_mode_visits_every_proxy(self, setting):
        graph, pgraph, cluster = setting
        count = 0

        def body(ctx):
            nonlocal count
            count += 1

        par_for(cluster, pgraph, "all", body)
        assert count == sum(part.num_local for part in pgraph.parts)

    def test_node_iters_charged(self, setting):
        graph, pgraph, cluster = setting
        par_for(cluster, pgraph, "masters", lambda ctx: None)
        assert cluster.log.total_counters().node_iters == graph.num_nodes

    def test_edge_iteration_charges_and_matches(self, setting):
        graph, pgraph, cluster = setting
        edges = []

        def body(ctx):
            for edge in ctx.edges():
                edges.append((ctx.node, ctx.edge_dst(edge)))

        par_for(cluster, pgraph, "all", body)
        assert sorted(edges) == sorted(graph.iter_edges())
        assert cluster.log.total_counters().edge_iters == graph.num_edges

    def test_threads_cover_range(self, setting):
        graph, pgraph, cluster = setting
        threads = set()
        par_for(cluster, pgraph, "masters", lambda ctx: threads.add(ctx.thread))
        assert max(threads) < cluster.threads_per_host
        assert min(threads) == 0

    def test_phase_kind_recorded(self, setting):
        _, pgraph, cluster = setting
        par_for(
            cluster,
            pgraph,
            "masters",
            lambda ctx: None,
            kind=PhaseKind.REQUEST_COMPUTE,
            label="x",
        )
        assert cluster.log.phases[-1].kind is PhaseKind.REQUEST_COMPUTE
        assert cluster.log.phases[-1].label == "x"

    def test_unknown_mode_rejected(self, setting):
        _, pgraph, cluster = setting
        with pytest.raises(ValueError):
            par_for(cluster, pgraph, "everything", lambda ctx: None)

    def test_charge_helper(self, setting):
        _, pgraph, cluster = setting
        par_for(cluster, pgraph, "masters", lambda ctx: ctx.charge(3))
        counters = cluster.log.total_counters()
        assert counters.local_ops == 3 * counters.node_iters


class TestKimbapWhile:
    def test_runs_until_quiescent(self, setting):
        graph, pgraph, cluster = setting
        prop = NodePropMap(cluster, pgraph, "p")
        prop.set_initial(lambda n: n)

        def round_body():
            def body(ctx):
                value = prop.read_local(ctx.host, ctx.local)
                if value > 0:
                    prop.reduce(ctx.host, ctx.thread, ctx.node, value - 1, MIN)

            par_for(cluster, pgraph, "masters", body)
            prop.reduce_sync()

        rounds = kimbap_while(prop, round_body)
        # the largest initial value needs num_nodes - 1 decrements, plus the
        # final all-quiet round
        assert rounds == graph.num_nodes
        assert all(v == 0 for v in prop.snapshot().values())

    def test_single_quiet_round(self, setting):
        _, pgraph, cluster = setting
        prop = NodePropMap(cluster, pgraph, "p")
        prop.set_initial(lambda n: 0)

        def round_body():
            par_for(cluster, pgraph, "masters", lambda ctx: None)
            prop.reduce_sync()

        assert kimbap_while(prop, round_body) == 1

    def test_max_rounds_guard(self, setting):
        _, pgraph, cluster = setting
        prop = NodePropMap(cluster, pgraph, "p")
        prop.set_initial(lambda n: 0)
        counter = [0]

        def round_body():
            counter[0] += 1

            def body(ctx):
                prop.reduce(ctx.host, ctx.thread, ctx.node, -counter[0], MIN)

            par_for(cluster, pgraph, "masters", body)
            prop.reduce_sync()

        with pytest.raises(RuntimeError):
            kimbap_while(prop, round_body, max_rounds=5)

    def test_multiple_maps_any_update_continues(self, setting):
        _, pgraph, cluster = setting
        first = NodePropMap(cluster, pgraph, "a")
        second = NodePropMap(cluster, pgraph, "b")
        first.set_initial(lambda n: 0)
        second.set_initial(lambda n: 2)

        def round_body():
            def body(ctx):
                value = second.read_local(ctx.host, ctx.local)
                if value > 0:
                    second.reduce(ctx.host, ctx.thread, ctx.node, value - 1, MIN)

            par_for(cluster, pgraph, "masters", body)
            first.reduce_sync()
            second.reduce_sync()

        assert kimbap_while([first, second], round_body) == 3


class TestBoolReducer:
    def test_starts_false_after_reset(self, setting):
        _, _, cluster = setting
        reducer = BoolReducer(cluster)
        reducer.set_all(False)
        reducer.sync()
        assert not reducer.read()

    def test_any_host_flag_wins(self, setting):
        _, _, cluster = setting
        reducer = BoolReducer(cluster)
        reducer.set_all(False)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reducer.reduce(2, True)
        reducer.sync()
        assert reducer.read()

    def test_false_reduce_does_not_clear(self, setting):
        _, _, cluster = setting
        reducer = BoolReducer(cluster)
        reducer.set_all(False)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reducer.reduce(0, True)
            reducer.reduce(0, False)
        reducer.sync()
        assert reducer.read()

    def test_sync_costs_an_allreduce(self, setting):
        _, _, cluster = setting
        reducer = BoolReducer(cluster)
        reducer.set_all(False)
        cluster.reset()
        reducer.sync()
        assert cluster.log.total_messages() == cluster.num_hosts

    def test_set_all_true(self, setting):
        _, _, cluster = setting
        reducer = BoolReducer(cluster)
        reducer.set_all(True)
        reducer.sync()
        assert reducer.read()
