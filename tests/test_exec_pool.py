"""Unit coverage for the host-shard pool's building blocks, the thread
boundary cache (satellite perf fix), and the ``bulk=`` deprecation shim.

The end-to-end byte-identity contract lives in
``tests/test_parallel_equivalence.py``; these tests pin the deterministic
pieces the pool relies on: shard geometry, the per-phase shardability
decisions derived from plan metadata, and operator resolution by name.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms.cc_sv import cc_sv_hook_plan
from repro.algorithms.common import resolve_executor
from repro.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN, ReduceOp
from repro.core.variants import RuntimeVariant
from repro.eval.harness import run_kimbap
from repro.exec import (
    EdgePush,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
)
from repro.exec.pool import (
    POOL_SEGMENT_PREFIX,
    ArenaIntegrityError,
    HostShardPool,
    WorkerDied,
    _ARENA_MAGIC,
    _Arena,
    _encode_payload,
    _encoded_size,
    _FRAME_HEADER,
    _pad,
    _read_encoded,
    _write_encoded,
    create_pool,
    fork_available,
    shard_hosts,
)
from repro.graph import generators
from repro.partition.policies import partition
from repro.runtime.bool_reducer import BoolReducer


# --------------------------------------------------------- shard geometry


class TestShardHosts:
    @pytest.mark.parametrize("num_hosts", (1, 2, 3, 4, 7, 16))
    @pytest.mark.parametrize("shards", (1, 2, 3, 4, 5))
    def test_partition_properties(self, num_hosts, shards):
        parts = shard_hosts(num_hosts, shards)
        # Concatenating shards in shard order is exactly 0..H-1: the
        # coordinator's merge-in-worker-order IS host order.
        flat = [h for part in parts for h in part]
        assert flat == list(range(num_hosts))
        # Contiguous and balanced (sizes differ by at most one).
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_clamps_to_host_count(self):
        assert shard_hosts(2, 8) == [(0,), (1,)]
        assert shard_hosts(4, 1) == [(0, 1, 2, 3)]
        assert shard_hosts(4, 0) == [(0, 1, 2, 3)]


# ------------------------------------------- shardability from plan metadata


@pytest.fixture
def setup():
    graph = generators.erdos_renyi(24, 2.0, seed=5)
    cluster = Cluster(4, threads_per_host=2)
    pgraph = partition(graph, 4, "cvc")
    return cluster, pgraph


def _pool(cluster, plan):
    # Build the pool's decision tables without forking workers.
    return HostShardPool(Executor(cluster, jobs=2), plan, jobs=2)


def _first_operator(plan):
    return next(
        step.operator for step in plan.steps if isinstance(step, OperatorStep)
    )


class TestShardability:
    def test_declared_scalar_kernel_is_shardable(self, setup):
        cluster, pgraph = setup
        parent = NodePropMap(cluster, pgraph, "parent")
        work = BoolReducer(cluster, "work")
        plan = cc_sv_hook_plan(pgraph, parent, work)
        pool = _pool(cluster, plan)
        assert pool.has_shardable_phase()
        assert pool.shardable(_first_operator(plan))

    def test_edge_push_is_shardable(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "dist")
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator("push", "all", EdgePush(target=target, op=MIN))
                )
            ],
            once=True,
        )
        assert _pool(cluster, plan).shardable(_first_operator(plan))

    def test_host_global_kernel_runs_replicated(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "m")
        kernel = ScalarKernel(
            lambda ctx: None,
            write_names=((target.name, MIN.name),),
            host_local=False,
        )
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[OperatorStep(Operator("op", "masters", kernel))],
            maps=(target,),
            once=True,
        )
        pool = _pool(cluster, plan)
        assert not pool.shardable(_first_operator(plan))
        assert not pool.has_shardable_phase()

    def test_unresolvable_reducer_runs_replicated(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "m")
        # A write through a reducer the plan does not carry (no ops=
        # declaration): the phase must degrade to replication, not error.
        kernel = ScalarKernel(
            lambda ctx: None, write_names=((target.name, "bespoke"),)
        )
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[OperatorStep(Operator("op", "masters", kernel))],
            maps=(target,),
            once=True,
        )
        assert not _pool(cluster, plan).shardable(_first_operator(plan))

    def test_declared_ops_make_custom_reducer_shardable(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "m")
        bespoke = ReduceOp("bespoke", lambda a, b: a + b)
        kernel = ScalarKernel(
            lambda ctx: None,
            write_names=((target.name, "bespoke"),),
            ops=(bespoke,),
        )
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[OperatorStep(Operator("op", "masters", kernel))],
            maps=(target,),
            once=True,
        )
        pool = _pool(cluster, plan)
        assert pool.shardable(_first_operator(plan))
        assert pool.resolve_op(target.name, "bespoke") is bespoke

    def test_kvstore_variant_runs_replicated(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "mc", variant=RuntimeVariant.MC)
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator("push", "all", EdgePush(target=target, op=MIN))
                )
            ],
            once=True,
        )
        assert not _pool(cluster, plan).shardable(_first_operator(plan))

    def test_resolve_op_error_names_the_fix(self, setup):
        cluster, pgraph = setup
        target = NodePropMap(cluster, pgraph, "m")
        plan = Plan(
            name="p",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator("push", "all", EdgePush(target=target, op=MIN))
                )
            ],
            once=True,
        )
        pool = _pool(cluster, plan)
        with pytest.raises(RuntimeError, match=r"ScalarKernel\(ops=\.\.\.\)"):
            pool.resolve_op("m", "no-such-op")


# ------------------------------------- thread boundary cache (satellite 1)


class TestBoundaryCache:
    def test_repeated_lookups_hit(self):
        cluster = Cluster(2, threads_per_host=4)
        first = cluster.thread_boundaries(100)
        again = cluster.thread_boundaries(100)
        assert again is first
        assert not again.flags.writeable
        assert cluster.boundary_cache_misses == 1
        assert cluster.boundary_cache_hits == 1
        threads = cluster.threads_of(100)
        assert cluster.threads_of(100) is threads
        # threads_of(100) reused the cached bounds, then its own cache;
        # neither lookup re-derived the boundaries, so misses stay at 1.
        assert cluster.boundary_cache_hits == 3
        assert cluster.boundary_cache_misses == 1

    def test_boundaries_match_closed_form(self):
        cluster = Cluster(1, threads_per_host=3)
        bounds = cluster.thread_boundaries(10)
        assert bounds.tolist() == [0, 4, 7, 10]
        assert cluster.threads_of(10).tolist() == [0] * 4 + [1] * 3 + [2] * 3

    def test_repeated_rounds_hit_the_cache(self):
        """The micro-benchmark: a real multi-round run re-deals the same
        per-host item counts every round, so hits must dwarf misses (the
        miss count is bounded by the distinct item counts, not rounds).

        Pinned to the interpreted bulk path (codegen=False): generated
        kernels bake the thread arrays at specialization time, so the
        compiled path stops consulting the cache per round altogether.
        """
        graph = generators.erdos_renyi(40, 3.0, seed=3)
        result = run_kimbap(
            "PR", "bench", 4, graph=graph, threads=4, bulk=True, codegen=False
        )
        cluster = result.cluster
        assert result.rounds > 2
        assert cluster.boundary_cache_misses <= 8
        assert cluster.boundary_cache_hits > cluster.boundary_cache_misses


# --------------------------------------- bulk= deprecation shim (satellite 2)


class TestBulkDeprecationShim:
    def test_warns_and_points_at_executor(self):
        cluster = Cluster(2, threads_per_host=2)
        with pytest.warns(DeprecationWarning, match=r"Executor\(bulk=\.\.\.\)"):
            executor = resolve_executor(cluster, None, bulk=True, name="pagerank")
        assert executor.bulk is True

    def test_explicit_executor_does_not_warn(self):
        import warnings

        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster, bulk=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_executor(cluster, executor, bulk=None)
        assert resolved is executor


# --------------------- pool lifecycle: forks, deaths, shared segments


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="host-shard parallelism needs POSIX fork"
)


def _segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(POOL_SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # pragma: no cover - platform without /dev/shm
        return set()


def _shardable_plan(cluster, pgraph, name="life"):
    target = NodePropMap(cluster, pgraph, name)
    return Plan(
        name=name,
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator("push", "all", EdgePush(target=target, op=MIN))
            )
        ],
        once=True,
    )


class TestCreatePoolClamp:
    def test_jobs_clamp_to_host_count_with_nonempty_shards(self, setup):
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph)
        pool = HostShardPool(Executor(cluster, jobs=64), plan, jobs=64)
        assert pool.jobs == cluster.num_hosts
        assert len(pool.shards) == cluster.num_hosts
        assert all(pool.shards)

    @needs_fork
    def test_create_pool_never_builds_an_empty_shard(self, setup):
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph)
        pool = create_pool(Executor(cluster, jobs=11), plan)
        assert pool is not None
        assert all(pool.shards)
        assert sum(len(s) for s in pool.shards) == cluster.num_hosts


@needs_fork
class TestForkFailureReaping:
    def test_partial_fork_reaps_children_and_segments(self, setup):
        """Satellite fix: if forking worker k fails, the k-1 already
        started workers and every /dev/shm segment are reaped before the
        error propagates - a partial pool must not leak."""
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph)
        executor = Executor(cluster, jobs=3)
        pool = create_pool(executor, plan)
        before = _segments()
        real_factory = pool._make_process

        def failing_factory(ctx, index, pipes):
            if index == 2:
                raise OSError("simulated fork failure")
            return real_factory(ctx, index, pipes)

        pool._make_process = failing_factory
        with pytest.raises(OSError, match="simulated fork failure"):
            pool.fork_workers(plan)
        assert pool.workers == []
        assert _segments() == before
        import multiprocessing

        for child in multiprocessing.active_children():
            assert not child.name.startswith("repro-host-shard")


@needs_fork
class TestWorkerDeathSurfacing:
    @pytest.mark.parametrize(
        "signum,expect",
        ((signal.SIGTERM, "SIGTERM"), (signal.SIGKILL, "SIGKILL")),
    )
    def test_killed_worker_surfaces_signal_and_cleans_up(
        self, setup, signum, expect
    ):
        """Satellite fix: a dead worker surfaces its signal/exit code in
        the error (not just "pipe closed"), and teardown escalates within
        seconds instead of the old 30s join stall - leaving no segments."""
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph, name=f"death-{expect}")
        executor = Executor(cluster, jobs=2)
        pool = create_pool(executor, plan)
        before = _segments()
        assert pool.begin_run(plan)
        try:
            process, _ = pool.workers[0]
            os.kill(process.pid, signum)
            process.join(timeout=10)
            with pytest.raises(RuntimeError, match=expect) as exc:
                pool.exchange_shards("ping")
            # The typed taxonomy carries the failing worker's identity.
            assert isinstance(exc.value, WorkerDied)
            assert exc.value.worker == 1
            assert exc.value.shard == tuple(pool.shards[1])
        finally:
            pool.shutdown()
        assert _segments() == before
        assert pool.workers == []

    def test_normal_runs_leave_no_segments(self, setup):
        cluster, pgraph = setup
        before = _segments()
        graph = generators.erdos_renyi(40, 3.0, seed=7)
        result = run_kimbap("PR", "life", 4, graph=graph, bulk=True, jobs=2)
        assert _segments() == before
        stats = result.parallel
        assert stats is not None and stats["forks"] >= 1
        assert stats["bytes_exchanged"] > 0
        assert stats["segments_peak"] >= 2

    def test_close_is_idempotent(self, setup):
        """close() twice - then __del__ on top - must not raise or try to
        release the pool's shared segments a second time (the harness
        calls close() explicitly and GC may still run __del__ later)."""
        from repro.algorithms.cc_lp import cc_lp

        cluster, pgraph = setup
        before = _segments()
        executor = Executor(cluster, jobs=2)
        cc_lp(cluster, pgraph, executor=executor)
        stats = executor.parallel_stats()
        assert stats is not None and stats["forks"] >= 1
        executor.close()
        assert _segments() == before
        executor.close()  # second close: no pool left, must be a no-op
        executor.__del__()  # GC path after explicit close: also a no-op
        assert _segments() == before
        assert executor.parallel_stats() is None  # close() dropped the pool

    def test_close_without_pool_is_safe(self, setup):
        """An executor that never forked (jobs=1) closes cleanly twice."""
        cluster, _ = setup
        executor = Executor(cluster)
        executor.close()
        executor.close()
        executor.__del__()
        assert executor.parallel_stats() is None

    def test_failed_run_leaves_no_segments(self, setup):
        """An exception raised mid-parallel-run (on every replica - the
        replay is deterministic) aborts cleanly: close() reaps workers and
        unlinks every segment."""
        cluster, pgraph = setup
        before = _segments()
        target = NodePropMap(cluster, pgraph, "boom")

        def body(ctx):
            raise ValueError("deterministic kernel failure")

        plan = Plan(
            name="boom",
            pgraph=pgraph,
            steps=[
                OperatorStep(
                    Operator(
                        "boom",
                        "masters",
                        ScalarKernel(
                            body, write_names=((target.name, MIN.name),)
                        ),
                    )
                )
            ],
            once=True,
        )
        executor = Executor(cluster, jobs=2)
        try:
            with pytest.raises(ValueError, match="deterministic kernel failure"):
                executor.run(plan)
        finally:
            executor.close()
        assert _segments() == before


# --------------------- arena frame integrity (ISSUE 7 tentpole hardening)


class TestArenaFrameIntegrity:
    """The frame header (magic/sequence/length, CRC32 when the supervisor
    is on) turns silent shared-memory corruption into a typed
    ``ArenaIntegrityError`` the healing path can recover from."""

    def _frame(self, obj, seq=0, check=True, slack=64):
        meta, raws = _encode_payload(obj)
        buf = memoryview(bytearray(_encoded_size(meta, raws) + slack))
        _write_encoded(buf, 0, meta, raws, seq, check)
        return buf, meta

    def test_roundtrip_with_sequence_and_checksum(self):
        obj = {"xs": np.arange(16, dtype=np.int64), "tag": "frame"}
        buf, _ = self._frame(obj, seq=3)
        out = _read_encoded(buf, 0, len(buf), expected_seq=3, check=True)
        assert out["tag"] == "frame"
        np.testing.assert_array_equal(out["xs"], obj["xs"])

    def test_wrong_sequence_is_rejected(self):
        buf, _ = self._frame([1, 2, 3], seq=3)
        with pytest.raises(ArenaIntegrityError, match="sequence"):
            _read_encoded(buf, 0, len(buf), expected_seq=4, check=True)

    def test_bad_magic_is_rejected(self):
        buf, _ = self._frame([1], seq=0)
        buf[0] ^= 0xFF
        with pytest.raises(ArenaIntegrityError, match="magic"):
            _read_encoded(buf, 0, len(buf), expected_seq=0, check=False)

    def test_flipped_payload_byte_fails_the_checksum(self):
        obj = np.arange(64, dtype=np.int64)
        buf, meta = self._frame(obj, seq=5, check=True)
        # Flip one byte inside the out-of-band numpy buffer: pickle still
        # decodes (the values are just wrong), so only the CRC catches it.
        offset = _FRAME_HEADER.size + _pad(len(meta)) + 8 + 11
        buf[offset] ^= 0xFF
        with pytest.raises(ArenaIntegrityError, match="checksum"):
            _read_encoded(buf, 0, len(buf), expected_seq=5, check=True)
        silent = _read_encoded(buf, 0, len(buf), expected_seq=5, check=False)
        assert not np.array_equal(silent, obj)

    def test_metadata_overrun_is_rejected(self):
        buf = memoryview(bytearray(128))
        _FRAME_HEADER.pack_into(buf, 0, _ARENA_MAGIC, 0, 0, 0, 1 << 40)
        with pytest.raises(ArenaIntegrityError, match="overruns"):
            _read_encoded(buf, 0, len(buf), expected_seq=0, check=False)


@needs_fork
class TestArenaFallbackAndGrowth:
    def test_oversize_bundle_falls_back_to_pipe(self):
        arena = _Arena(f"{POOL_SEGMENT_PREFIX}test-{os.getpid()}", 1, slots=2)
        try:
            big = np.zeros(4 * arena.slot_size, dtype=np.uint8)
            via = arena.write(0, big, seq=1, check=True)
            assert via[0] == "pipe"
            np.testing.assert_array_equal(arena.read(0, via, seq=1, check=True), big)
            small = {"k": 1}
            via = arena.write(1, small, seq=2, check=True)
            assert via[0] == "shm"
            assert arena.read(1, via, seq=2, check=True) == small
        finally:
            arena.destroy()

    def test_shortfall_grows_the_next_generation(self, setup):
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph, name="grow")
        pool = _pool(cluster, plan)
        base = pool._arena_size(plan)
        pool.note_arena_shortfall(8 * base)
        assert pool._arena_size(plan) >= 16 * base

    def test_tiny_arena_run_is_byte_identical(self, monkeypatch):
        """With the arenas squeezed to one page every bundle overflows to
        the pipe fallback - and the result must not change by a byte."""
        graph = generators.erdos_renyi(40, 3.0, seed=7)
        serial = run_kimbap("PR", "tiny", 4, graph=graph, threads=4)
        monkeypatch.setattr(HostShardPool, "_arena_size", lambda self, plan: 4096)
        parallel = run_kimbap("PR", "tiny", 4, graph=graph, threads=4, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )


# ----------------------- shutdown diagnostics + interpreter-exit guard


@needs_fork
class TestEndRunDiagnostics:
    def test_dead_worker_at_end_of_failed_run_is_recorded(self, setup):
        """Satellite fix: ``end_run`` no longer swallows arbitrary
        RuntimeErrors - only the typed peer-failure family is tolerated
        after a failed run, and every instance leaves a diagnostic."""
        cluster, pgraph = setup
        plan = _shardable_plan(cluster, pgraph, name="diag")
        pool = create_pool(Executor(cluster, jobs=2), plan)
        before = _segments()
        assert pool.begin_run(plan)
        process, _ = pool.workers[0]
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10)
        pool.end_run(failed=True)
        assert pool.deaths_detected >= 1
        assert any("end_run" in line for line in pool.diagnostics)
        assert pool.workers == []
        assert _segments() == before


@needs_fork
class TestAtexitCleanup:
    def test_interrupted_process_reaps_segments(self, tmp_path):
        """Satellite fix: a KeyboardInterrupt that reaches interpreter
        exit with a live pool (no ``Executor.close()``) still unlinks
        every /dev/shm segment and reaps the workers via atexit."""
        script = tmp_path / "pool_child.py"
        script.write_text(
            textwrap.dedent(
                """
                import signal

                from repro.cluster import Cluster
                from repro.core.propmap import NodePropMap
                from repro.core.reducers import MIN
                from repro.exec import (
                    EdgePush,
                    Executor,
                    Operator,
                    OperatorStep,
                    Plan,
                )
                from repro.exec.pool import create_pool
                from repro.graph import generators
                from repro.partition.policies import partition

                graph = generators.erdos_renyi(24, 2.0, seed=5)
                cluster = Cluster(4, threads_per_host=2)
                pgraph = partition(graph, 4, "cvc")
                target = NodePropMap(cluster, pgraph, "atexit")
                plan = Plan(
                    name="atexit",
                    pgraph=pgraph,
                    steps=[
                        OperatorStep(
                            Operator(
                                "push", "all", EdgePush(target=target, op=MIN)
                            )
                        )
                    ],
                    once=True,
                )
                pool = create_pool(Executor(cluster, jobs=2), plan)
                assert pool.begin_run(plan)
                print("READY", flush=True)
                signal.pause()
                """
            )
        )
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        before = _segments()
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            assert len(_segments()) > len(before)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=20) != 0
        finally:
            if proc.poll() is None:  # pragma: no cover - hung child
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()
        assert _segments() == before
