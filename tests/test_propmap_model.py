"""Model-based testing of the node-property map.

A hypothesis stateful machine drives a NodePropMap through random
BSP rounds (reduce / request / sync / pin / unpin) alongside a trivial
reference model (a dict + pending-reduction buffer). After every
reduce_sync the canonical values must match the model exactly, on every
runtime variant. This is the strongest correctness net over the map's
semantics: reductions visible next round, caches dropped, broadcast
freshness, per-variant equivalence.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, SUM, NodePropMap, RuntimeVariant
from repro.graph import generators
from repro.partition import partition

GRAPH = generators.road_like(5, 4, seed=0)
NUM_HOSTS = 3
NUM_NODES = GRAPH.num_nodes


class PropMapMachine(RuleBasedStateMachine):
    """Random reduce/sync/pin sequences checked against a dict model."""

    def __init__(self):
        super().__init__()
        self.variant = RuntimeVariant.KIMBAP
        self.in_compute = False

    @initialize(
        variant=st.sampled_from(list(RuntimeVariant)),
        initial=st.integers(0, 100),
    )
    def setup(self, variant, initial):
        self.variant = variant
        self.pgraph = partition(GRAPH, NUM_HOSTS, "oec")
        self.cluster = Cluster(NUM_HOSTS, threads_per_host=4)
        self.prop = NodePropMap(self.cluster, self.pgraph, "m", variant=variant)
        self.prop.set_initial(lambda node: initial + node)
        self.model = {node: initial + node for node in range(NUM_NODES)}
        self.pending: dict[int, int] = {}
        self.pinned = False
        self._phase_cm = None

    def _ensure_compute(self):
        if not self.in_compute:
            self._phase_cm = self.cluster.phase(PhaseKind.REDUCE_COMPUTE)
            self._phase_cm.__enter__()
            self.in_compute = True

    def _end_compute(self):
        if self.in_compute:
            self._phase_cm.__exit__(None, None, None)
            self.in_compute = False

    @rule(
        host=st.integers(0, NUM_HOSTS - 1),
        thread=st.integers(0, 3),
        key=st.integers(0, NUM_NODES - 1),
        value=st.integers(-50, 150),
    )
    def reduce_min(self, host, thread, key, value):
        self._ensure_compute()
        self.prop.reduce(host, thread, key, value, MIN)
        self.pending[key] = min(self.pending.get(key, value), value)

    @rule(
        host=st.integers(0, NUM_HOSTS - 1),
        key=st.integers(0, NUM_NODES - 1),
    )
    def request(self, host, key):
        self._ensure_compute()
        self.prop.request(host, key)

    @rule()
    def request_sync(self):
        self._end_compute()
        self.prop.request_sync()

    @rule()
    def reduce_sync(self):
        self._end_compute()
        self.prop.reduce_sync()
        for key, value in self.pending.items():
            if self.variant.uses_kvstore:
                # MC applies reductions eagerly; same result either way
                pass
            self.model[key] = min(self.model[key], value)
        self.pending.clear()

    @precondition(lambda self: not self.pinned)
    @rule()
    def pin(self):
        self._end_compute()
        if self.pending:
            # MC applies reduces eagerly; a pin's fetch would observe them
            # mid-round. Keep the model simple: sync first.
            self.reduce_sync()
        self.prop.pin_mirrors(invariant="none")
        self.pinned = True

    @precondition(lambda self: self.pinned)
    @rule()
    def unpin(self):
        self._end_compute()
        self.prop.unpin_mirrors()
        self.pinned = False

    @precondition(lambda self: self.pinned)
    @rule()
    def broadcast(self):
        self._end_compute()
        self.prop.broadcast_sync()

    @invariant()
    def canonical_matches_model_when_quiet(self):
        # Only compare at quiet points: reductions in flight are by
        # definition not yet canonical. MC applies eagerly, so its
        # snapshot may already include pending updates - fold them in.
        if self.pending:
            return
        snapshot = self.prop.snapshot()
        assert snapshot == self.model

    def teardown(self):
        self._end_compute()


PropMapMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPropMapModel = PropMapMachine.TestCase


class TestModelEdgeCases:
    """Directed scenarios the random walk may not hit often."""

    def make(self, variant=RuntimeVariant.KIMBAP):
        pgraph = partition(GRAPH, NUM_HOSTS, "oec")
        cluster = Cluster(NUM_HOSTS, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "m", variant=variant)
        prop.set_initial(lambda node: 100)
        return cluster, prop

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_two_rounds_accumulate(self, variant):
        cluster, prop = self.make(variant)
        for round_value in (50, 20, 70):
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                prop.reduce(0, 0, 3, round_value, MIN)
            prop.reduce_sync()
        assert prop.snapshot()[3] == 20

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_sum_across_hosts_and_threads(self, variant):
        cluster, prop = self.make(variant)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for host in range(NUM_HOSTS):
                for thread in range(4):
                    prop.reduce(host, thread, 7, 1, SUM)
        prop.reduce_sync()
        assert prop.snapshot()[7] == 100 + NUM_HOSTS * 4

    def test_pin_then_reduce_then_broadcast_keeps_mirrors_fresh(self):
        graph = generators.powerlaw_like(6, seed=1)
        pgraph = partition(graph, 4, "cvc")
        cluster = Cluster(4, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "m")
        prop.set_initial(lambda node: node)
        prop.pin_mirrors(invariant="none")
        for _ in range(3):
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                for part in pgraph.parts:
                    for mirror in part.mirrors_global.tolist():
                        value = prop.read(part.host_id, mirror)
                        prop.reduce(part.host_id, 0, mirror, value - 1, MIN)
            prop.reduce_sync()
            prop.broadcast_sync()
        # after 3 decrement rounds every mirror-carrying node dropped by 3
        snapshot = prop.snapshot()
        mirrored = {
            int(g) for part in pgraph.parts for g in part.mirrors_global
        }
        for node in mirrored:
            assert snapshot[node] == node - 3
