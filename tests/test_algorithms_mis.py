"""MIS tests: independence, maximality, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import mis
from repro.algorithms.mis import IN_SET, OUT
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import generators
from repro.partition import partition


def run_mis(graph, hosts=3, policy="cvc", variant=RuntimeVariant.KIMBAP):
    return mis(Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy), variant=variant)


def check_valid(graph, values):
    nx_graph = graph.to_networkx().to_undirected()
    for node, state in values.items():
        assert state in (IN_SET, OUT), f"node {node} undecided"
    for u, v in nx_graph.edges():
        assert not (values[u] == IN_SET and values[v] == IN_SET), "not independent"
    for node in nx_graph.nodes():
        if values[node] != IN_SET:
            assert any(
                values[m] == IN_SET for m in nx_graph.neighbors(node)
            ), "not maximal"


GRAPHS = {
    "road": generators.road_like(8, 4, seed=1),
    "powerlaw": generators.powerlaw_like(6, seed=3),
    "star": generators.star(12),
    "complete": generators.complete(6),
    "cycle": generators.cycle(9),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestValidity:
    def test_independent_and_maximal(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run_mis(graph)
        check_valid(graph, result.values)

    def test_single_host(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run_mis(graph, hosts=1, policy="oec")
        check_valid(graph, result.values)


class TestSpecifics:
    def test_star_picks_leaves(self):
        """The hub has the highest degree/priority, so it joins the set and
        excludes everything - wait, no: the hub has the *highest* priority,
        so it wins and the leaves go OUT. Set size is exactly 1."""
        result = run_mis(generators.star(12))
        assert result.values[0] == IN_SET
        assert result.stats["set_size"] == 1

    def test_complete_graph_picks_one(self):
        result = run_mis(generators.complete(6))
        assert result.stats["set_size"] == 1

    def test_edgeless_graph_all_in(self):
        from repro.graph import Graph

        graph = Graph.from_edge_list(5, [])
        result = run_mis(graph, hosts=2, policy="oec")
        assert result.stats["set_size"] == 5

    def test_deterministic_across_host_counts(self):
        """The priority total order makes the chosen set independent of the
        partitioning - a strong distributed-correctness check."""
        graph = GRAPHS["powerlaw"]
        baseline = run_mis(graph, hosts=1, policy="oec").values
        for hosts, policy in [(2, "oec"), (4, "cvc"), (3, "iec")]:
            assert run_mis(graph, hosts=hosts, policy=policy).values == baseline

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_all_variants_agree(self, variant):
        graph = GRAPHS["cycle"]
        baseline = run_mis(graph).values
        assert run_mis(graph, variant=variant).values == baseline


class TestProperty:
    @given(st.integers(0, 10000))
    @settings(max_examples=15, deadline=None)
    def test_random_powerlaw_always_valid(self, seed):
        graph = generators.erdos_renyi(40, 4.0, seed=seed)
        result = run_mis(graph, hosts=2)
        check_valid(graph, result.values)
