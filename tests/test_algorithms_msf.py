"""Boruvka MSF tests: exact weight against networkx, forest validity."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import boruvka_msf
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import Graph, generators
from repro.partition import partition


def run_msf(graph, hosts=3, policy="cvc", variant=RuntimeVariant.KIMBAP):
    return boruvka_msf(
        Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy), variant=variant
    )


def networkx_msf_weight(graph):
    nx_graph = graph.to_networkx().to_undirected()
    return sum(
        data["weight"] for _, _, data in nx.minimum_spanning_edges(nx_graph, data=True)
    )


GRAPHS = {
    "road": generators.road_like(6, 4, seed=2, weighted=True),
    "powerlaw": generators.powerlaw_like(5, seed=7, weighted=True),
    "cycle": generators.cycle(11, weighted=True),
    "two_components": generators.disjoint_union(
        generators.path(6, weighted=True), generators.cycle(5, weighted=True)
    ),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestWeight:
    def test_matches_networkx_msf_weight(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run_msf(graph)
        assert result.stats["forest_weight"] == pytest.approx(
            networkx_msf_weight(graph)
        )

    def test_forest_is_spanning_and_acyclic(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run_msf(graph)
        forest = nx.Graph()
        forest.add_nodes_from(range(graph.num_nodes))
        forest.add_weighted_edges_from(result.extra["forest"])
        assert nx.is_forest(forest)
        original_components = nx.number_connected_components(
            graph.to_networkx().to_undirected()
        )
        assert nx.number_connected_components(forest) == original_components

    def test_component_labels_match_connectivity(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run_msf(graph)
        expected = {}
        for component in nx.connected_components(graph.to_networkx().to_undirected()):
            smallest = min(component)
            for node in component:
                expected[node] = smallest
        assert {n: result.values[n] for n in range(graph.num_nodes)} == expected


class TestEdgeCases:
    def test_unweighted_graph_uses_unit_weights(self):
        graph = generators.path(6)
        result = run_msf(graph, hosts=2, policy="oec")
        assert result.stats["forest_edges"] == 5
        assert result.stats["forest_weight"] == pytest.approx(5.0)

    def test_single_node(self):
        graph = Graph.from_edge_list(1, [])
        result = run_msf(graph, hosts=1, policy="oec")
        assert result.stats["forest_edges"] == 0

    def test_equal_weights_still_forest(self):
        """Tie-breaking by endpoints must prevent cycles with equal weights."""
        graph = generators.complete(8).with_unit_weights()
        result = run_msf(graph, hosts=2, policy="oec")
        forest = nx.Graph()
        forest.add_weighted_edges_from(result.extra["forest"])
        assert nx.is_forest(forest)
        assert result.stats["forest_edges"] == 7

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_all_variants_same_forest(self, variant):
        graph = GRAPHS["road"]
        baseline = run_msf(graph).extra["forest"]
        assert run_msf(graph, variant=variant).extra["forest"] == baseline

    def test_deterministic_across_partitionings(self):
        graph = GRAPHS["powerlaw"]
        baseline = run_msf(graph, hosts=1, policy="oec").extra["forest"]
        for hosts, policy in [(2, "oec"), (4, "cvc")]:
            assert run_msf(graph, hosts=hosts, policy=policy).extra["forest"] == baseline


class TestProperty:
    @given(st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_match_networkx(self, seed):
        graph = generators.erdos_renyi(25, 3.0, seed=seed, weighted=True)
        result = run_msf(graph, hosts=2)
        assert result.stats["forest_weight"] == pytest.approx(
            networkx_msf_weight(graph)
        )
