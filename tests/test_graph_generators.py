"""Tests for the synthetic graph generators: structure and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.stats import approx_diameter, compute_stats


class TestRoadLike:
    def test_shape(self):
        graph = generators.road_like(16, 8, seed=0)
        assert graph.num_nodes == 128
        assert graph.is_symmetric()

    def test_high_diameter_low_degree(self):
        """Road analogs must keep road-europe's signature: high diameter,
        near-uniform small degrees (Table 1: max degree 16, |E|/|V| = 2)."""
        graph = generators.road_like(32, 8, seed=0)
        assert approx_diameter(graph) >= 30
        assert graph.max_degree() <= 16
        avg = graph.num_edges / graph.num_nodes
        assert 2.0 <= avg <= 6.0

    def test_connected(self):
        import networkx as nx

        graph = generators.road_like(16, 4, seed=2)
        assert nx.is_connected(graph.to_networkx().to_undirected())

    def test_deterministic(self):
        first = generators.road_like(8, 4, seed=7)
        second = generators.road_like(8, 4, seed=7)
        assert np.array_equal(first.indices, second.indices)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            generators.road_like(1, 0)


class TestRmat:
    def test_power_law_has_hubs(self):
        """Power-law analogs must keep friendster's signature: a few very
        high-degree hubs (Table 1: max degree 3M on 41M nodes)."""
        graph = generators.powerlaw_like(9, seed=1)
        degrees = np.sort(graph.out_degrees())[::-1]
        median = np.median(degrees[degrees > 0])
        assert degrees[0] > 10 * median

    def test_no_self_loops(self):
        graph = generators.rmat(6, 8, seed=5)
        srcs = graph.edge_sources()
        assert not np.any(srcs == graph.indices)

    def test_symmetric(self):
        assert generators.rmat(6, 4, seed=0).is_symmetric()

    def test_deterministic(self):
        first = generators.rmat(7, 8, seed=11)
        second = generators.rmat(7, 8, seed=11)
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)

    def test_seed_changes_graph(self):
        first = generators.rmat(7, 8, seed=1)
        second = generators.rmat(7, 8, seed=2)
        assert not np.array_equal(first.indices, second.indices)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            generators.rmat(5, 4, a=0.5, b=0.3, c=0.3)

    def test_web_analogs_denser_than_social(self):
        social = generators.powerlaw_like(8, seed=0)
        web = generators.web_like(8, seed=0)
        assert web.num_edges / web.num_nodes > social.num_edges / social.num_nodes * 0.9


class TestWeights:
    def test_weights_symmetric(self):
        """Both directions of an undirected edge carry the same weight."""
        graph = generators.powerlaw_like(6, seed=4, weighted=True)
        weight_of = {}
        srcs = graph.edge_sources()
        for src, dst, weight in zip(srcs, graph.indices, graph.weights):
            weight_of[(int(src), int(dst))] = float(weight)
        for (src, dst), weight in weight_of.items():
            assert weight_of[(dst, src)] == weight

    def test_weights_in_range(self):
        graph = generators.road_like(8, 4, seed=0, weighted=True)
        assert np.all(graph.weights >= 1.0)
        assert np.all(graph.weights < 10.0)


class TestSmallGraphs:
    def test_path(self):
        graph = generators.path(4)
        assert sorted(graph.iter_edges()) == [
            (0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2),
        ]

    def test_cycle(self):
        graph = generators.cycle(5)
        assert graph.num_edges == 10
        assert all(graph.degree(n) == 2 for n in graph.nodes())

    def test_star(self):
        graph = generators.star(6)
        assert graph.degree(0) == 6
        assert all(graph.degree(n) == 1 for n in range(1, 7))

    def test_complete(self):
        graph = generators.complete(4)
        assert graph.num_edges == 12

    def test_disjoint_union(self):
        union = generators.disjoint_union(generators.path(3), generators.cycle(4))
        assert union.num_nodes == 7
        import networkx as nx

        components = list(nx.connected_components(union.to_networkx().to_undirected()))
        assert len(components) == 2

    def test_erdos_renyi_degree(self):
        graph = generators.erdos_renyi(200, 6.0, seed=0)
        avg = graph.num_edges / graph.num_nodes
        assert 4.0 < avg < 8.0


class TestStats:
    def test_compute_stats_fields(self):
        graph = generators.road_like(8, 4, seed=0)
        stats = compute_stats("road", graph)
        assert stats.num_nodes == graph.num_nodes
        assert stats.num_edges == graph.num_edges
        assert stats.max_degree == graph.max_degree()
        assert stats.approx_diameter > 0
        assert stats.size_mb > 0

    def test_approx_diameter_path(self):
        graph = generators.path(10)
        assert approx_diameter(graph) == 9

    def test_approx_diameter_empty(self):
        from repro.graph import Graph

        assert approx_diameter(Graph.from_edge_list(3, [])) == 0
