"""Compiler pass tests: analysis, split transform, elisions, Figure 8 parity."""

from __future__ import annotations

import pytest

from repro.compiler.analysis import (
    ACTIVE,
    ADJACENT,
    DYNAMIC,
    NotCautiousError,
    analyze_operator,
)
from repro.compiler.compile import compile_program
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    ForEdges,
    If,
    MapRead,
    MapReduce,
    MapRequest,
    MapSet,
    ParFor,
    Var,
    stmts,
    walk,
)
from repro.compiler.programs import (
    cc_lp_program,
    cc_sv_hook,
    cc_sv_shortcut,
    mis_blocked,
    mis_exclude,
    mis_select,
)
from repro.compiler.transforms import request_slice
from repro.core.reducers import MIN


class TestAnalysis:
    def test_hook_key_kinds(self):
        analysis = analyze_operator(cc_sv_hook().par_for)
        kinds = {(a.stmt.var, a.kind) for a in analysis.reads}
        assert kinds == {("src_parent", ACTIVE), ("dst_parent", ADJACENT)}
        # the reduce target parent(src_parent) is a dynamically computed node
        assert analysis.reduces[0].kind == DYNAMIC

    def test_hook_is_trans_vertex_but_reads_adjacent(self):
        analysis = analyze_operator(cc_sv_hook().par_for)
        assert analysis.is_trans_vertex
        assert analysis.reads_are_adjacent
        assert analysis.accesses_edges

    def test_shortcut_is_trans_vertex_no_edges(self):
        analysis = analyze_operator(cc_sv_shortcut().par_for)
        assert analysis.is_trans_vertex
        assert analysis.masters_only_eligible
        assert not analysis.accesses_edges

    def test_cc_lp_is_adjacent_vertex(self):
        analysis = analyze_operator(cc_lp_program().par_for)
        assert analysis.is_adjacent_vertex
        assert not analysis.is_trans_vertex

    def test_mis_operators_all_adjacent(self):
        for program in (mis_blocked(), mis_select(), mis_exclude()):
            assert analyze_operator(program.par_for).is_adjacent_vertex

    def test_copy_propagation_of_edge_dst(self):
        body = stmts(
            Assign("dst", EdgeDst("e")),
            ForEdges("e", stmts(MapRead("x", "m", Var("dst")))),
        )
        # assignment outside the loop referencing its edge var is nonsense,
        # but classification must still flow through the Assign
        analysis = analyze_operator(ParFor(stmts(
            ForEdges("e", stmts(
                Assign("dst", EdgeDst("e")),
                MapRead("x", "m", Var("dst")),
            )),
        )))
        assert analysis.reads[0].kind == ADJACENT

    def test_value_from_read_is_dynamic(self):
        body = stmts(
            MapRead("p", "m", ActiveNode()),
            MapRead("q", "m", Var("p")),
        )
        analysis = analyze_operator(ParFor(body))
        assert analysis.reads[1].kind == DYNAMIC

    def test_read_after_set_rejected(self):
        body = stmts(
            MapSet("m", ActiveNode(), Const(0)),
            MapRead("x", "m", ActiveNode()),
        )
        with pytest.raises(NotCautiousError):
            analyze_operator(ParFor(body))

    def test_request_in_input_rejected(self):
        body = stmts(MapRequest("m", ActiveNode()))
        with pytest.raises(ValueError):
            analyze_operator(ParFor(body))

    def test_reducers_collected(self):
        analysis = analyze_operator(cc_sv_hook().par_for)
        assert analysis.reducers_used == ["work_done"]


class TestRequestSlice:
    def test_shortcut_slice_matches_figure8(self):
        """The request ParFor for the grandparent read must be exactly
        Figure 8 lines 27-30: read own parent, request it."""
        body = cc_sv_shortcut().par_for.body
        target = next(
            s for s in walk(body) if isinstance(s, MapRead) and s.var == "grand_parent"
        )
        sliced, found = request_slice(body, target)
        assert found
        assert len(sliced) == 2
        assert isinstance(sliced[0], MapRead) and sliced[0].var == "parent_value"
        assert isinstance(sliced[1], MapRequest)
        assert sliced[1].key == Var("parent_value")

    def test_slice_drops_side_effects(self):
        body = stmts(
            MapRead("a", "m", ActiveNode()),
            MapReduce("other", ActiveNode(), Const(1), MIN),
            MapRead("b", "m", Var("a")),
        )
        sliced, found = request_slice(body, body[2])
        assert found
        assert not any(isinstance(s, MapReduce) for s in sliced)

    def test_slice_through_if_keeps_condition(self):
        inner = MapRead("b", "m", Var("a"))
        body = stmts(
            MapRead("a", "m", ActiveNode()),
            If(BinOp(">", Var("a"), Const(0)), stmts(inner)),
        )
        sliced, found = request_slice(body, inner)
        assert found
        assert isinstance(sliced[1], If)
        assert isinstance(sliced[1].then[0], MapRequest)

    def test_slice_drops_non_ancestor_branches(self):
        """An If that does not contain the target does not dominate what
        follows it, so it is dropped from the copy."""
        target = MapRead("b", "m", Var("a"))
        body = stmts(
            MapRead("a", "m", ActiveNode()),
            If(Const(True), stmts(Assign("x", Const(1)))),
            target,
        )
        sliced, found = request_slice(body, target)
        assert found
        assert not any(isinstance(s, If) for s in sliced)

    def test_slice_inside_for_edges(self):
        body = cc_sv_hook().par_for.body
        target = next(
            s for s in walk(body) if isinstance(s, MapRead) and s.var == "dst_parent"
        )
        sliced, found = request_slice(body, target)
        assert found
        loop = next(s for s in sliced if isinstance(s, ForEdges))
        assert any(isinstance(s, MapRequest) for s in walk(loop.body))

    def test_missing_target(self):
        body = stmts(Assign("a", Const(1)))
        _, found = request_slice(body, MapRead("x", "m", ActiveNode()))
        assert not found


class TestCompile:
    def test_hook_compiles_to_pinned_no_requests(self):
        loop = compile_program(cc_sv_hook())
        assert loop.pinned == {"parent": "none"}
        assert loop.request_phases == []
        assert loop.iterator == "nodes"
        assert loop.reduce_maps == ("parent",)
        assert loop.broadcast_maps == ("parent",)

    def test_shortcut_compiles_to_masters_one_request(self):
        loop = compile_program(cc_sv_shortcut())
        assert loop.pinned == {}
        assert loop.iterator == "masters"
        assert len(loop.request_phases) == 1
        assert loop.request_phases[0].map == "parent"
        assert loop.broadcast_maps == ()

    def test_cc_lp_compiles_like_gluon(self):
        loop = compile_program(cc_lp_program())
        assert loop.request_phases == []
        assert loop.pinned == {"label": "none"}

    def test_select_gets_master_elision(self):
        loop = compile_program(mis_select())
        assert loop.iterator == "masters"
        assert loop.request_phases == []

    def test_no_opt_requests_every_read(self):
        loop = compile_program(cc_sv_hook(), optimize=False)
        assert loop.pinned == {}
        assert len(loop.request_phases) == 2  # active read + neighbor read
        assert loop.iterator == "nodes"

    def test_no_opt_shortcut_keeps_both_requests(self):
        loop = compile_program(cc_sv_shortcut(), optimize=False)
        assert len(loop.request_phases) == 2
        assert loop.iterator == "nodes"

    def test_describe_mentions_phases(self):
        text = compile_program(cc_sv_shortcut()).describe()
        assert "RequestSync" in text
        assert "ReduceSync" in text
        assert "masters" in text

    def test_bad_iterator_rejected(self):
        with pytest.raises(ValueError):
            ParFor(stmts(), iterator="everything")
