"""BFS / SSSP / PageRank tests against networkx ground truth."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import bfs, pagerank, sssp
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import Graph, generators
from repro.partition import partition


def run(algorithm, graph, hosts=3, policy="cvc", **kwargs):
    return algorithm(
        Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy), **kwargs
    )


GRAPHS = {
    "road": generators.road_like(8, 4, seed=1, weighted=True),
    "powerlaw": generators.powerlaw_like(6, seed=3, weighted=True),
    "two_components": generators.disjoint_union(
        generators.path(6, weighted=True), generators.cycle(5, weighted=True)
    ),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestSssp:
    def test_matches_networkx_dijkstra(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(sssp, graph, source=0)
        expected = nx.single_source_dijkstra_path_length(
            graph.to_networkx().to_undirected(), 0
        )
        for node in range(graph.num_nodes):
            if node in expected:
                assert result.values[node] == pytest.approx(expected[node])
            else:
                assert result.values[node] == math.inf

    def test_bfs_levels(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(bfs, graph, source=0)
        expected = nx.single_source_shortest_path_length(
            graph.to_networkx().to_undirected(), 0
        )
        for node in range(graph.num_nodes):
            if node in expected:
                assert result.values[node] == expected[node]
            else:
                assert result.values[node] == math.inf


class TestSsspDetails:
    def test_source_distance_zero(self):
        result = run(sssp, GRAPHS["road"], source=5)
        assert result.values[5] == 0.0

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            run(sssp, GRAPHS["road"], source=10_000)

    def test_bfs_rounds_track_eccentricity(self):
        graph = generators.path(20)
        result = run(bfs, graph, hosts=2, policy="oec", source=0)
        # one round per level plus the final quiet round
        assert result.rounds == 20

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_variants_agree(self, variant):
        graph = GRAPHS["powerlaw"]
        baseline = run(sssp, graph, source=0).values
        assert run(sssp, graph, source=0, variant=variant).values == baseline

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        graph = generators.erdos_renyi(30, 3.0, seed=seed, weighted=True)
        result = run(sssp, graph, hosts=2, source=0)
        expected = nx.single_source_dijkstra_path_length(
            graph.to_networkx().to_undirected(), 0
        )
        for node, distance in expected.items():
            assert result.values[node] == pytest.approx(distance)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestPagerank:
    def test_matches_networkx(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(pagerank, graph)
        expected = nx.pagerank(graph.to_networkx(), alpha=0.85, tol=1e-12, weight=None)
        for node in range(graph.num_nodes):
            assert result.values[node] == pytest.approx(expected[node], abs=1e-6)

    def test_mass_conserved(self, graph_name):
        result = run(pagerank, GRAPHS[graph_name])
        assert result.stats["mass"] == pytest.approx(1.0)


class TestPagerankDetails:
    def test_dangling_nodes_handled(self):
        # node 3 isolated: its mass redistributes, ranks still sum to 1
        graph = Graph.from_edge_list(4, [(0, 1), (1, 0), (1, 2), (2, 1)])
        result = run(pagerank, graph, hosts=2, policy="oec")
        assert result.stats["mass"] == pytest.approx(1.0)
        assert result.values[3] > 0

    def test_symmetric_star_concentrates_on_hub(self):
        graph = generators.star(10)
        result = run(pagerank, graph, hosts=2, policy="oec")
        hub = result.values[0]
        assert all(hub > result.values[leaf] for leaf in range(1, 11))

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            run(pagerank, GRAPHS["road"], damping=1.5)

    def test_converges_before_max_rounds(self):
        result = run(pagerank, GRAPHS["powerlaw"], max_rounds=100)
        assert result.rounds < 100
        assert result.stats["delta"] < 1e-9
