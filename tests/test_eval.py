"""Tests for the evaluation harness: workloads, run drivers, reporting."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import PhaseKind
from repro.eval import (
    GRAPHS,
    format_table,
    load_graph,
    run_galois,
    run_gluon,
    run_kimbap,
    run_vite,
)
from repro.eval.harness import APP_POLICY, APP_WEIGHTED, KIMBAP_APPS, RunResult
from repro.eval.reporting import print_series, speedup
from repro.eval.workloads import paper_name


class TestWorkloads:
    def test_registry_covers_paper_graphs(self):
        assert {paper_name(n) for n in GRAPHS} == {
            "road-europe",
            "friendster",
            "clueweb12",
            "wdc12",
        }

    def test_load_graph_memoizes(self):
        first = load_graph("road")
        second = load_graph("road")
        assert first is second

    def test_weighted_flag_changes_graph(self):
        unweighted = load_graph("powerlaw")
        weighted = load_graph("powerlaw", weighted=True)
        assert unweighted.weights is None
        assert weighted.weights is not None

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            load_graph("facebook")

    def test_scale_parameter_grows_graph(self):
        small = load_graph("powerlaw", scale=0)
        large = load_graph("powerlaw", scale=1)
        assert large.num_nodes > small.num_nodes

    def test_medium_graphs_use_paper_host_counts(self):
        assert GRAPHS["road"].host_counts == (1, 2, 4, 8, 16)
        assert GRAPHS["web_xl"].host_counts == (128, 256)

    def test_every_app_has_policy_and_runner(self):
        assert set(APP_POLICY) == set(KIMBAP_APPS)
        for app in ("LV", "LD", "MSF"):
            assert APP_WEIGHTED[app]


class TestRunDrivers:
    def test_run_kimbap_returns_populated_result(self):
        result = run_kimbap("CC-SV", "road", 2, threads=4)
        assert result.system == "Kimbap"
        assert result.app == "CC-SV"
        assert result.hosts == 2
        assert result.total > 0
        assert result.rounds > 0
        assert result.messages > 0
        assert PhaseKind.REDUCE_SYNC in result.time_by_kind

    def test_run_kimbap_variant_label(self):
        from repro.core.variants import RuntimeVariant

        result = run_kimbap(
            "CC-SV", "road", 2, variant=RuntimeVariant.SGR_ONLY, threads=4
        )
        assert "sgr-only" in result.system

    def test_run_vite_uses_edge_cut(self):
        result = run_vite("road", 2, threads=4)
        assert result.system == "Vite"
        assert result.app == "LV"

    def test_run_gluon(self):
        result = run_gluon("road", 2, threads=4)
        assert result.system == "Gluon"
        assert result.total > 0

    def test_run_galois_is_single_host(self):
        result = run_galois("CC-SV", "road", threads=4)
        assert result.hosts == 1
        assert result.system == "Galois"

    def test_row_shape(self):
        result = run_kimbap("MIS", "road", 2, threads=4)
        row = result.row()
        assert len(row) == 7
        assert row[0] == "Kimbap"


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_print_series_includes_rows(self, capsys):
        result = run_kimbap("MIS", "road", 2, threads=4)
        text = print_series("demo", [result])
        assert "demo" in text
        assert "Kimbap" in text
        assert capsys.readouterr().out  # printed too

    def test_speedup(self):
        from repro.cluster import ModeledTime

        slow = RunResult("a", "x", "g", 1, ModeledTime(2.0, 2.0), 1)
        fast = RunResult("b", "x", "g", 1, ModeledTime(1.0, 1.0), 1)
        assert speedup(slow, fast) == pytest.approx(2.0)
