"""Direct unit tests for the per-host storage backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.backends import GarHostStore, HashHostStore
from repro.core.reducers import MIN, SUM
from repro.graph import generators
from repro.partition import partition


@pytest.fixture
def setup():
    graph = generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, 3, "oec")
    cluster = Cluster(3, threads_per_host=4)
    return graph, pgraph, cluster


class TestGarHostStore:
    def test_master_translation_is_contiguous(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 1)
        masters = pgraph.parts[1].masters_global
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for offset, key in enumerate(masters.tolist()):
                assert store.master_local(key) == offset
            assert store.master_local(int(pgraph.parts[0].masters_global[0])) is None
        # contiguity path charges no hash probes
        assert cluster.log.total_counters().hash_probes == 0

    def test_write_then_serve(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.INIT):
            store.write_master(key, 42)
            assert store.serve_master(key) == 42

    def test_write_foreign_master_rejected(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        foreign = int(pgraph.parts[1].masters_global[0])
        with cluster.phase(PhaseKind.INIT):
            with pytest.raises(KeyError):
                store.write_master(foreign, 1)

    def test_apply_master_reports_change(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.INIT):
            store.write_master(key, 10)
            assert store.apply_master(key, 5, MIN) is True
            assert store.apply_master(key, 7, MIN) is False
            assert store.serve_master(key) == 5

    def test_apply_to_unset_master_takes_value(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.INIT):
            assert store.apply_master(key, 3, SUM) is True
            assert store.serve_master(key) == 3

    def test_remote_merge_keeps_both_batches(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        keys = [int(k) for k in pgraph.parts[1].masters_global[:3]]
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array(keys[:2][::-1]), ["b", "a"])
            store.materialize_remote(np.array([keys[2]]), ["c"])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.read(keys[0]) == "a"
            assert store.read(keys[1]) == "b"
            assert store.read(keys[2]) == "c"
        assert store.remote_cache_size == 3

    def test_remote_merge_newer_value_wins(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array([key]), ["old"])
            store.materialize_remote(np.array([key]), ["new"])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.read(key) == "new"

    def test_mirror_write_requires_mirror(self, setup):
        _, pgraph, cluster = setup
        store = GarHostStore(cluster, pgraph, 0)
        master = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.BROADCAST_SYNC):
            with pytest.raises(KeyError):
                store.write_mirror(master, 1)

    def test_unpin_invalidates_mirrors_only(self, setup):
        _, pgraph, cluster = setup
        part = next(p for p in pgraph.parts if p.num_mirrors)
        store = GarHostStore(cluster, pgraph, part.host_id)
        master = int(part.masters_global[0])
        mirror = int(part.mirrors_global[0])
        with cluster.phase(PhaseKind.INIT):
            store.write_master(master, 1)
            store.pin()
            store.write_mirror(mirror, 2)
            store.unpin()
            assert store.serve_master(master) == 1
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                store.read(mirror)

    def test_can_read_covers_all_sources(self, setup):
        _, pgraph, cluster = setup
        part = next(p for p in pgraph.parts if p.num_mirrors)
        store = GarHostStore(cluster, pgraph, part.host_id)
        master = int(part.masters_global[0])
        mirror = int(part.mirrors_global[0])
        # a node with no proxy at all on this host
        foreign = next(
            node
            for node in range(pgraph.num_nodes)
            if node not in part.global_to_local
        )
        with cluster.phase(PhaseKind.INIT):
            store.write_master(master, 1)
        assert store.can_read(master)
        assert not store.can_read(mirror)
        with cluster.phase(PhaseKind.INIT):
            store.pin()
            store.write_mirror(mirror, 2)
        assert store.can_read(mirror)
        assert not store.can_read(foreign)


class TestHashHostStore:
    def test_modulo_ownership(self, setup):
        _, pgraph, cluster = setup
        store = HashHostStore(cluster, pgraph, 1, 3)
        assert store.hash_owner(4) == 1
        assert store.hash_owner(5) == 2

    def test_owned_write_and_read(self, setup):
        _, pgraph, cluster = setup
        store = HashHostStore(cluster, pgraph, 1, 3)
        with cluster.phase(PhaseKind.INIT):
            store.write_master(4, "x")
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.read(4) == "x"

    def test_unfetched_read_raises(self, setup):
        _, pgraph, cluster = setup
        store = HashHostStore(cluster, pgraph, 1, 3)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            with pytest.raises(KeyError):
                store.read(0)

    def test_always_fetch_grows_when_pinned(self, setup):
        _, pgraph, cluster = setup
        part = next(p for p in pgraph.parts if p.num_mirrors)
        store = HashHostStore(cluster, pgraph, part.host_id, 3)
        base = set(store.always_fetch_keys())
        store.pin()
        pinned = set(store.always_fetch_keys())
        assert base == {int(g) for g in part.masters_global}
        assert pinned - base == {int(g) for g in part.mirrors_global}
        store.unpin()
        assert set(store.always_fetch_keys()) == base

    def test_cache_cleared_on_drop(self, setup):
        _, pgraph, cluster = setup
        store = HashHostStore(cluster, pgraph, 1, 3)
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array([7]), ["v"])
        assert store.remote_cache_size == 1
        store.drop_remote()
        assert store.remote_cache_size == 0
