"""Tests for the Memcached-like key-value store substrate."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.kvstore import CasResult, KvClient, KvServer


class TestServer:
    def test_get_missing(self):
        assert KvServer(0).get("a") is None

    def test_set_then_get(self):
        server = KvServer(0)
        server.set("a", 42)
        assert server.get("a") == (42, 1)

    def test_set_bumps_version(self):
        server = KvServer(0)
        assert server.set("a", 1) == 1
        assert server.set("a", 2) == 2
        assert server.get("a") == (2, 2)

    def test_add_only_when_absent(self):
        server = KvServer(0)
        assert server.add("a", 1)
        assert not server.add("a", 2)
        assert server.get("a") == (1, 1)

    def test_cas_success(self):
        server = KvServer(0)
        server.set("a", 1)
        assert server.cas("a", 2, 1) is CasResult.STORED
        assert server.get("a") == (2, 2)

    def test_cas_version_mismatch(self):
        server = KvServer(0)
        server.set("a", 1)
        server.set("a", 5)  # version now 2
        assert server.cas("a", 9, 1) is CasResult.EXISTS
        assert server.get("a")[0] == 5

    def test_cas_missing_key(self):
        assert KvServer(0).cas("a", 1, 1) is CasResult.NOT_FOUND

    def test_cas_detects_interleaved_writer(self):
        """The exact pattern the MC reduction emulation relies on: a racing
        write between get and cas forces a retry."""
        server = KvServer(0)
        server.set("x", 10)
        _, version = server.get("x")
        server.set("x", 11)  # the racing writer
        assert server.cas("x", 12, version) is CasResult.EXISTS
        # retry: refetch and cas again
        value, version = server.get("x")
        assert server.cas("x", min(value, 12), version) is CasResult.STORED

    def test_mget(self):
        server = KvServer(0)
        server.set("a", 1)
        server.set("b", 2)
        assert server.mget(["a", "b", "c"]) == {"a": (1, 1), "b": (2, 1)}

    def test_delete_and_flush(self):
        server = KvServer(0)
        server.set("a", 1)
        assert server.delete("a")
        assert not server.delete("a")
        server.set("b", 1)
        server.flush()
        assert len(server) == 0


class TestClient:
    def make(self, hosts=3):
        cluster = Cluster(hosts)
        return cluster, KvClient(cluster)

    def test_routing_is_deterministic_and_total(self):
        _, client = self.make()
        for key in ("a", "b", "npm:x:123"):
            server = client.server_of(key)
            assert 0 <= server < 3
            assert client.server_of(key) == server

    def test_set_get_roundtrip(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            client.set(0, "k", 7)
            assert client.get(1, "k") == (7, 1)

    def test_operations_cost_messages(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            client.set(0, "k", 7)
        # request + response unless the key happens to live on host 0
        assert cluster.log.total_messages() in (0, 2)

    def test_string_key_cost_charged(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            client.get(0, "some-key")
        assert cluster.log.total_counters().kv_string_ops == 1

    def test_mget_chunks_messages(self):
        from repro.kvstore.client import MGET_CHUNK

        cluster, client = self.make(hosts=2)
        keys = [f"k{i}" for i in range(MGET_CHUNK * 3)]
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            for key in keys:
                client.set(0, key, 1)
        cluster.reset()
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            found = client.mget(0, keys)
        assert len(found) == len(keys)
        # Far fewer messages than one per key, but more than one per server.
        assert 0 < cluster.log.total_messages() < 2 * len(keys)

    def test_mget_returns_only_present(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            client.set(0, "a", 1)
            found = client.mget(1, ["a", "missing"])
        assert found == {"a": (1, 1)}

    def test_cas_via_client(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            client.set(0, "a", 1)
            value, version = client.get(0, "a")
            assert client.cas(0, "a", value + 1, version) is CasResult.STORED
            assert client.get(0, "a")[0] == 2

    def test_server_count_must_match(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError):
            KvClient(cluster, [KvServer(0)])

    def test_flush_all(self):
        cluster, client = self.make()
        with cluster.phase(PhaseKind.INIT):
            client.set(0, "a", 1)
        client.flush_all()
        with cluster.phase(PhaseKind.INIT):
            assert client.get(0, "a") is None
