"""Tests for the hybrid vertex-cut policy and cross-policy algorithm runs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import cc_sv, mis
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import HybridVertexCut, partition


class TestHybridVertexCut:
    def test_registered_in_policy_table(self):
        from repro.partition import POLICIES

        assert "hvc" in POLICIES

    def test_edges_partitioned_exactly_once(self):
        graph = generators.powerlaw_like(7, seed=1)
        pgraph = partition(graph, 4, "hvc")
        total = sum(part.num_edges() for part in pgraph.parts)
        assert total == graph.num_edges

    def test_low_degree_edges_follow_destination(self):
        graph = generators.road_like(8, 4, seed=0)  # uniformly low degree
        pgraph = HybridVertexCut(threshold=100).partition(graph, 4)
        # with an unreachable threshold this degenerates to IEC: no mirror
        # has incoming edges
        assert not pgraph.any_mirror_has_incoming

    def test_hub_edges_follow_source(self):
        graph = generators.star(64)
        pgraph = HybridVertexCut(threshold=8).partition(graph, 4)
        # the hub's huge in-edge set is spread by source owner: multiple
        # hosts hold edges into node 0
        hosts_with_hub_in_edges = 0
        for part in pgraph.parts:
            local = part.global_to_local.get(0)
            if local is not None and part.in_degrees[local] > 0:
                hosts_with_hub_in_edges += 1
        assert hosts_with_hub_in_edges > 1

    def test_hybrid_cuts_replication_on_skew(self):
        """The policy's purpose: on power-law graphs, keeping hub in-edges
        at their sources avoids fanning source mirrors into the hub's
        owner, so replication drops below the pure incoming edge-cut."""
        graph = generators.powerlaw_like(8, seed=2)
        iec = partition(graph, 8, "iec").replication_factor()
        hvc = partition(graph, 8, "hvc").replication_factor()
        assert hvc < iec

    def test_hybrid_matches_iec_on_uniform_graphs(self):
        """Without hubs the hybrid cut degenerates to IEC exactly."""
        graph = generators.road_like(16, 8, seed=1)
        iec = partition(graph, 4, "iec")
        hvc = partition(graph, 4, "hvc")
        assert hvc.replication_factor() == pytest.approx(iec.replication_factor())

    def test_default_threshold_derived_from_mean_degree(self):
        graph = generators.powerlaw_like(6, seed=0)
        pgraph = HybridVertexCut().partition(graph, 4)
        assert pgraph.policy == "hvc"


class TestAlgorithmsOnHybrid:
    def test_cc_sv_correct_on_hvc(self):
        graph = generators.powerlaw_like(6, seed=3)
        expected = {}
        for component in nx.connected_components(graph.to_networkx().to_undirected()):
            smallest = min(component)
            for node in component:
                expected[node] = smallest
        result = cc_sv(Cluster(4, threads_per_host=4), partition(graph, 4, "hvc"))
        assert {n: result.values[n] for n in range(graph.num_nodes)} == expected

    def test_mis_valid_on_hvc(self):
        graph = generators.powerlaw_like(6, seed=4)
        result = mis(Cluster(3, threads_per_host=4), partition(graph, 3, "hvc"))
        nx_graph = graph.to_networkx().to_undirected()
        for u, v in nx_graph.edges():
            assert not (result.values[u] == 1 and result.values[v] == 1)

    def test_hvc_cuts_hub_communication_vs_iec(self):
        """The point of the hybrid cut: fewer reduction messages funneling
        into the hub's owner on skewed graphs."""
        graph = generators.star(200)
        iec_cluster = Cluster(4, threads_per_host=4)
        cc_sv(iec_cluster, partition(graph, 4, "iec"))
        hvc_cluster = Cluster(4, threads_per_host=4)
        cc_sv(hvc_cluster, partition(graph, 4, "hvc"))
        assert hvc_cluster.elapsed().total <= iec_cluster.elapsed().total * 1.2
