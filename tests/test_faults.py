"""Fault injection, checkpoint/recovery, and graceful failure reporting.

Covers the determinism contract (same plan + seed => byte-identical
traces), checkpoint round-trips across every host-store layout,
crash-at-every-round recovery equivalence, per-fault cost effects, and
the harness's structured failed-run outcomes.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster
from repro.cluster.cluster import SimulatedOutOfMemory
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, SUM, NodePropMap, RuntimeVariant
from repro.eval.harness import APP_POLICY, KIMBAP_APPS, run_kimbap
from repro.faults import (
    FaultPlan,
    HostCrash,
    KvTimeouts,
    MessageFlake,
    Straggler,
    install_faults,
    named_plan,
)
from repro.faults.plan import NAMED_PLANS
from repro.faults.rng import stream_seed, stream_uniform
from repro.graph import generators
from repro.partition import partition
from repro.runtime.engine import NonQuiescenceError, kimbap_while
from repro.trace import to_chrome_trace
from repro.verify import VerificationError, check_equivalent_values


@pytest.fixture(scope="module")
def small_graph():
    return generators.road_like(4, 3, seed=1)


# ------------------------------------------------------------------ rng


class TestRng:
    def test_pure_function_of_seed_and_labels(self):
        assert stream_seed(7, "drop", 1, 2) == stream_seed(7, "drop", 1, 2)
        assert stream_uniform(7, "drop", 1, 2) == stream_uniform(7, "drop", 1, 2)

    def test_labels_and_seed_decorrelate(self):
        draws = {
            stream_uniform(0, "drop", 1),
            stream_uniform(0, "drop", 2),
            stream_uniform(0, "dup", 1),
            stream_uniform(1, "drop", 1),
        }
        assert len(draws) == 4

    def test_uniform_in_unit_interval(self):
        for i in range(100):
            assert 0.0 <= stream_uniform(3, "x", i) < 1.0


# ---------------------------------------------------------------- plans


class TestPlans:
    def test_crash_round_must_be_positive(self):
        with pytest.raises(ValueError):
            HostCrash(host=0, round=0)

    def test_one_crash_per_round(self):
        with pytest.raises(ValueError, match="one crash per round"):
            FaultPlan(crashes=(HostCrash(0, 2), HostCrash(1, 2)))

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            MessageFlake(drop_rate=1.0)
        with pytest.raises(ValueError):
            KvTimeouts(rate=-0.1)
        with pytest.raises(ValueError):
            Straggler(host=0, multiplier=0.0)

    def test_named_plans_construct_and_describe_as_json(self):
        for name in NAMED_PLANS:
            plan = named_plan(name, seed=5, hosts=2)
            assert plan.name == name
            json.dumps(plan.describe())

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            named_plan("nope")

    def test_window_cover(self):
        flake = MessageFlake(drop_rate=0.1, first_round=2, last_round=4)
        assert not flake.covers(1)
        assert flake.covers(2) and flake.covers(4)
        assert not flake.covers(5)


# ------------------------------------------------- checkpoint round-trip

LAYOUTS = [
    pytest.param(RuntimeVariant.KIMBAP, "sorted", id="gar-sorted"),
    pytest.param(RuntimeVariant.KIMBAP, "hash", id="gar-hash"),
    pytest.param(RuntimeVariant.SGR_CF, "sorted", id="hash-store"),
    pytest.param(RuntimeVariant.MC, "sorted", id="kvstore"),
]


@pytest.mark.parametrize("variant,layout", LAYOUTS)
class TestCheckpointRoundTrip:
    def _make(self, variant, layout, small_graph):
        pgraph = partition(small_graph, 3, "oec")
        cluster = Cluster(3, threads_per_host=4)
        prop = NodePropMap(
            cluster, pgraph, "ckpt", variant=variant, remote_layout=layout
        )
        prop.set_initial(lambda n: n * 10)
        return cluster, pgraph, prop

    def test_save_mutate_restore_parity(self, variant, layout, small_graph):
        cluster, _, prop = self._make(variant, layout, small_graph)
        before = prop.snapshot()
        saved = prop.checkpoint_state()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, 2, -5, MIN)
            prop.reduce(1, 0, 5, -7, MIN)
        prop.reduce_sync()
        assert prop.snapshot() != before
        prop.restore_state(saved)
        assert prop.snapshot() == before

    def test_checkpoint_restorable_repeatedly(self, variant, layout, small_graph):
        cluster, _, prop = self._make(variant, layout, small_graph)
        before = prop.snapshot()
        saved = prop.checkpoint_state()
        for value in (-1, -2):
            with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                prop.reduce(0, 0, 1, value, MIN)
            prop.reduce_sync()
            prop.restore_state(saved)
            assert prop.snapshot() == before

    def test_checkpoint_slots_counts_canonical_values(
        self, variant, layout, small_graph
    ):
        cluster, pgraph, prop = self._make(variant, layout, small_graph)
        total = sum(prop.checkpoint_slots(h) for h in range(cluster.num_hosts))
        assert total >= pgraph.num_nodes


# --------------------------------------------------- recovery equivalence


def _crash_plan(round_id: int, host: int = 1, interval: int = 2) -> FaultPlan:
    return FaultPlan(
        name=f"crash@{round_id}",
        checkpoint_interval=interval,
        crashes=(HostCrash(host=host, round=round_id),),
    )


class TestRecoveryEquivalence:
    def test_bfs_crash_at_every_round(self, small_graph):
        baseline = run_kimbap("BFS", "road", 3, threads=4, graph=small_graph)
        assert baseline.rounds >= 3
        for round_id in range(1, baseline.rounds + 1):
            faulted = run_kimbap(
                "BFS",
                "road",
                3,
                threads=4,
                graph=small_graph,
                fault_plan=_crash_plan(round_id),
            )
            assert faulted.outcome == "ok"
            assert faulted.faults["recoveries"] == 1
            check_equivalent_values(baseline.values, faulted.values)
            assert faulted.rounds == baseline.rounds

    def test_pagerank_crash_at_every_round(self, small_graph):
        kwargs = {"tolerance": 1e-4}
        baseline = run_kimbap(
            "PR", "road", 3, threads=4, graph=small_graph, **kwargs
        )
        assert baseline.rounds >= 3
        for round_id in range(1, baseline.rounds + 1):
            faulted = run_kimbap(
                "PR",
                "road",
                3,
                threads=4,
                graph=small_graph,
                fault_plan=_crash_plan(round_id),
                **kwargs,
            )
            assert faulted.outcome == "ok"
            check_equivalent_values(baseline.values, faulted.values)
            assert faulted.rounds == baseline.rounds

    @pytest.mark.parametrize("app", ["K-CORE", "CC-SV"])
    def test_newly_recoverable_crash_at_every_round(self, app, small_graph):
        """Plan-driven loops get checkpoint/recovery from the executor for
        free - including multi-loop apps (CC-SV interleaves hook/shortcut
        plans) and scalar-kernel apps (K-CORE), which had no recovery path
        before the operator-plan layer."""
        baseline = run_kimbap(app, "road", 3, threads=4, graph=small_graph)
        assert baseline.rounds >= 3
        for round_id in range(1, baseline.rounds + 1):
            faulted = run_kimbap(
                app,
                "road",
                3,
                threads=4,
                graph=small_graph,
                fault_plan=_crash_plan(round_id),
            )
            assert faulted.outcome == "ok"
            assert faulted.faults["recoveries"] == 1
            check_equivalent_values(baseline.values, faulted.values)
            assert faulted.rounds == baseline.rounds

    def test_crash_past_last_round_stays_pending(self, small_graph):
        faulted = run_kimbap(
            "BFS",
            "road",
            3,
            threads=4,
            graph=small_graph,
            fault_plan=_crash_plan(10_000),
        )
        assert faulted.outcome == "ok"
        assert faulted.faults["recoveries"] == 0
        assert len(faulted.faults["crashes_pending"]) == 1
        assert faulted.faults["crashes_fired"] == []

    def test_recovery_phases_visible_in_trace(self, small_graph):
        faulted = run_kimbap(
            "CC-LP",
            "road",
            3,
            threads=4,
            graph=small_graph,
            fault_plan=_crash_plan(2),
        )
        assert faulted.outcome == "ok"
        timeline = faulted.timeline()
        kinds = {s.kind for s in timeline.slices}
        assert PhaseKind.CHECKPOINT in kinds
        assert PhaseKind.RECOVERY in kinds
        recovery = [s for s in timeline.slices if s.kind is PhaseKind.RECOVERY]
        assert any("recover:host1" in (s.label or "") for s in recovery)
        trace = to_chrome_trace(timeline)
        names = {e.get("name") for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert any("checkpoint" in (n or "") for n in names)
        assert any("recover" in (n or "") for n in names)
        assert faulted.faults["checkpoint_time"] > 0
        assert faulted.faults["recovery_time"] > 0


# -------------------------------------------------------- fault pricing


class TestFaultCosts:
    def test_flake_charges_resends_preserves_values(self, small_graph):
        baseline = run_kimbap("CC-LP", "road", 3, threads=4, graph=small_graph)
        plan = FaultPlan(
            name="flaky",
            checkpoint_interval=0,
            flake=MessageFlake(drop_rate=0.2, duplicate_rate=0.1),
        )
        faulted = run_kimbap(
            "CC-LP", "road", 3, threads=4, graph=small_graph, fault_plan=plan
        )
        assert faulted.faults["messages_dropped"] > 0
        assert faulted.faults["messages_duplicated"] > 0
        assert faulted.messages > baseline.messages
        assert faulted.bytes > baseline.bytes
        assert faulted.total > baseline.total
        check_equivalent_values(baseline.values, faulted.values)

    def test_straggler_stretches_modeled_time_only(self, small_graph):
        baseline = run_kimbap("CC-LP", "road", 3, threads=4, graph=small_graph)
        plan = FaultPlan(
            name="slow",
            checkpoint_interval=0,
            stragglers=(Straggler(host=0, multiplier=4.0),),
        )
        faulted = run_kimbap(
            "CC-LP", "road", 3, threads=4, graph=small_graph, fault_plan=plan
        )
        assert faulted.total > baseline.total
        assert faulted.messages == baseline.messages
        assert faulted.bytes == baseline.bytes
        check_equivalent_values(baseline.values, faulted.values)

    def test_kv_timeouts_hit_the_mc_variant(self, small_graph):
        plan = FaultPlan(
            name="lag", checkpoint_interval=0, kv_timeouts=KvTimeouts(rate=0.2)
        )
        baseline = run_kimbap(
            "CC-LP",
            "road",
            3,
            threads=4,
            graph=small_graph,
            variant=RuntimeVariant.MC,
        )
        faulted = run_kimbap(
            "CC-LP",
            "road",
            3,
            threads=4,
            graph=small_graph,
            variant=RuntimeVariant.MC,
            fault_plan=plan,
        )
        assert faulted.faults["kv_timeouts"] > 0
        assert faulted.messages > baseline.messages
        check_equivalent_values(baseline.values, faulted.values)

    def test_install_faults_rejects_double_install(self, small_graph):
        cluster = Cluster(3, threads_per_host=4)
        install_faults(cluster, _crash_plan(1))
        with pytest.raises(RuntimeError):
            install_faults(cluster, _crash_plan(2))


# ----------------------------------------------------------- determinism


class TestDeterminism:
    def _chrome_bytes(self, small_graph) -> str:
        result = run_kimbap(
            "CC-LP",
            "road",
            3,
            threads=4,
            graph=small_graph,
            fault_plan=named_plan("chaos", seed=11, hosts=3, crash_round=2),
        )
        trace = json.dumps(to_chrome_trace(result.timeline()), sort_keys=True)
        return trace, result.faults

    def test_same_plan_same_seed_byte_identical(self, small_graph):
        first_trace, first_faults = self._chrome_bytes(small_graph)
        second_trace, second_faults = self._chrome_bytes(small_graph)
        assert first_trace == second_trace
        assert first_faults == second_faults

    def test_different_seed_differs(self, small_graph):
        def run(seed):
            plan = FaultPlan(
                name="flaky",
                seed=seed,
                checkpoint_interval=0,
                flake=MessageFlake(drop_rate=0.3, duplicate_rate=0.2),
            )
            result = run_kimbap(
                "CC-LP", "road", 3, threads=4, graph=small_graph, fault_plan=plan
            )
            return json.dumps(to_chrome_trace(result.timeline()), sort_keys=True)

        traces = {run(seed) for seed in range(4)}
        assert len(traces) > 1


# ------------------------------------------------- structured failures


class TestStructuredFailures:
    def test_non_quiescence_error_carries_context(self):
        error = NonQuiescenceError(42, ["rank", "contrib"])
        assert error.rounds == 42
        assert error.map_names == ["rank", "contrib"]
        assert error.loop == "KimbapWhile"
        assert "42 rounds" in str(error) and "rank" in str(error)
        assert isinstance(error, RuntimeError)  # backward compat

    def test_simulated_oom_carries_context(self):
        cluster = Cluster(2, threads_per_host=4, memory_limit_slots=10)
        cluster.track_memory(0, "a", 8)
        with pytest.raises(SimulatedOutOfMemory) as info:
            cluster.track_memory(0, "b", 5)
        oom = info.value
        assert (oom.host, oom.owner) == (0, "b")
        assert oom.total_slots == 13 and oom.limit == 10

    def test_track_memory_zero_drops_entry(self):
        cluster = Cluster(2, threads_per_host=4, memory_limit_slots=10)
        cluster.track_memory(0, "a", 8)
        cluster.track_memory(0, "a", 0)
        cluster.track_memory(0, "b", 9)  # fits only if "a" was dropped

    def test_harness_reports_oom_as_outcome(self, small_graph):
        result = run_kimbap(
            "CC-LP", "road", 3, threads=4, graph=small_graph, memory_limit_slots=3
        )
        assert result.outcome == "oom"
        assert result.failure["error"] == "SimulatedOutOfMemory"
        assert result.failure["limit"] == 3
        assert result.failure["total_slots"] > 3
        payload = result.to_dict()
        assert payload["outcome"] == "oom"
        assert payload["failure"]["host"] == result.failure["host"]

    def test_harness_reports_non_quiescence_as_outcome(
        self, small_graph, monkeypatch
    ):
        def stuck(cluster, pgraph, variant=RuntimeVariant.KIMBAP, **kwargs):
            prop = NodePropMap(cluster, pgraph, "stuck", variant=variant)
            prop.set_initial(lambda n: 0)

            def body():
                with cluster.phase(PhaseKind.REDUCE_COMPUTE):
                    prop.reduce(0, 0, 0, 1, SUM)
                prop.reduce_sync()

            kimbap_while(prop, body, max_rounds=3)

        monkeypatch.setitem(KIMBAP_APPS, "STUCK", stuck)
        monkeypatch.setitem(APP_POLICY, "STUCK", "oec")
        result = run_kimbap("STUCK", "road", 3, threads=4, graph=small_graph)
        assert result.outcome == "non-quiescent"
        assert result.failure == {
            "error": "NonQuiescenceError",
            "loop": "KimbapWhile",
            "rounds": 3,
            "maps": ["stuck"],
        }
        assert result.to_dict()["outcome"] == "non-quiescent"

    def test_ok_run_report_has_no_failure_keys(self, small_graph):
        result = run_kimbap("BFS", "road", 3, threads=4, graph=small_graph)
        payload = result.to_dict()
        assert "outcome" not in payload
        assert "failure" not in payload
        assert "faults" not in payload


# ------------------------------------------------------------ verifier


class TestEquivalenceChecker:
    def test_key_set_mismatch(self):
        with pytest.raises(VerificationError, match="key sets differ"):
            check_equivalent_values({0: 1}, {1: 1})

    def test_exact_mismatch(self):
        with pytest.raises(VerificationError, match="!= expected"):
            check_equivalent_values({0: 1}, {0: 2})

    def test_tolerance_admits_close_floats(self):
        check_equivalent_values({0: 1.0}, {0: 1.0 + 1e-12}, tolerance=1e-9)
        with pytest.raises(VerificationError):
            check_equivalent_values({0: 1.0}, {0: 1.1}, tolerance=1e-9)
