"""Tests for the request-deduplication bitset."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConcurrentBitset


class TestBitset:
    def test_set_reports_newness(self):
        bits = ConcurrentBitset(8)
        assert bits.set(3)
        assert not bits.set(3)

    def test_len_counts_distinct(self):
        bits = ConcurrentBitset(8)
        for index in (1, 1, 2, 7, 2):
            bits.set(index)
        assert len(bits) == 3

    def test_nonzero_sorted(self):
        bits = ConcurrentBitset(10)
        for index in (9, 0, 4):
            bits.set(index)
        assert bits.nonzero().tolist() == [0, 4, 9]

    def test_clear(self):
        bits = ConcurrentBitset(4)
        bits.set(2)
        bits.clear()
        assert len(bits) == 0
        assert not bits.test(2)

    def test_out_of_range(self):
        bits = ConcurrentBitset(4)
        with pytest.raises(IndexError):
            bits.set(4)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentBitset(-1)

    def test_zero_size_allowed(self):
        assert len(ConcurrentBitset(0)) == 0

    @given(st.lists(st.integers(0, 63), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_set_semantics(self, indices):
        """The bitset must behave exactly like a set: this is what makes
        request deduplication correct."""
        bits = ConcurrentBitset(64)
        reference = set()
        for index in indices:
            assert bits.set(index) == (index not in reference)
            reference.add(index)
        assert bits.nonzero().tolist() == sorted(reference)
        assert len(bits) == len(reference)
