"""Tests for request-phase coalescing."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.compiler.compile import RequestPhase, coalesce_request_phases, compile_program
from repro.compiler.interp import run_compiled
from repro.compiler.ir import (
    ActiveNode,
    BinOp,
    KimbapWhile,
    MapRead,
    MapReduce,
    ParFor,
    Var,
    stmts,
)
from repro.core import MIN, NodePropMap
from repro.graph import generators
from repro.partition import partition


def two_map_program() -> KimbapWhile:
    """Reads two maps at the active node, reduces their min onto a third.

    With masters-only elision *disabled* (the operator touches no edges,
    so under optimize=True the iterator becomes masters and both requests
    elide; under NO-OPT both requests survive and are pure + mergeable).
    """
    body = stmts(
        MapRead("a_value", "a", ActiveNode()),
        MapRead("b_value", "b", ActiveNode()),
        MapReduce("out", ActiveNode(), BinOp("min", Var("a_value"), Var("b_value")), MIN),
    )
    return KimbapWhile(("out",), ParFor(body), name="two_map")


class TestCoalescePass:
    def test_pure_phases_merge(self):
        loop = compile_program(two_map_program(), optimize=False)
        # NO-OPT skips the coalescing pass: both request phases survive
        assert len(loop.request_phases) == 2

    def test_optimized_program_merges_pure_requests(self):
        # Force the request phases to survive optimization by making the
        # operator touch edges (disables masters-only elision) but read
        # maps that are not pinned (keys are ACTIVE but maps unpinned
        # because reads are... pinned applies; so craft dynamic keys).
        from repro.compiler.ir import Const

        body = stmts(
            MapRead("a_value", "a", BinOp("+", ActiveNode(), Const(0))),
            MapRead("b_value", "b", BinOp("+", ActiveNode(), Const(0))),
            MapReduce(
                "out", ActiveNode(), BinOp("min", Var("a_value"), Var("b_value")), MIN
            ),
        )
        program = KimbapWhile(("out",), ParFor(body), name="dyn")
        loop = compile_program(program, optimize=True)
        # both keys are dynamic (+0 defeats the classifier on purpose), so
        # two pure request phases exist and coalesce into one
        assert len(loop.request_phases) == 1
        assert set(loop.request_phases[0].maps) == {"a", "b"}
        assert loop.request_phases[0].pure

    def test_mergeable_only_when_consecutive_and_pure(self):
        pure_a = RequestPhase(ParFor(stmts(), iterator="nodes"), ("a",), pure=True)
        impure = RequestPhase(ParFor(stmts(), iterator="nodes"), ("b",), pure=False)
        pure_c = RequestPhase(ParFor(stmts(), iterator="nodes"), ("c",), pure=True)
        out = coalesce_request_phases([pure_a, impure, pure_c])
        assert len(out) == 3

    def test_different_iterators_do_not_merge(self):
        masters = RequestPhase(ParFor(stmts(), iterator="masters"), ("a",), pure=True)
        nodes = RequestPhase(ParFor(stmts(), iterator="nodes"), ("b",), pure=True)
        assert len(coalesce_request_phases([masters, nodes])) == 2

    def test_same_map_requests_dedup_syncs(self):
        first = RequestPhase(ParFor(stmts(), iterator="nodes"), ("a",), pure=True)
        second = RequestPhase(ParFor(stmts(), iterator="nodes"), ("a",), pure=True)
        merged = coalesce_request_phases([first, second])
        assert len(merged) == 1
        assert merged[0].maps == ("a",)

    def test_map_property_rejects_multi(self):
        phase = RequestPhase(ParFor(stmts()), ("a", "b"), pure=True)
        with pytest.raises(ValueError):
            phase.map


class TestCoalescedExecution:
    def test_merged_loop_computes_correctly(self):
        from repro.compiler.ir import Const

        body = stmts(
            MapRead("a_value", "a", BinOp("+", ActiveNode(), Const(0))),
            MapRead("b_value", "b", BinOp("+", ActiveNode(), Const(0))),
            MapReduce(
                "out", ActiveNode(), BinOp("min", Var("a_value"), Var("b_value")), MIN
            ),
        )
        program = KimbapWhile(("out",), ParFor(body), name="dyn")
        loop = compile_program(program, optimize=True)
        assert len(loop.request_phases) == 1

        graph = generators.path(8)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=2)
        a = NodePropMap(cluster, pgraph, "a")
        b = NodePropMap(cluster, pgraph, "b")
        out = NodePropMap(cluster, pgraph, "out")
        a.set_initial(lambda node: node)
        b.set_initial(lambda node: 10 - node)
        out.set_initial(lambda node: 999)
        run_compiled(loop, cluster, pgraph, {"a": a, "b": b, "out": out})
        snapshot = out.snapshot()
        assert snapshot == {node: min(node, 10 - node) for node in range(8)}

    def test_coalescing_saves_a_sync_wave(self):
        from repro.compiler.ir import Const

        body = stmts(
            MapRead("a_value", "a", BinOp("+", ActiveNode(), Const(0))),
            MapRead("b_value", "b", BinOp("+", ActiveNode(), Const(0))),
            MapReduce(
                "out", ActiveNode(), BinOp("min", Var("a_value"), Var("b_value")), MIN
            ),
        )
        program = KimbapWhile(("out",), ParFor(body), name="dyn")

        def node_iters(optimize):
            loop = compile_program(program, optimize=optimize)
            graph = generators.path(16)
            pgraph = partition(graph, 2, "oec")
            cluster = Cluster(2, threads_per_host=2)
            maps = {
                name: NodePropMap(cluster, pgraph, name) for name in ("a", "b", "out")
            }
            for name, prop in maps.items():
                prop.set_initial(lambda node: node)
            run_compiled(loop, cluster, pgraph, maps)
            return cluster.log.total_counters().node_iters

        # one merged request ParFor scans the nodes once instead of twice
        assert node_iters(True) < node_iters(False)
