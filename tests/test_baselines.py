"""Baseline system tests: correctness plus the paper's comparative shapes."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import boruvka_msf, cc_lp, cc_sv, louvain
from repro.baselines import (
    galois_cc_lp,
    galois_cc_sv,
    galois_leiden,
    galois_louvain,
    galois_mis,
    galois_msf,
    gluon_cc_lp,
    vite_louvain,
)
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition

ROAD = generators.road_like(8, 4, seed=2, weighted=True)
POWERLAW = generators.powerlaw_like(6, seed=3, weighted=True)


def components_truth(graph):
    expected = {}
    for component in nx.connected_components(graph.to_networkx().to_undirected()):
        smallest = min(component)
        for node in component:
            expected[node] = smallest
    return expected


class TestVite:
    def test_same_clustering_as_kimbap_lv(self):
        """Vite and Kimbap run the same deterministic algorithm (Section
        6.1), so their outputs must match exactly."""
        for graph in (ROAD, POWERLAW):
            vite = vite_louvain(Cluster(2, threads_per_host=4), partition(graph, 2, "oec"))
            kimbap = louvain(Cluster(2, threads_per_host=4), partition(graph, 2, "oec"))
            assert vite.stats["modularity"] == pytest.approx(kimbap.stats["modularity"])
            assert vite.stats["num_communities"] == kimbap.stats["num_communities"]

    def test_kimbap_faster_than_vite(self):
        """The headline result: Kimbap LV beats hand-optimized Vite."""
        for graph in (ROAD, POWERLAW):
            vite_cluster = Cluster(4, threads_per_host=8)
            vite_louvain(vite_cluster, partition(graph, 4, "oec"))
            kimbap_cluster = Cluster(4, threads_per_host=8)
            louvain(kimbap_cluster, partition(graph, 4, "oec"))
            assert kimbap_cluster.elapsed().total < vite_cluster.elapsed().total

    def test_gap_wider_on_powerlaw(self):
        """Section 6.2: 'the difference is higher for larger, power-law
        graphs due to more atomic write conflicts among threads in Vite'."""

        def ratio(graph):
            vite_cluster = Cluster(4, threads_per_host=8)
            vite_louvain(vite_cluster, partition(graph, 4, "oec"))
            kimbap_cluster = Cluster(4, threads_per_host=8)
            louvain(kimbap_cluster, partition(graph, 4, "oec"))
            return vite_cluster.elapsed().total / kimbap_cluster.elapsed().total

        assert ratio(POWERLAW) > ratio(ROAD)

    def test_vite_has_serial_inspection_phase(self):
        from repro.cluster.metrics import PhaseKind

        cluster = Cluster(2, threads_per_host=4)
        vite_louvain(cluster, partition(ROAD, 2, "oec"))
        serial = [p for p in cluster.log.phases if p.kind is PhaseKind.SERIAL]
        assert serial and all(not p.parallel for p in serial)

    def test_rejects_vertex_cut(self):
        with pytest.raises(ValueError):
            vite_louvain(Cluster(4), partition(ROAD, 4, "cvc"))

    def test_early_termination_keeps_validity(self):
        """The 75%-skip heuristic must not break the clustering (it may
        change the trajectory, including the number of rounds)."""
        with_et = Cluster(2, threads_per_host=4)
        result = vite_louvain(
            with_et, partition(POWERLAW, 2, "oec"), early_termination=True, seed=1
        )
        without_et = Cluster(2, threads_per_host=4)
        baseline = vite_louvain(without_et, partition(POWERLAW, 2, "oec"))
        assert result.stats["modularity"] > 0
        assert result.stats["modularity"] > baseline.stats["modularity"] - 0.1

    def test_early_termination_is_deterministic(self):
        first = vite_louvain(
            Cluster(2, threads_per_host=4),
            partition(POWERLAW, 2, "oec"),
            early_termination=True,
            seed=3,
        )
        second = vite_louvain(
            Cluster(2, threads_per_host=4),
            partition(POWERLAW, 2, "oec"),
            early_termination=True,
            seed=3,
        )
        assert first.values == second.values


class TestGluon:
    def test_same_components_as_kimbap(self):
        for graph in (ROAD, POWERLAW):
            expected = components_truth(graph)
            result = gluon_cc_lp(Cluster(4, threads_per_host=4), partition(graph, 4, "cvc"))
            assert {n: result.values[n] for n in range(graph.num_nodes)} == expected

    def test_comparable_to_kimbap_lp(self):
        """Figure 9c/10c: Kimbap-LP and Gluon-LP within a small factor."""
        for graph in (ROAD, POWERLAW):
            gluon_cluster = Cluster(4, threads_per_host=8)
            gluon_cc_lp(gluon_cluster, partition(graph, 4, "cvc"))
            kimbap_cluster = Cluster(4, threads_per_host=8)
            cc_lp(kimbap_cluster, partition(graph, 4, "cvc"))
            ratio = kimbap_cluster.elapsed().total / gluon_cluster.elapsed().total
            assert 0.4 < ratio < 2.5

    def test_no_request_phases(self):
        from repro.cluster.metrics import PhaseKind

        cluster = Cluster(4, threads_per_host=4)
        gluon_cc_lp(cluster, partition(POWERLAW, 4, "cvc"))
        request_traffic = sum(
            sum(p.msgs_sent)
            for p in cluster.log.phases
            if p.kind is PhaseKind.REQUEST_SYNC
        )
        assert request_traffic == 0


class TestGalois:
    def test_cc_sv_correct(self):
        expected = components_truth(ROAD)
        result = galois_cc_sv(Cluster(1, threads_per_host=8), ROAD)
        assert {n: result.values[n] for n in range(ROAD.num_nodes)} == expected

    def test_cc_lp_correct(self):
        expected = components_truth(POWERLAW)
        result = galois_cc_lp(Cluster(1, threads_per_host=8), POWERLAW)
        assert {n: result.values[n] for n in range(POWERLAW.num_nodes)} == expected

    def test_msf_matches_networkx(self):
        nx_weight = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_edges(
                ROAD.to_networkx().to_undirected(), data=True
            )
        )
        result = galois_msf(Cluster(1, threads_per_host=8), ROAD)
        assert result.stats["forest_weight"] == pytest.approx(nx_weight)

    def test_mis_valid(self):
        result = galois_mis(Cluster(1, threads_per_host=8), POWERLAW)
        nx_graph = POWERLAW.to_networkx().to_undirected()
        values = result.values
        for u, v in nx_graph.edges():
            assert not (values[u] == 1 and values[v] == 1)
        for node in nx_graph.nodes():
            assert values[node] == 1 or any(
                values[m] == 1 for m in nx_graph.neighbors(node)
            )

    def test_louvain_positive_modularity(self):
        result = galois_louvain(Cluster(1, threads_per_host=8), ROAD)
        assert result.stats["modularity"] > 0.3

    def test_requires_single_host(self):
        with pytest.raises(ValueError):
            galois_cc_sv(Cluster(2), ROAD)

    def test_async_beats_bsp_on_pointer_jumping(self):
        """Table 3: Galois wins MSF and CC-SV on one host because async
        pointer jumping converges in a few sweeps."""
        galois_cluster = Cluster(1, threads_per_host=8)
        galois_cc_sv(galois_cluster, ROAD)
        kimbap_cluster = Cluster(1, threads_per_host=8)
        cc_sv(kimbap_cluster, partition(ROAD, 1, "oec"))
        assert galois_cluster.elapsed().total < kimbap_cluster.elapsed().total

        galois_cluster = Cluster(1, threads_per_host=8)
        galois_msf(galois_cluster, ROAD)
        kimbap_cluster = Cluster(1, threads_per_host=8)
        boruvka_msf(kimbap_cluster, partition(ROAD, 1, "oec"))
        assert galois_cluster.elapsed().total < kimbap_cluster.elapsed().total

    def test_leiden_pays_conflict_penalty(self):
        """Table 3: LD's subcluster updates contend through atomics - LD
        must cost meaningfully more than LV in Galois."""
        lv_cluster = Cluster(1, threads_per_host=8)
        galois_louvain(lv_cluster, POWERLAW)
        ld_cluster = Cluster(1, threads_per_host=8)
        galois_leiden(ld_cluster, POWERLAW)
        assert ld_cluster.elapsed().total > lv_cluster.elapsed().total
        ld_conflicts = ld_cluster.log.total_counters().cas_conflicts
        lv_conflicts = lv_cluster.log.total_counters().cas_conflicts
        assert ld_conflicts > lv_conflicts


class TestGluonSuite:
    """The extended adjacent-vertex suite (bfs/sssp) on the Gluon engine."""

    def test_gluon_bfs_matches_kimbap(self):
        from repro.algorithms import bfs
        from repro.baselines import gluon_bfs

        graph = generators.powerlaw_like(6, seed=3)
        gluon = gluon_bfs(Cluster(4, threads_per_host=4), partition(graph, 4, "cvc"))
        kimbap = bfs(Cluster(4, threads_per_host=4), partition(graph, 4, "cvc"))
        assert gluon.values == kimbap.values

    def test_gluon_sssp_matches_networkx(self):
        import math

        from repro.baselines import gluon_sssp

        graph = generators.road_like(8, 4, seed=2, weighted=True)
        result = gluon_sssp(
            Cluster(3, threads_per_host=4), partition(graph, 3, "cvc"), source=0
        )
        expected = nx.single_source_dijkstra_path_length(
            graph.to_networkx().to_undirected(), 0
        )
        for node in range(graph.num_nodes):
            if node in expected:
                assert abs(result.values[node] - expected[node]) < 1e-9
            else:
                assert result.values[node] == math.inf

    def test_gluon_suite_comparable_cost(self):
        from repro.algorithms import sssp
        from repro.baselines import gluon_sssp

        graph = generators.powerlaw_like(6, seed=3, weighted=True)
        gluon_cluster = Cluster(4, threads_per_host=8)
        gluon_sssp(gluon_cluster, partition(graph, 4, "cvc"))
        kimbap_cluster = Cluster(4, threads_per_host=8)
        sssp(kimbap_cluster, partition(graph, 4, "cvc"))
        ratio = kimbap_cluster.elapsed().total / gluon_cluster.elapsed().total
        assert 0.3 < ratio < 3.0
