"""MC-variant specifics: the property map on the Memcached-like store."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core import MIN, NodePropMap, RuntimeVariant
from repro.graph import generators
from repro.kvstore import KvClient
from repro.partition import partition


def setting(hosts=3):
    graph = generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, hosts, "oec")
    cluster = Cluster(hosts, threads_per_host=4)
    prop = NodePropMap(cluster, pgraph, "m", variant=RuntimeVariant.MC)
    return graph, pgraph, cluster, prop


class TestMcWiring:
    def test_canonical_values_live_in_kvstore(self):
        _, _, cluster, prop = setting()
        prop.set_initial(lambda node: node * 2)
        client = prop.kv_client
        key = prop._kv_key(3)
        server = client.servers[client.server_of(key)]
        assert server.get(key)[0] == 6

    def test_shared_client_can_be_injected(self):
        graph = generators.road_like(6, 4, seed=0)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=4)
        client = KvClient(cluster)
        first = NodePropMap(
            cluster, pgraph, "a", variant=RuntimeVariant.MC, kv_client=client
        )
        second = NodePropMap(
            cluster, pgraph, "b", variant=RuntimeVariant.MC, kv_client=client
        )
        first.set_initial(lambda node: 1)
        second.set_initial(lambda node: 2)
        # namespaced keys keep the maps separate in the shared store
        assert first.snapshot()[0] == 1
        assert second.snapshot()[0] == 2

    def test_reduce_sync_is_communication_noop(self):
        """Section 6.4: MC reductions apply eagerly via CAS, so ReduceSync
        carries only the vote + cache refetch, no partial-value scatter."""
        _, _, cluster, prop = setting()
        prop.set_initial(lambda node: 100)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(0, 0, 1, 5, MIN)
        cluster.reset()
        prop.reduce_sync()
        sync_phases = [
            p for p in cluster.log.phases if p.kind is PhaseKind.REDUCE_SYNC
        ]
        assert len(sync_phases) == 1
        # only the one-byte allreduce vote rides the reduce-sync phase
        assert max(sync_phases[0].bytes_sent, default=0) <= cluster.num_hosts

    def test_reads_charged_string_key_costs(self):
        _, _, cluster, prop = setting()
        prop.set_initial(lambda node: 1)
        assert cluster.log.total_counters().kv_string_ops > 0

    def test_cas_contention_counted_across_hosts(self):
        _, _, cluster, prop = setting()
        prop.set_initial(lambda node: 100)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for host in range(cluster.num_hosts):
                prop.reduce(host, 0, 1, 50 - host, MIN)
        counters = cluster.log.total_counters()
        assert counters.cas_conflicts > 0
        assert prop.snapshot()[1] == 48  # min of 50, 49, 48

    def test_pin_fetch_covers_mirrors(self):
        graph = generators.powerlaw_like(6, seed=2)
        pgraph = partition(graph, 3, "cvc")
        cluster = Cluster(3, threads_per_host=4)
        prop = NodePropMap(cluster, pgraph, "m", variant=RuntimeVariant.MC)
        prop.set_initial(lambda node: node)
        prop.pin_mirrors(invariant="none")
        part = next(p for p in pgraph.parts if p.num_mirrors)
        mirror = int(part.mirrors_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(part.host_id, mirror) == mirror

    def test_refetch_reflects_cas_updates(self):
        _, pgraph, cluster, prop = setting()
        prop.set_initial(lambda node: 100)
        target = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            prop.reduce(1, 0, target, 7, MIN)
        prop.reduce_sync()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert prop.read(0, target) == 7
