"""Randomized cross-cutting integration tests.

Hypothesis drives random graphs through full algorithm stacks on random
(policy, host count) configurations, validated with :mod:`repro.verify`.
These are the widest nets in the suite: any partitioning bug, sync-ordering
bug, or variant divergence surfaces here as a wrong answer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import verify
from repro.algorithms import boruvka_msf, cc_lp, cc_sclp, cc_sv, louvain, mis
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import POLICIES, partition

configurations = st.tuples(
    st.sampled_from(sorted(POLICIES)),
    st.integers(1, 6),
)


def random_graph(seed: int, weighted: bool = False):
    kind = seed % 3
    if kind == 0:
        return generators.erdos_renyi(35, 3.0, seed=seed, weighted=weighted)
    if kind == 1:
        return generators.road_like(7, 5, seed=seed, weighted=weighted)
    return generators.rmat(5, 4, seed=seed, weighted=weighted)


class TestConnectedComponentsEverywhere:
    @given(st.integers(0, 10_000), configurations)
    @settings(max_examples=20, deadline=None)
    def test_cc_sv(self, seed, config):
        policy, hosts = config
        graph = random_graph(seed)
        result = cc_sv(Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy))
        verify.check_components(graph, result.values)

    @given(st.integers(0, 10_000), configurations)
    @settings(max_examples=15, deadline=None)
    def test_cc_lp(self, seed, config):
        policy, hosts = config
        graph = random_graph(seed)
        result = cc_lp(Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy))
        verify.check_components(graph, result.values)

    @given(st.integers(0, 10_000), configurations)
    @settings(max_examples=15, deadline=None)
    def test_cc_sclp(self, seed, config):
        policy, hosts = config
        graph = random_graph(seed)
        result = cc_sclp(
            Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy)
        )
        verify.check_components(graph, result.values)


class TestOtherAlgorithmsEverywhere:
    @given(st.integers(0, 10_000), configurations)
    @settings(max_examples=15, deadline=None)
    def test_mis(self, seed, config):
        policy, hosts = config
        graph = random_graph(seed)
        result = mis(Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy))
        verify.check_independent_set(graph, result.values)

    @given(st.integers(0, 10_000), configurations)
    @settings(max_examples=10, deadline=None)
    def test_msf(self, seed, config):
        policy, hosts = config
        graph = random_graph(seed, weighted=True)
        result = boruvka_msf(
            Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy)
        )
        verify.check_spanning_forest(graph, result.extra["forest"])

    @given(st.integers(0, 10_000), st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_louvain_partition_valid(self, seed, hosts):
        graph = random_graph(seed, weighted=True)
        result = louvain(
            Cluster(hosts, threads_per_host=4), partition(graph, hosts, "oec")
        )
        verify.check_community_partition(graph, result.values)
        # singleton-start Louvain can never end below singleton modularity
        import numpy as np

        from repro.algorithms.common import modularity

        singleton = modularity(graph, np.arange(graph.num_nodes))
        assert result.stats["modularity"] >= singleton - 1e-9


class TestDeterminismEverywhere:
    """Same graph, any configuration -> byte-identical results."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_cc_sv_partitioning_invariance(self, seed):
        graph = random_graph(seed)
        baseline = cc_sv(Cluster(1), partition(graph, 1, "oec")).values
        for policy, hosts in (("cvc", 4), ("hvc", 3), ("iec", 2)):
            result = cc_sv(
                Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy)
            )
            assert result.values == baseline

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_msf_partitioning_invariance(self, seed):
        graph = random_graph(seed, weighted=True)
        baseline = boruvka_msf(Cluster(1), partition(graph, 1, "oec")).extra["forest"]
        for policy, hosts in (("cvc", 4), ("oec", 3)):
            result = boruvka_msf(
                Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy)
            )
            assert result.extra["forest"] == baseline
