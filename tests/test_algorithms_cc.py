"""Connected-components algorithms: correctness against networkx ground truth."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import cc_lp, cc_sclp, cc_sv
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import generators
from repro.partition import partition

ALGORITHMS = {"lp": cc_lp, "sv": cc_sv, "sclp": cc_sclp}

GRAPHS = {
    "road": generators.road_like(8, 4, seed=1),
    "powerlaw": generators.powerlaw_like(6, seed=3),
    "two_components": generators.disjoint_union(
        generators.path(7), generators.cycle(5)
    ),
    "star": generators.star(15),
    "singletons": generators.disjoint_union(
        generators.path(2), generators.path(2)
    ),
}


def expected_components(graph):
    expected = {}
    for component in nx.connected_components(graph.to_networkx().to_undirected()):
        smallest = min(component)
        for node in component:
            expected[node] = smallest
    return expected


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("policy,num_hosts", [("cvc", 4), ("oec", 3), ("oec", 1)])
class TestCorrectness:
    def test_matches_networkx(self, algorithm, graph_name, policy, num_hosts):
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        cluster = Cluster(num_hosts, threads_per_host=4)
        result = ALGORITHMS[algorithm](cluster, pgraph)
        expected = expected_components(graph)
        assert {n: result.values[n] for n in range(graph.num_nodes)} == expected


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("variant", list(RuntimeVariant))
class TestAllVariants:
    def test_every_runtime_variant_is_correct(self, algorithm, variant):
        """All Section 6.4 runtime variants execute the same programs and
        must produce identical results."""
        graph = GRAPHS["powerlaw"]
        pgraph = partition(graph, 3, "cvc")
        cluster = Cluster(3, threads_per_host=4)
        result = ALGORITHMS[algorithm](cluster, pgraph, variant=variant)
        expected = expected_components(graph)
        assert {n: result.values[n] for n in range(graph.num_nodes)} == expected


class TestRoundStructure:
    def test_sclp_beats_lp_in_rounds_on_high_diameter(self):
        """The paper's Section 6.2 claim: pointer jumping skips multiple
        edges per round, so SCLP needs far fewer rounds than LP on
        high-diameter graphs."""
        graph = generators.road_like(24, 4, seed=0)
        lp_rounds = cc_lp(
            Cluster(2, threads_per_host=4), partition(graph, 2, "oec")
        ).rounds
        sclp_rounds = cc_sclp(
            Cluster(2, threads_per_host=4), partition(graph, 2, "oec")
        ).rounds
        assert sclp_rounds * 2 < lp_rounds

    def test_lp_rounds_track_diameter(self):
        short = cc_lp(Cluster(2), partition(generators.path(8), 2, "oec")).rounds
        long = cc_lp(Cluster(2), partition(generators.path(32), 2, "oec")).rounds
        assert long > short

    def test_sv_hook_then_shortcut_converges_on_cycle(self):
        graph = generators.cycle(17)
        result = cc_sv(Cluster(2, threads_per_host=4), partition(graph, 2, "oec"))
        assert all(value == 0 for value in result.values.values())

    def test_single_node_graph(self):
        from repro.graph import Graph

        graph = Graph.from_edge_list(1, [])
        for algorithm in ALGORITHMS.values():
            result = algorithm(Cluster(1), partition(graph, 1, "oec"))
            assert result.values == {0: 0}

    def test_edgeless_graph(self):
        from repro.graph import Graph

        graph = Graph.from_edge_list(5, [])
        for algorithm in ALGORITHMS.values():
            result = algorithm(Cluster(2), partition(graph, 2, "oec"))
            assert result.values == {n: n for n in range(5)}


class TestMetrics:
    def test_lp_elides_all_requests(self):
        """CC-LP is adjacent-vertex: with pinned mirrors there must be no
        request-sync traffic at all (the compiler elision the paper credits
        for matching Gluon)."""
        from repro.cluster.metrics import PhaseKind

        graph = GRAPHS["powerlaw"]
        cluster = Cluster(4, threads_per_host=4)
        cc_lp(cluster, partition(graph, 4, "cvc"))
        request_phases = [
            p
            for p in cluster.log.phases
            if p.kind is PhaseKind.REQUEST_SYNC and sum(p.msgs_sent) > 0
        ]
        assert request_phases == []

    def test_sv_uses_requests_for_shortcut(self):
        from repro.cluster.metrics import PhaseKind

        graph = GRAPHS["road"]
        cluster = Cluster(4, threads_per_host=4)
        cc_sv(cluster, partition(graph, 4, "cvc"))
        kinds = {p.kind for p in cluster.log.phases}
        assert PhaseKind.REQUEST_SYNC in kinds

    def test_more_hosts_more_communication(self):
        graph = GRAPHS["powerlaw"]
        small = Cluster(2, threads_per_host=4)
        cc_sv(small, partition(graph, 2, "cvc"))
        large = Cluster(6, threads_per_host=4)
        cc_sv(large, partition(graph, 6, "cvc"))
        assert large.log.total_messages() > small.log.total_messages()
