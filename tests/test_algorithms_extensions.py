"""Tests for the extension applications (k-core, vertex cover) and verify module."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import verify
from repro.algorithms import boruvka_msf, cc_sv, k_core, leiden, mis, vertex_cover
from repro.algorithms.kcore import h_index
from repro.cluster import Cluster
from repro.core import RuntimeVariant
from repro.graph import Graph, generators
from repro.partition import partition


def run(algorithm, graph, hosts=3, policy="oec", **kwargs):
    return algorithm(
        Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy), **kwargs
    )


class TestHIndex:
    def test_basic(self):
        assert h_index([3, 3, 3]) == 3
        assert h_index([5, 1, 1]) == 1
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([2, 2, 2, 2]) == 2

    @given(st.lists(st.integers(0, 20), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_definition(self, values):
        h = h_index(values)
        assert sum(1 for v in values if v >= h) >= h
        assert sum(1 for v in values if v >= h + 1) < h + 1


GRAPHS = {
    "road": generators.road_like(8, 4, seed=1),
    "powerlaw": generators.powerlaw_like(6, seed=3),
    "cliques": generators.disjoint_union(
        generators.complete(6), generators.path(5)
    ),
    "star": generators.star(10),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestKCore:
    def test_matches_networkx(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(k_core, graph)
        verify.check_core_numbers(graph, result.values)

    def test_single_host(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(k_core, graph, hosts=1)
        verify.check_core_numbers(graph, result.values)


class TestKCoreProperties:
    def test_clique_core_is_size_minus_one(self):
        result = run(k_core, generators.complete(7))
        assert all(v == 6 for v in result.values.values())

    def test_requires_edge_cut(self):
        with pytest.raises(ValueError):
            run(k_core, GRAPHS["road"], policy="cvc")

    @pytest.mark.parametrize("variant", list(RuntimeVariant))
    def test_all_variants_agree(self, variant):
        graph = GRAPHS["powerlaw"]
        baseline = run(k_core, graph).values
        assert run(k_core, graph, variant=variant).values == baseline

    @given(st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        graph = generators.erdos_renyi(30, 4.0, seed=seed)
        result = run(k_core, graph, hosts=2)
        verify.check_core_numbers(graph, result.values)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestVertexCover:
    def test_covers_every_edge(self, graph_name):
        graph = GRAPHS[graph_name]
        result = run(vertex_cover, graph)
        verify.check_vertex_cover(graph, result.values)

    def test_within_2x_of_optimal_bound(self, graph_name):
        """A matching-based cover is at most 2x any cover, in particular
        at most 2x the LP lower bound given by any maximal matching."""
        graph = GRAPHS[graph_name]
        result = run(vertex_cover, graph)
        cover_size = sum(result.values.values())
        nx_graph = graph.to_networkx().to_undirected()
        matching = nx.maximal_matching(nx_graph)
        # every cover >= |any matching|; ours == 2 x |our matching|
        assert cover_size <= 2 * len(nx.max_weight_matching(nx_graph))
        assert cover_size % 2 == 0  # endpoints of matched edges
        del matching


class TestVertexCoverProperties:
    def test_star_cover_is_one_edge(self):
        result = run(vertex_cover, generators.star(9))
        assert result.stats["cover_size"] == 2  # hub + one leaf (one matched edge)

    def test_edgeless_graph_empty_cover(self):
        graph = Graph.from_edge_list(5, [])
        result = run(vertex_cover, graph, hosts=2)
        assert result.stats["cover_size"] == 0

    def test_requires_edge_cut(self):
        with pytest.raises(ValueError):
            run(vertex_cover, GRAPHS["road"], policy="cvc")

    def test_deterministic_across_hosts(self):
        graph = GRAPHS["powerlaw"]
        baseline = run(vertex_cover, graph, hosts=1).values
        assert run(vertex_cover, graph, hosts=4).values == baseline

    @given(st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_covered(self, seed):
        graph = generators.erdos_renyi(30, 3.0, seed=seed)
        result = run(vertex_cover, graph, hosts=2)
        verify.check_vertex_cover(graph, result.values)


class TestVerifyModule:
    """The validators must reject broken outputs, not just accept good ones."""

    def test_components_rejects_wrong_label(self):
        graph = generators.path(4)
        good = verify.expected_components(graph)
        bad = dict(good)
        bad[3] = 99
        with pytest.raises(verify.VerificationError):
            verify.check_components(graph, bad)

    def test_independent_set_rejects_adjacent_pair(self):
        graph = generators.path(3)
        with pytest.raises(verify.VerificationError):
            verify.check_independent_set(graph, {0: 1, 1: 1, 2: 2})

    def test_independent_set_rejects_non_maximal(self):
        graph = generators.path(3)
        with pytest.raises(verify.VerificationError):
            verify.check_independent_set(graph, {0: 2, 1: 2, 2: 1})

    def test_forest_rejects_cycle(self):
        graph = generators.cycle(4, weighted=True)
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        with pytest.raises(verify.VerificationError):
            verify.check_spanning_forest(graph, edges)

    def test_forest_rejects_overweight(self):
        graph = Graph.from_edge_list(
            3, [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 9.0]
        ).symmetrized()
        with pytest.raises(verify.VerificationError):
            verify.check_spanning_forest(graph, [(0, 2, 9.0), (0, 1, 1.0)])

    def test_forest_rejects_phantom_edge(self):
        graph = generators.path(4, weighted=True)
        with pytest.raises(verify.VerificationError):
            verify.check_spanning_forest(graph, [(0, 3, 0.5)])

    def test_cover_rejects_uncovered_edge(self):
        graph = generators.path(3)
        with pytest.raises(verify.VerificationError):
            verify.check_vertex_cover(graph, {0: True, 1: False, 2: False})

    def test_partition_rejects_missing_node(self):
        graph = generators.path(3)
        with pytest.raises(verify.VerificationError):
            verify.check_community_partition(graph, {0: 0, 1: 0})

    def test_partition_rejects_disconnected_community(self):
        graph = generators.path(4)
        with pytest.raises(verify.VerificationError):
            verify.check_community_partition(
                graph, {0: 0, 1: 1, 2: 1, 3: 0}, require_connected=True
            )

    def test_accepts_real_outputs(self):
        graph = generators.road_like(6, 4, seed=2, weighted=True)
        verify.check_components(graph, run(cc_sv, graph, policy="cvc").values)
        verify.check_independent_set(graph, run(mis, graph, policy="cvc").values)
        verify.check_spanning_forest(
            graph, run(boruvka_msf, graph, policy="cvc").extra["forest"]
        )
        verify.check_community_partition(
            graph, run(leiden, graph, hosts=2).values, require_connected=True
        )
        assert verify.partition_modularity(graph, run(leiden, graph, hosts=2).values) > 0
