"""Edge-case coverage for the run-equivalence checkers (``repro.verify``).

These are the gates the fault harness, the chaos CLI, and the async
engine's oracle comparison all ride on, so their corner semantics - NaN,
tolerance boundaries, multi-node reporting, per-map overrides - get
pinned explicitly here.
"""

from __future__ import annotations

import math

import pytest

from repro.verify import (
    VerificationError,
    check_equivalent_value_maps,
    check_equivalent_values,
)


class TestCheckEquivalentValues:
    def test_identical_values_pass(self):
        check_equivalent_values({0: 1, 1: "x"}, {0: 1, 1: "x"})

    def test_key_set_mismatch_names_both_sides(self):
        with pytest.raises(VerificationError, match="key sets differ"):
            check_equivalent_values({0: 1, 2: 1}, {0: 1, 1: 1})

    def test_nan_equals_nan(self):
        """NaN is a legitimate converged value; two NaNs must agree even
        though ``nan != nan``."""
        check_equivalent_values({0: math.nan}, {0: math.nan})
        check_equivalent_values({0: math.nan}, {0: float("nan")}, tolerance=1e-6)

    def test_nan_vs_number_fails_even_with_tolerance(self):
        """``abs(nan - x) > tol`` is False, so a naive tolerance check
        would silently accept NaN against any number - it must not."""
        with pytest.raises(VerificationError, match="diverge"):
            check_equivalent_values({0: math.nan}, {0: 1.0}, tolerance=1e9)
        with pytest.raises(VerificationError, match="diverge"):
            check_equivalent_values({0: 1.0}, {0: math.nan}, tolerance=1e9)

    def test_tolerance_boundary_is_inclusive(self):
        check_equivalent_values({0: 0.0}, {0: 1e-9}, tolerance=1e-9)

    def test_tolerance_exceeded_reports_the_tolerance(self):
        with pytest.raises(VerificationError, match="tolerance 1e-09"):
            check_equivalent_values({0: 1.0}, {0: 1.1}, tolerance=1e-9)

    def test_zero_tolerance_requires_exact_equality(self):
        with pytest.raises(VerificationError):
            check_equivalent_values({0: 1.0}, {0: 1.0 + 1e-12})

    def test_reports_every_diverging_node_with_count(self):
        """The report carries the divergence count and the first nodes -
        not just the first mismatch - so a shape (one node vs everywhere)
        is visible from the message alone."""
        expected = {n: 0 for n in range(10)}
        actual = {**expected, 1: 5, 3: 5, 7: 5}
        with pytest.raises(VerificationError) as excinfo:
            check_equivalent_values(expected, actual)
        message = str(excinfo.value)
        assert "3 of 10 nodes diverge" in message
        assert "node 1" in message and "node 3" in message and "node 7" in message

    def test_report_truncates_to_first_five_nodes(self):
        expected = {n: 0 for n in range(10)}
        actual = {n: 1 for n in range(10)}
        with pytest.raises(VerificationError) as excinfo:
            check_equivalent_values(expected, actual)
        message = str(excinfo.value)
        assert "10 of 10 nodes diverge" in message
        assert "node 4" in message and "node 5" not in message

    def test_map_name_prefixes_the_report(self):
        with pytest.raises(VerificationError, match="map 'rank'"):
            check_equivalent_values({0: 1}, {0: 2}, map_name="rank")


class TestCheckEquivalentValueMaps:
    def test_all_maps_equal_pass(self):
        maps = {"rank": {0: 1.0}, "label": {0: 3}}
        check_equivalent_value_maps(maps, {k: dict(v) for k, v in maps.items()})

    def test_map_set_mismatch(self):
        with pytest.raises(VerificationError, match="map sets differ"):
            check_equivalent_value_maps({"rank": {0: 1}}, {"label": {0: 1}})

    def test_reports_which_maps_diverged(self):
        expected = {"rank": {0: 1.0}, "label": {0: 3}, "dist": {0: 2.0}}
        actual = {"rank": {0: 9.0}, "label": {0: 3}, "dist": {0: 7.0}}
        with pytest.raises(VerificationError) as excinfo:
            check_equivalent_value_maps(expected, actual)
        message = str(excinfo.value)
        assert "2 map(s) diverge" in message
        assert "map 'rank'" in message and "map 'dist'" in message
        assert "map 'label'" not in message

    def test_per_map_tolerance_override(self):
        """`tolerances` loosens one map without loosening the others."""
        expected = {"rank": {0: 1.0}, "label": {0: 3}}
        actual = {"rank": {0: 1.0 + 1e-7}, "label": {0: 3}}
        check_equivalent_value_maps(expected, actual, tolerances={"rank": 1e-6})
        with pytest.raises(VerificationError, match="map 'rank'"):
            check_equivalent_value_maps(expected, actual, tolerances={"rank": 1e-9})

    def test_default_tolerance_applies_to_unlisted_maps(self):
        expected = {"rank": {0: 1.0}, "dist": {0: 2.0}}
        actual = {"rank": {0: 1.0 + 1e-8}, "dist": {0: 2.0 + 1e-8}}
        check_equivalent_value_maps(
            expected, actual, tolerance=1e-6, tolerances={"rank": 1e-7}
        )
        with pytest.raises(VerificationError, match="map 'dist'"):
            check_equivalent_value_maps(
                expected, actual, tolerance=1e-9, tolerances={"rank": 1e-7}
            )
