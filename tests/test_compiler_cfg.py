"""CFG and dominator tests, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.compiler.cfg import ENTRY, EXIT, build_cfg
from repro.compiler.dominators import (
    dominates,
    dominators_of,
    immediate_dominators,
    immediate_post_dominators,
)
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    ForEdges,
    If,
    MapRead,
    Var,
    stmts,
)
from repro.compiler.programs import cc_sv_hook, cc_sv_shortcut


def straight_line():
    return stmts(
        Assign("a", Const(1)),
        Assign("b", Var("a")),
        Assign("c", Var("b")),
    )


def branchy():
    return stmts(
        Assign("a", Const(1)),
        If(
            BinOp(">", Var("a"), Const(0)),
            stmts(Assign("b", Const(2))),
            stmts(Assign("b", Const(3))),
        ),
        Assign("c", Var("b")),
    )


def loopy():
    return stmts(
        MapRead("p", "m", ActiveNode()),
        ForEdges("e", stmts(MapRead("q", "m", EdgeDst("e")))),
        Assign("done", Const(True)),
    )


class TestCfgShape:
    def test_straight_line_is_a_chain(self):
        cfg = build_cfg(straight_line())
        assert cfg.num_nodes == 5  # entry, exit, 3 statements
        assert cfg.succ[ENTRY] == [2]
        assert cfg.succ[2] == [3]
        assert cfg.succ[4] == [EXIT]

    def test_if_branches_and_joins(self):
        cfg = build_cfg(branchy())
        if_node = next(
            n for n, s in enumerate(cfg.stmt_of) if isinstance(s, If)
        )
        assert len(cfg.succ[if_node]) == 2
        join = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, Assign) and s.var == "c"
        )
        preds = cfg.predecessors()[join]
        assert len(preds) == 2

    def test_if_without_else_falls_through(self):
        cfg = build_cfg(
            stmts(
                If(Const(True), stmts(Assign("x", Const(1)))),
                Assign("y", Const(2)),
            )
        )
        if_node = 2
        tail = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, Assign) and s.var == "y"
        )
        assert tail in cfg.succ[if_node] or any(
            tail in cfg.succ[m] for m in cfg.succ[if_node]
        )

    def test_for_edges_has_back_edge_and_exit(self):
        cfg = build_cfg(loopy())
        header = next(
            n for n, s in enumerate(cfg.stmt_of) if isinstance(s, ForEdges)
        )
        body = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, MapRead) and s.var == "q"
        )
        assert body in cfg.succ[header]
        assert header in cfg.succ[body]  # back edge
        after = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, Assign) and s.var == "done"
        )
        assert after in cfg.succ[header]

    def test_empty_body(self):
        cfg = build_cfg(stmts())
        assert cfg.succ[ENTRY] == [EXIT]


def to_networkx(cfg):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(cfg.num_nodes))
    for src, dsts in enumerate(cfg.succ):
        for dst in dsts:
            graph.add_edge(src, dst)
    return graph


BODIES = {
    "straight": straight_line(),
    "branchy": branchy(),
    "loopy": loopy(),
    "hook": cc_sv_hook().par_for.body,
    "shortcut": cc_sv_shortcut().par_for.body,
}


@pytest.mark.parametrize("body_name", sorted(BODIES))
class TestDominatorsAgainstNetworkx:
    def test_idom_matches_networkx(self, body_name):
        cfg = build_cfg(BODIES[body_name])
        ours = immediate_dominators(cfg)
        theirs = dict(nx.immediate_dominators(to_networkx(cfg), ENTRY))
        # normalize: both conventions include/exclude the root self-entry
        ours.pop(ENTRY, None)
        theirs.pop(ENTRY, None)
        assert ours == theirs

    def test_ipdom_matches_networkx_on_reverse(self, body_name):
        cfg = build_cfg(BODIES[body_name])
        ours = immediate_post_dominators(cfg)
        theirs = dict(nx.immediate_dominators(to_networkx(cfg).reverse(), EXIT))
        ours.pop(EXIT, None)
        theirs.pop(EXIT, None)
        assert ours == theirs


class TestDominanceQueries:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(branchy())
        idom = immediate_dominators(cfg)
        for node in range(cfg.num_nodes):
            assert dominates(idom, ENTRY, node)

    def test_branch_does_not_dominate_join(self):
        cfg = build_cfg(branchy())
        idom = immediate_dominators(cfg)
        then_node = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, Assign) and s.var == "b"
        )
        join = next(
            n
            for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, Assign) and s.var == "c"
        )
        assert not dominates(idom, then_node, join)

    def test_loop_header_dominates_body(self):
        cfg = build_cfg(loopy())
        idom = immediate_dominators(cfg)
        header = next(n for n, s in enumerate(cfg.stmt_of) if isinstance(s, ForEdges))
        body = next(
            n for n, s in enumerate(cfg.stmt_of)
            if isinstance(s, MapRead) and s.var == "q"
        )
        assert dominates(idom, header, body)

    def test_dominators_of_chain(self):
        cfg = build_cfg(straight_line())
        idom = immediate_dominators(cfg)
        last = 4
        chain = dominators_of(idom, last)
        assert chain == [3, 2, ENTRY]

    def test_hook_reads_ordered_by_dominance(self):
        """R1 (active read) dominates R2 (neighbor read) in hook - the
        ordering Section 5.1's transform relies on."""
        from repro.compiler.analysis import reads_in_dominance_order

        program = cc_sv_hook()
        reads = reads_in_dominance_order(program.par_for)
        assert [r.var for r in reads] == ["src_parent", "dst_parent"]

        cfg = build_cfg(program.par_for.body)
        idom = immediate_dominators(cfg)
        first = cfg.nodes_of(reads[0])[0]
        second = cfg.nodes_of(reads[1])[0]
        assert dominates(idom, first, second)
