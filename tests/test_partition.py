"""Partitioning tests: coverage, proxies, and structural invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.partition import POLICIES, partition
from repro.partition.base import balanced_node_blocks
from repro.partition.cartesian import grid_shape


def reassemble_edges(pgraph):
    """All edges across all partitions, translated back to global ids."""
    edges = []
    for part in pgraph.parts:
        for local_src in range(part.num_local):
            for local_dst in part.neighbors(local_src):
                edges.append(
                    (
                        int(part.local_to_global[local_src]),
                        int(part.local_to_global[local_dst]),
                    )
                )
    return sorted(edges)


GRAPHS = {
    "road": generators.road_like(6, 4, seed=0),
    "powerlaw": generators.powerlaw_like(6, seed=1),
    "star": generators.star(20),
}


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("num_hosts", [1, 2, 4, 6])
class TestEveryPolicy:
    def test_every_edge_exactly_once(self, policy, graph_name, num_hosts):
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        assert reassemble_edges(pgraph) == sorted(graph.iter_edges())

    def test_every_node_has_one_master(self, policy, graph_name, num_hosts):
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        seen = np.zeros(graph.num_nodes, dtype=int)
        for part in pgraph.parts:
            for master in part.masters_global:
                seen[master] += 1
        assert np.all(seen == 1)

    def test_owner_array_matches_masters(self, policy, graph_name, num_hosts):
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        for part in pgraph.parts:
            assert np.all(pgraph.owner[part.masters_global] == part.host_id)
            mirrors = part.mirrors_global
            if mirrors.size:
                assert np.all(pgraph.owner[mirrors] != part.host_id)

    def test_masters_precede_mirrors_and_sorted(self, policy, graph_name, num_hosts):
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        for part in pgraph.parts:
            masters = part.masters_global
            mirrors = part.mirrors_global
            assert np.all(np.diff(masters) > 0) if masters.size > 1 else True
            assert np.all(np.diff(mirrors) > 0) if mirrors.size > 1 else True

    def test_masters_contiguous_global_range(self, policy, graph_name, num_hosts):
        """The blocked policies give contiguous master ranges - the property
        GAR's O(1) master translation relies on."""
        graph = GRAPHS[graph_name]
        pgraph = partition(graph, num_hosts, policy)
        for part in pgraph.parts:
            masters = part.masters_global
            if masters.size > 1:
                assert masters[-1] - masters[0] + 1 == masters.size


class TestStructuralInvariants:
    def test_oec_mirrors_have_no_outgoing_edges(self):
        pgraph = partition(GRAPHS["powerlaw"], 4, "oec")
        assert not pgraph.any_mirror_has_outgoing

    def test_iec_mirrors_have_no_incoming_edges(self):
        pgraph = partition(GRAPHS["powerlaw"], 4, "iec")
        assert not pgraph.any_mirror_has_incoming

    def test_cvc_grid_shape(self):
        assert grid_shape(1) == (1, 1)
        assert grid_shape(4) == (2, 2)
        assert grid_shape(6) == (2, 3)
        assert grid_shape(8) == (2, 4)
        assert grid_shape(16) == (4, 4)
        assert grid_shape(7) == (1, 7)

    def test_cvc_bounds_fanout(self):
        """Under CVC a node's proxies live only in its owner's grid row and
        column, bounding replication by pr + pc - 1."""
        graph = GRAPHS["powerlaw"]
        pgraph = partition(graph, 4, "cvc")
        rows, cols = grid_shape(4)
        proxies = np.zeros(graph.num_nodes, dtype=int)
        for part in pgraph.parts:
            proxies[part.local_to_global] += 1
        assert proxies.max() <= rows + cols - 1

    def test_single_host_has_no_mirrors(self):
        for policy in POLICIES:
            pgraph = partition(GRAPHS["road"], 1, policy)
            assert pgraph.total_mirrors() == 0
            assert pgraph.replication_factor() == 1.0

    def test_replication_factor_grows_with_hosts(self):
        graph = GRAPHS["powerlaw"]
        small = partition(graph, 2, "oec").replication_factor()
        large = partition(graph, 6, "oec").replication_factor()
        assert large >= small


class TestBalancedBlocks:
    def test_uniform_degrees_split_evenly(self):
        graph = generators.cycle(12)
        blocks = balanced_node_blocks(graph, 4)
        sizes = np.bincount(blocks, minlength=4)
        assert sizes.tolist() == [3, 3, 3, 3]

    def test_blocks_are_contiguous_and_monotone(self):
        graph = generators.powerlaw_like(7, seed=0)
        blocks = balanced_node_blocks(graph, 5)
        assert np.all(np.diff(blocks) >= 0)
        assert blocks.max() < 5

    def test_edge_balance_beats_node_balance_on_skew(self):
        graph = generators.star(100)
        blocks = balanced_node_blocks(graph, 2)
        degrees = graph.out_degrees() + 1
        load = [degrees[blocks == b].sum() for b in (0, 1)]
        assert max(load) / max(min(load), 1) < 3

    @given(st.integers(2, 40), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_every_node_gets_a_valid_block(self, num_nodes, num_blocks):
        graph = generators.cycle(num_nodes)
        blocks = balanced_node_blocks(graph, num_blocks)
        assert blocks.shape == (num_nodes,)
        assert blocks.min() >= 0
        assert blocks.max() < num_blocks


class TestFanOut:
    def test_mirror_hosts_by_owner_covers_all_mirrors(self):
        pgraph = partition(GRAPHS["powerlaw"], 4, "cvc")
        recorded = {
            (mirror_host, int(g))
            for owner in range(4)
            for mirror_host, ids in pgraph.mirror_hosts_by_owner[owner]
            for g in ids
        }
        expected = {
            (part.host_id, int(g))
            for part in pgraph.parts
            for g in part.mirrors_global
        }
        assert recorded == expected

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            partition(GRAPHS["road"], 2, "nope")

    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError):
            partition(GRAPHS["road"], 0, "oec")
