"""Interpreter statement coverage: MapSet, EdgeWeight, nested control flow."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.compiler.compile import compile_program
from repro.compiler.interp import run_compiled, run_round
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    EdgeWeight,
    ForEdges,
    If,
    KimbapWhile,
    MapRead,
    MapReduce,
    ParFor,
    Var,
    stmts,
)
from repro.core import MIN, SUM, NodePropMap
from repro.graph import generators
from repro.partition import partition


def make_setting(weighted=False, hosts=2):
    graph = generators.path(6, weighted=weighted)
    pgraph = partition(graph, hosts, "oec")
    cluster = Cluster(hosts, threads_per_host=2)
    return graph, pgraph, cluster


class TestEdgeWeightInPrograms:
    def test_weighted_degree_program(self):
        """Sum of incident edge weights via EdgeWeight - a one-round program."""
        graph, pgraph, cluster = make_setting(weighted=True)
        strength = NodePropMap(cluster, pgraph, "strength")
        strength.set_initial(lambda node: 0.0)
        program = KimbapWhile(
            ("strength",),
            ParFor(
                stmts(
                    ForEdges(
                        "edge",
                        stmts(
                            MapReduce(
                                "strength",
                                ActiveNode(),
                                EdgeWeight("edge"),
                                SUM,
                            )
                        ),
                    )
                )
            ),
            name="strength",
        )
        loop = compile_program(program)
        # one productive round; the quiescence round re-adds, so run a
        # single round manually
        run_round(loop, cluster, pgraph, {"strength": strength})
        snapshot = strength.snapshot()
        expected = {}
        for node in graph.nodes():
            expected[node] = sum(
                graph.edge_weight(e) for e in graph.edge_range(node)
            )
        for node, value in expected.items():
            assert snapshot[node] == pytest.approx(value)


class TestNestedControlFlow:
    def test_if_inside_for_edges_inside_if(self):
        graph, pgraph, cluster = make_setting()
        flag = NodePropMap(cluster, pgraph, "flag")
        out = NodePropMap(cluster, pgraph, "out")
        flag.set_initial(lambda node: node % 2)
        out.set_initial(lambda node: 999)
        # odd nodes propagate their id to smaller-id neighbors only
        program = KimbapWhile(
            ("out",),
            ParFor(
                stmts(
                    MapRead("my_flag", "flag", ActiveNode()),
                    If(
                        BinOp("==", Var("my_flag"), Const(1)),
                        stmts(
                            ForEdges(
                                "edge",
                                stmts(
                                    If(
                                        BinOp("<", EdgeDst("edge"), ActiveNode()),
                                        stmts(
                                            MapReduce(
                                                "out",
                                                EdgeDst("edge"),
                                                ActiveNode(),
                                                MIN,
                                            )
                                        ),
                                    )
                                ),
                            )
                        ),
                    ),
                )
            ),
            name="nested",
        )
        loop = compile_program(program)
        run_compiled(loop, cluster, pgraph, {"flag": flag, "out": out})
        snapshot = out.snapshot()
        # node k receives k+1 iff k+1 is odd and k < k+1: even k get k+1
        for node in range(5):
            if (node + 1) % 2 == 1:
                assert snapshot[node] == node + 1
            else:
                assert snapshot[node] == 999

    def test_assign_chains_evaluate_in_order(self):
        graph, pgraph, cluster = make_setting()
        out = NodePropMap(cluster, pgraph, "out")
        out.set_initial(lambda node: 10_000)
        program = KimbapWhile(
            ("out",),
            ParFor(
                stmts(
                    Assign("a", BinOp("*", ActiveNode(), Const(2))),
                    Assign("b", BinOp("+", Var("a"), Const(1))),
                    Assign("a", BinOp("+", Var("b"), Var("a"))),  # reassignment
                    MapReduce("out", ActiveNode(), Var("a"), MIN),
                )
            ),
            name="chain",
        )
        run_compiled(compile_program(program), cluster, pgraph, {"out": out})
        snapshot = out.snapshot()
        for node in range(graph.num_nodes):
            assert snapshot[node] == 2 * node + (2 * node + 1)
