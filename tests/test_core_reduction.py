"""Tests for the three reduction strategies (CF / shared-map / KV-CAS)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.reducers import MIN, SUM
from repro.core.reduction import (
    KvCasReduction,
    SharedMapReduction,
    ThreadLocalReduction,
)
from repro.kvstore import KvClient


class TestThreadLocal:
    def test_no_conflicts_by_construction(self):
        cluster = Cluster(1, threads_per_host=4)
        reduction = ThreadLocalReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(4):
                for _ in range(10):
                    reduction.reduce(thread, 7, thread, MIN)
        assert cluster.log.total_counters().cas_conflicts == 0
        assert cluster.log.total_counters().cas_attempts == 0

    def test_collect_combines_across_threads(self):
        cluster = Cluster(1, threads_per_host=4)
        reduction = ThreadLocalReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reduction.reduce(0, 1, 10, MIN)
            reduction.reduce(1, 1, 3, MIN)
            reduction.reduce(2, 1, 7, MIN)
            reduction.reduce(3, 2, 99, MIN)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            combined = reduction.collect(MIN)
        assert combined == {1: 3, 2: 99}

    def test_collect_clears_maps(self):
        cluster = Cluster(1, threads_per_host=2)
        reduction = ThreadLocalReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reduction.reduce(0, 1, 1, SUM)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            reduction.collect(SUM)
            assert reduction.collect(SUM) == {}
        assert reduction.pending() == 0

    def test_combine_cost_charged_at_collect(self):
        cluster = Cluster(1, threads_per_host=2)
        reduction = ThreadLocalReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reduction.reduce(0, 1, 1, SUM)
            reduction.reduce(1, 1, 1, SUM)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            reduction.collect(SUM)
        # combining is communication-side work (the paper's CF overhead)
        sync = cluster.log.phases[-1]
        assert sync.counters[0].combine_ops > 0


class TestSharedMap:
    def test_same_thread_never_conflicts(self):
        cluster = Cluster(1, threads_per_host=4)
        reduction = SharedMapReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for _ in range(20):
                reduction.reduce(0, 5, 1, SUM)
        assert cluster.log.total_counters().cas_conflicts == 0

    def test_cross_thread_same_key_conflicts(self):
        cluster = Cluster(1, threads_per_host=4)
        reduction = SharedMapReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(4):
                for _ in range(5):
                    reduction.reduce(thread, 5, 1, SUM)
        counters = cluster.log.total_counters()
        assert counters.cas_attempts == 20
        # same-key contention: everything after the first thread's run
        # (15 updates), plus the structural map contention on every other
        # write once a second thread appears (writes 6,8,...,20 -> 8)
        assert counters.cas_conflicts == 15 + 8

    def test_distinct_keys_pay_only_structural_contention(self):
        """Distinct keys avoid slot conflicts but still contend on the
        shared map's internals once several threads write it."""
        cluster = Cluster(1, threads_per_host=4)
        reduction = SharedMapReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(4):
                reduction.reduce(thread, thread, 1, SUM)
        counters = cluster.log.total_counters()
        # no same-key conflicts; structural: writes 2 and 4 collide
        assert counters.cas_conflicts == 2

    def test_single_thread_never_conflicts(self):
        cluster = Cluster(1, threads_per_host=4)
        reduction = SharedMapReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for key in range(10):
                reduction.reduce(0, key, 1, SUM)
        assert cluster.log.total_counters().cas_conflicts == 0

    def test_collect_returns_combined_values(self):
        cluster = Cluster(1, threads_per_host=2)
        reduction = SharedMapReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reduction.reduce(0, 1, 4, MIN)
            reduction.reduce(1, 1, 2, MIN)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            assert reduction.collect(MIN) == {1: 2}
            assert reduction.collect(MIN) == {}

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_thread_local(self, stream):
        """Conflict accounting must not change values: shared-map and CF
        reductions are semantically identical."""
        cluster = Cluster(1, threads_per_host=4)
        shared = SharedMapReduction(cluster, 0)
        local = ThreadLocalReduction(cluster, 0)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread, key in stream:
                shared.reduce(thread, key, thread * key, SUM)
                local.reduce(thread, key, thread * key, SUM)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            assert shared.collect(SUM) == local.collect(SUM)


class TestKvCas:
    def make(self):
        cluster = Cluster(2, threads_per_host=2)
        client = KvClient(cluster)
        changed: list[int] = []
        writers: dict = {}
        reductions = [
            KvCasReduction(
                cluster, host, client, lambda k: f"t:{k}", writers, changed.append
            )
            for host in range(2)
        ]
        return cluster, client, reductions, changed

    def test_reduce_applies_immediately(self):
        cluster, client, reductions, changed = self.make()
        with cluster.phase(PhaseKind.INIT):
            client.set(0, "t:1", 100)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reductions[0].reduce(0, 1, 7, MIN)
        assert client.servers[client.server_of("t:1")].get("t:1")[0] == 7
        assert changed == [1]

    def test_missing_key_created(self):
        cluster, client, reductions, changed = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reductions[0].reduce(0, 9, 42, MIN)
        assert client.servers[client.server_of("t:9")].get("t:9")[0] == 42

    def test_no_change_not_reported(self):
        cluster, client, reductions, changed = self.make()
        with cluster.phase(PhaseKind.INIT):
            client.set(0, "t:1", 5)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reductions[0].reduce(0, 1, 50, MIN)
        assert changed == []

    def test_concurrent_writers_pay_retries(self):
        cluster, client, reductions, _ = self.make()
        with cluster.phase(PhaseKind.INIT):
            client.set(0, "t:3", 100)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reductions[0].reduce(0, 3, 50, MIN)
            baseline = cluster.log.total_counters().cas_conflicts
            reductions[1].reduce(0, 3, 40, MIN)  # second host, same key
            reductions[1].reduce(1, 3, 30, MIN)  # third writer
        counters = cluster.log.total_counters()
        assert counters.cas_conflicts > baseline
        # retries are capped so hubs do not go quadratic
        from repro.core.reduction import KV_RETRY_CAP

        assert counters.cas_conflicts <= 3 * KV_RETRY_CAP

    def test_collect_is_noop_and_clears_writers(self):
        cluster, client, reductions, _ = self.make()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            reductions[0].reduce(0, 3, 50, MIN)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            assert reductions[0].collect(MIN) == {}
        # a later round starts with a clean contention slate
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            before = cluster.log.total_counters().cas_conflicts
            reductions[0].reduce(0, 3, 20, MIN)
            assert cluster.log.total_counters().cas_conflicts == before
