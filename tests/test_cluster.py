"""Tests for the simulated cluster: phases, thread dealing, network, cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, CostModel, ModeledTime
from repro.cluster.cluster import static_thread
from repro.cluster.metrics import Counters, PhaseKind


class TestStaticThread:
    def test_covers_all_threads(self):
        threads = {static_thread(i, 100, 4) for i in range(100)}
        assert threads == {0, 1, 2, 3}

    def test_chunked_and_monotone(self):
        assignments = [static_thread(i, 12, 3) for i in range(12)]
        assert assignments == sorted(assignments)
        assert assignments.count(0) == 4

    def test_fewer_items_than_threads(self):
        assert static_thread(0, 1, 8) == 0

    def test_empty_total(self):
        assert static_thread(0, 0, 4) == 0

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            static_thread(5, 5, 2)

    @given(st.integers(1, 200), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_thread(self, total, threads):
        for index in range(0, total, max(total // 7, 1)):
            assert 0 <= static_thread(index, total, threads) < threads


class TestPhases:
    def test_phase_records_counters(self):
        cluster = Cluster(2, threads_per_host=4)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            cluster.counters(0).node_iters += 5
            cluster.counters(1).edge_iters += 3
        phase = cluster.log.phases[0]
        assert phase.counters[0].node_iters == 5
        assert phase.counters[1].edge_iters == 3

    def test_phases_do_not_nest(self):
        cluster = Cluster(1)
        with cluster.phase(PhaseKind.INIT):
            with pytest.raises(RuntimeError):
                with cluster.phase(PhaseKind.INIT):
                    pass

    def test_counters_outside_phase_raises(self):
        cluster = Cluster(1)
        with pytest.raises(RuntimeError):
            cluster.counters(0)

    def test_network_outside_phase_raises(self):
        cluster = Cluster(2)
        with pytest.raises(RuntimeError):
            cluster.network.send(0, 1, 8)

    def test_reset_clears_log(self):
        cluster = Cluster(1)
        with cluster.phase(PhaseKind.INIT):
            cluster.counters(0).local_ops += 1
        cluster.reset()
        assert cluster.log.phases == []

    def test_reset_inside_phase_rejected(self):
        cluster = Cluster(1)
        with cluster.phase(PhaseKind.INIT):
            with pytest.raises(RuntimeError):
                cluster.reset()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(1, threads_per_host=0)


class TestNetwork:
    def test_self_send_is_free(self):
        cluster = Cluster(2)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.send(0, 0, 1000)
        phase = cluster.log.phases[0]
        assert sum(phase.msgs_sent) == 0

    def test_send_records_both_sides(self):
        cluster = Cluster(3)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.send(0, 2, 64)
        phase = cluster.log.phases[0]
        assert phase.msgs_sent[0] == 1
        assert phase.bytes_sent[0] == 64
        assert phase.msgs_recv[2] == 1
        assert phase.bytes_recv[2] == 64

    def test_allreduce_is_a_ring(self):
        cluster = Cluster(4)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.allreduce(1)
        phase = cluster.log.phases[0]
        assert sum(phase.msgs_sent) == 4

    def test_allreduce_single_host_free(self):
        cluster = Cluster(1)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.allreduce(1)
        assert sum(cluster.log.phases[0].msgs_sent) == 0


class TestCostModel:
    def test_parallel_phase_divided_by_threads(self):
        cluster = Cluster(1, threads_per_host=10)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            cluster.counters(0).local_ops += 100
        serial = Cluster(1, threads_per_host=1)
        with serial.phase(PhaseKind.REDUCE_COMPUTE):
            serial.counters(0).local_ops += 100
        assert cluster.elapsed().computation * 10 == pytest.approx(
            serial.elapsed().computation
        )

    def test_serial_phase_not_divided(self):
        cluster = Cluster(1, threads_per_host=10)
        with cluster.phase(PhaseKind.SERIAL, parallel=False):
            cluster.counters(0).local_ops += 100
        serial = Cluster(1, threads_per_host=1)
        with serial.phase(PhaseKind.SERIAL, parallel=False):
            serial.counters(0).local_ops += 100
        assert cluster.elapsed().total == pytest.approx(serial.elapsed().total)

    def test_bsp_barrier_takes_max_over_hosts(self):
        cluster = Cluster(2, threads_per_host=1)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            cluster.counters(0).local_ops += 10
            cluster.counters(1).local_ops += 1000
        lone = Cluster(1, threads_per_host=1)
        with lone.phase(PhaseKind.REDUCE_COMPUTE):
            lone.counters(0).local_ops += 1000
        assert cluster.elapsed().computation == pytest.approx(lone.elapsed().computation)

    def test_sync_phase_counts_as_communication(self):
        cluster = Cluster(2)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.counters(0).local_ops += 10
            cluster.network.send(0, 1, 100)
        elapsed = cluster.elapsed()
        assert elapsed.computation == 0
        assert elapsed.communication > 0

    def test_conflicts_cost_more_than_clean_reduces(self):
        model = CostModel()
        clean = Counters(reduce_calls=100)
        contended = Counters(cas_attempts=100, cas_conflicts=100)
        assert model.units(contended) > model.units(clean)

    def test_modeled_time_addition(self):
        total = ModeledTime(1.0, 2.0) + ModeledTime(0.5, 0.25)
        assert total.computation == 1.5
        assert total.communication == 2.25
        assert total.total == 3.75

    def test_time_by_kind_partitions_total(self):
        cluster = Cluster(2)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            cluster.counters(0).local_ops += 50
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.send(0, 1, 10)
        by_kind = cluster.elapsed_by_kind()
        total = sum((t for t in by_kind.values()), ModeledTime(0.0, 0.0))
        assert total.total == pytest.approx(cluster.elapsed().total)


class TestCounters:
    def test_add_accumulates_all_fields(self):
        first = Counters(node_iters=1, cas_conflicts=2)
        second = Counters(node_iters=3, hash_probes=4)
        first.add(second)
        assert first.node_iters == 4
        assert first.cas_conflicts == 2
        assert first.hash_probes == 4

    def test_as_dict_covers_weights(self):
        """Every counter field must have a cost-model weight."""
        from repro.cluster.costmodel import DEFAULT_WEIGHTS

        assert set(Counters().as_dict()) == set(DEFAULT_WEIGHTS)

    def test_total_messages_and_bytes(self):
        cluster = Cluster(2)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            cluster.network.send(0, 1, 100)
            cluster.network.send(1, 0, 50)
        assert cluster.log.total_messages() == 2
        assert cluster.log.total_bytes() == 150
