"""Unit and property tests for the CSR graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, generators


def small_edge_lists(max_nodes: int = 12, max_edges: int = 40):
    return st.integers(2, max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_from_edge_list_basic(self):
        graph = Graph.from_edge_list(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert list(graph.neighbors(0)) == [1, 2]
        assert list(graph.neighbors(1)) == [2]
        assert list(graph.neighbors(2)) == []

    def test_empty_graph(self):
        graph = Graph.from_edge_list(5, [])
        assert graph.num_nodes == 5
        assert graph.num_edges == 0
        assert graph.max_degree() == 0

    def test_weights_follow_edges(self):
        graph = Graph.from_edge_list(3, [(1, 2), (0, 1)], weights=[5.0, 7.0])
        assert graph.edge_weight(graph.edge_range(0)[0]) == 7.0
        assert graph.edge_weight(graph.edge_range(1)[0]) == 5.0

    def test_rejects_out_of_range_source(self):
        with pytest.raises(ValueError):
            Graph.from_edge_list(2, [(2, 0)])

    def test_rejects_out_of_range_destination(self):
        with pytest.raises(ValueError):
            Graph.from_edge_list(2, [(0, 5)])

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            Graph.from_edge_list(2, [(0, 1)], weights=[1.0, 2.0])

    def test_unweighted_edge_weight_is_one(self):
        graph = Graph.from_edge_list(2, [(0, 1)])
        assert graph.edge_weight(0) == 1.0


class TestAccessors:
    def test_edge_sources_expand_indptr(self):
        graph = Graph.from_edge_list(4, [(0, 1), (0, 2), (2, 3)])
        assert graph.edge_sources().tolist() == [0, 0, 2]

    def test_degrees(self):
        graph = Graph.from_edge_list(3, [(0, 1), (0, 2), (1, 0)])
        assert graph.degree(0) == 2
        assert graph.degree(1) == 1
        assert graph.degree(2) == 0
        assert graph.out_degrees().tolist() == [2, 1, 0]
        assert graph.max_degree() == 2

    def test_iter_edges(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = Graph.from_edge_list(3, edges)
        assert sorted(graph.iter_edges()) == sorted(edges)


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        graph = Graph.from_edge_list(3, [(0, 1), (1, 2)]).symmetrized()
        assert sorted(graph.iter_edges()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_is_idempotent(self):
        graph = Graph.from_edge_list(4, [(0, 1), (1, 2), (3, 0)]).symmetrized()
        again = graph.symmetrized()
        assert sorted(graph.iter_edges()) == sorted(again.iter_edges())

    def test_deduplicates(self):
        graph = Graph.from_edge_list(2, [(0, 1), (0, 1), (1, 0)]).symmetrized()
        assert graph.num_edges == 2

    def test_weighted_symmetrize_keeps_max(self):
        graph = Graph.from_edge_list(2, [(0, 1), (1, 0)], weights=[3.0, 9.0])
        sym = graph.symmetrized()
        assert sym.num_edges == 2
        assert all(w == 9.0 for w in sym.weights)

    def test_is_symmetric_detects(self):
        assert not Graph.from_edge_list(2, [(0, 1)]).is_symmetric()
        assert Graph.from_edge_list(2, [(0, 1), (1, 0)]).is_symmetric()

    @given(small_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_symmetrized_is_symmetric(self, spec):
        num_nodes, edges = spec
        sym = Graph.from_edge_list(num_nodes, edges).symmetrized()
        assert sym.is_symmetric()

    @given(small_edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_symmetrized_contains_original_non_loops(self, spec):
        num_nodes, edges = spec
        sym = Graph.from_edge_list(num_nodes, edges).symmetrized()
        present = set(sym.iter_edges())
        for src, dst in edges:
            assert (src, dst) in present

    def test_without_self_loops(self):
        graph = Graph.from_edge_list(3, [(0, 0), (0, 1), (1, 1)]).without_self_loops()
        assert sorted(graph.iter_edges()) == [(0, 1)]


class TestInterop:
    def test_to_networkx_roundtrip(self):
        graph = generators.powerlaw_like(5, seed=0)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_nodes
        assert nx_graph.number_of_edges() == graph.num_edges

    def test_to_networkx_weights(self):
        graph = Graph.from_edge_list(2, [(0, 1)], weights=[2.5])
        nx_graph = graph.to_networkx()
        assert nx_graph[0][1]["weight"] == 2.5
