"""Backend contract suite: ``can_read`` <-> ``read`` parity and metering.

Regression tests for the four metering/contract bugs (pinned-but-unbroadcast
mirrors, unmetered readability checks, double-counted read statistics,
unstable duplicate-key materialization) plus a hypothesis model test driving
``GarHostStore`` (both remote layouts) and ``HashHostStore`` through
identical op sequences.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.costmodel import DEFAULT_WEIGHTS
from repro.cluster.metrics import STATISTIC_FIELDS, Counters, PhaseKind
from repro.core.backends import GarHostStore, HashHostStore
from repro.graph import generators
from repro.partition import partition

NUM_HOSTS = 3


def make_setup():
    graph = generators.road_like(6, 4, seed=0)
    pgraph = partition(graph, NUM_HOSTS, "oec")
    cluster = Cluster(NUM_HOSTS, threads_per_host=4)
    return graph, pgraph, cluster


def mirror_host(pgraph):
    return next(p for p in pgraph.parts if p.num_mirrors).host_id


class TestPinnedUnbroadcastMirror:
    """Bug 1: can_read said True for a pinned mirror with no value."""

    def test_unbroadcast_mirror_is_not_readable(self):
        _, pgraph, cluster = make_setup()
        host = mirror_host(pgraph)
        store = GarHostStore(cluster, pgraph, host)
        mirror = int(pgraph.parts[host].mirrors_global[0])
        store.pin()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert not store.can_read(mirror)
            with pytest.raises(KeyError):
                store.read(mirror)

    def test_broadcast_mirror_becomes_readable(self):
        _, pgraph, cluster = make_setup()
        host = mirror_host(pgraph)
        store = GarHostStore(cluster, pgraph, host)
        mirror = int(pgraph.parts[host].mirrors_global[0])
        store.pin()
        with cluster.phase(PhaseKind.BROADCAST_SYNC):
            store.write_mirror(mirror, 11)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.can_read(mirror)
            assert store.read(mirror) == 11

    @pytest.mark.parametrize("layout", ["sorted", "hash"])
    def test_unbroadcast_mirror_falls_through_to_remote_cache(self, layout):
        # The key may still have been requested this round: both can_read
        # and read must consult the remote cache behind the empty mirror.
        _, pgraph, cluster = make_setup()
        host = mirror_host(pgraph)
        store = GarHostStore(cluster, pgraph, host, remote_layout=layout)
        mirror = int(pgraph.parts[host].mirrors_global[0])
        store.pin()
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array([mirror], dtype=np.int64), [7])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.can_read(mirror)
            assert store.read(mirror) == 7

    def test_uninitialized_master_is_not_readable(self):
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0)
        master = int(pgraph.parts[0].masters_global[0])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert not store.can_read(master)
            with pytest.raises(KeyError):
                store.read(master)
            store.write_master(master, 1)
            assert store.can_read(master)
            assert store.read(master) == 1


class TestCanReadMetering:
    """Bug 2: readability checks performed real probes but charged nothing."""

    def test_sorted_layout_charges_binsearch_steps(self):
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0, remote_layout="sorted")
        keys = [int(k) for k in pgraph.parts[1].masters_global[:4]]
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array(keys, dtype=np.int64), list(keys))
        expected = int(math.log2(len(keys))) + 1
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.can_read(keys[0])
        check_cost = cluster.log.phases[-1].counters[0].binsearch_steps
        assert check_cost == expected
        # ...and priced exactly like the read it guards.
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            store.read(keys[0])
        read_cost = cluster.log.phases[-1].counters[0].binsearch_steps
        assert check_cost == read_cost

    def test_hash_layout_charges_hash_probes(self):
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0, remote_layout="hash")
        key = int(pgraph.parts[1].masters_global[0])
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(np.array([key], dtype=np.int64), [5])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.can_read(key)
        counters = cluster.log.phases[-1].counters[0]
        assert counters.hash_probes == 1
        assert counters.binsearch_steps == 0

    def test_hash_store_charges_hash_probes(self):
        _, pgraph, cluster = make_setup()
        store = HashHostStore(cluster, pgraph, 1, NUM_HOSTS)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            store.can_read(4)
        assert cluster.log.phases[-1].counters[1].hash_probes == 1

    def test_checks_outside_a_phase_are_free_and_legal(self):
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[0].masters_global[0])
        assert not store.can_read(key)  # no phase open: must not raise
        assert not cluster.log.phases


class TestTotalEvents:
    """Bug 3: statistics mirrors double-counted every read."""

    def test_statistics_fields_excluded(self):
        counters = Counters(reads_master=3, reads_remote=4, vector_reads=7)
        assert counters.total_events() == 7

    def test_zero_weight_set_is_shared_with_cost_model(self):
        zero_weight = {name for name, w in DEFAULT_WEIGHTS.items() if w == 0.0}
        assert zero_weight == set(STATISTIC_FIELDS)

    def test_all_priced_fields_still_counted(self):
        counters = Counters(node_iters=1, edge_iters=2, hash_probes=3)
        assert counters.total_events() == 6


class TestDuplicateKeyMaterialize:
    """Bug 4: same-key ties within a batch resolved by unstable argsort."""

    @pytest.mark.parametrize("layout", ["sorted", "hash"])
    def test_last_value_wins_within_one_batch(self, layout):
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0, remote_layout=layout)
        k1 = int(pgraph.parts[1].masters_global[0])
        k2 = int(pgraph.parts[1].masters_global[1])
        keys = np.array([k1, k1, k2, k1], dtype=np.int64)
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(keys, ["a", "b", "c", "d"])
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.read(k1) == "d"
            assert store.read(k2) == "c"
        assert store.remote_cache_size == 2

    def test_last_wins_across_many_duplicates(self):
        # Enough duplicates that quicksort's tie order would be arbitrary.
        _, pgraph, cluster = make_setup()
        store = GarHostStore(cluster, pgraph, 0)
        key = int(pgraph.parts[1].masters_global[0])
        keys = np.array([key] * 64, dtype=np.int64)
        with cluster.phase(PhaseKind.REQUEST_SYNC):
            store.materialize_remote(keys, list(range(64)))
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            assert store.read(key) == 63
        assert store.remote_cache_size == 1


# --------------------------------------------------------------------------
# Hypothesis model: identical op sequences through all three backends.
# --------------------------------------------------------------------------

_GRAPH, _PGRAPH, _ = make_setup()
_HOST = mirror_host(_PGRAPH)
_MASTERS = [int(g) for g in _PGRAPH.parts[_HOST].masters_global]
_MIRRORS = [int(g) for g in _PGRAPH.parts[_HOST].mirrors_global]
_VALUES = st.integers(min_value=-100, max_value=100)

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("write_master"),
            st.integers(min_value=0, max_value=len(_MASTERS) - 1),
            _VALUES,
        ),
        st.tuples(
            st.just("materialize"),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=_GRAPH.num_nodes - 1),
                    _VALUES,
                ),
                min_size=1,
                max_size=8,
            ),
        ),
        st.tuples(st.just("drop")),
        st.tuples(st.just("pin")),
        st.tuples(st.just("unpin")),
        st.tuples(
            st.just("write_mirror"),
            st.integers(min_value=0, max_value=len(_MIRRORS) - 1),
            _VALUES,
        ),
    ),
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_backend_contract_parity(ops):
    """For every backend and every key: can_read(k) == (read(k) succeeds);
    the two GAR remote layouts agree on readability *and* values."""
    _, pgraph, cluster = make_setup()
    gar_sorted = GarHostStore(cluster, pgraph, _HOST, remote_layout="sorted")
    gar_hash = GarHostStore(cluster, pgraph, _HOST, remote_layout="hash")
    hash_store = HashHostStore(cluster, pgraph, _HOST, NUM_HOSTS)
    stores = (gar_sorted, gar_hash, hash_store)
    gar_stores = (gar_sorted, gar_hash)

    with cluster.phase(PhaseKind.REDUCE_COMPUTE):
        for op in ops:
            if op[0] == "write_master":
                key, value = _MASTERS[op[1]], op[2]
                for store in stores:
                    store.write_master(key, value)
            elif op[0] == "materialize":
                keys = np.array([k for k, _ in op[1]], dtype=np.int64)
                values = [v for _, v in op[1]]
                for store in stores:
                    store.materialize_remote(keys, values)
            elif op[0] == "drop":
                for store in stores:
                    store.drop_remote()
            elif op[0] == "pin":
                for store in stores:
                    store.pin()
            elif op[0] == "unpin":
                for store in stores:
                    store.unpin()
            elif op[0] == "write_mirror":
                key, value = _MIRRORS[op[1]], op[2]
                for store in gar_stores:  # no mirror slots without GAR
                    store.write_mirror(key, value)

        for key in range(pgraph.num_nodes):
            outcomes = []
            for store in stores:
                claimed = store.can_read(key)
                try:
                    value = store.read(key)
                    readable = True
                except KeyError:
                    value, readable = None, False
                assert claimed == readable, (
                    f"{type(store).__name__}/{getattr(store, 'remote_layout', '-')}"
                    f": can_read({key})={claimed} but read "
                    f"{'succeeded' if readable else 'raised'}"
                )
                outcomes.append((readable, value))
            # The two GAR layouts differ only in remote-cache representation:
            # identical ops must yield identical readability and values.
            assert outcomes[0] == outcomes[1]
