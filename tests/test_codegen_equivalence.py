"""The plan-to-kernel codegen stage's equivalence contract.

``repro.exec.codegen`` lowers a plan into prebound specialized kernels
and fuses adjacent compatible compute phases into single generated
kernels. The contract is the same byte-identity the bulk path already
promises: ``RunResult.to_dict()`` (counters, conflicts, modeled seconds,
trace rows) and final values of the generated path must match the
interpreted bulk path exactly - including under ``jobs=N`` sharding and
fault plans (where fusion is disabled but specialization must still
agree). These tests enforce the contract across all registered apps and
random graphs, pin down the fusion boundary rules on synthetic plans,
and check the prepared-fold fast path against the generic reduction.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN, SUM
from repro.core.reduction import ThreadLocalReduction
from repro.core.variants import RuntimeVariant
from repro.eval.harness import APP_WEIGHTED, KIMBAP_APPS, run_kimbap
from repro.exec import Executor, Operator, OperatorStep, Plan, SyncStep
from repro.exec.codegen import ENTRY_FUSED, ENTRY_OPERATOR, fusion_enabled
from repro.exec.plan import CmpFilter, EdgePush, NodeUpdate
from repro.faults import FaultPlan, HostCrash, install_faults
from repro.graph import generators
from repro.partition import partition

APPS = tuple(sorted(KIMBAP_APPS))


def app_weighted(app: str) -> bool:
    return APP_WEIGHTED.get(app, False)


def random_graph(seed: int, weighted: bool = False):
    kind = seed % 3
    if kind == 0:
        return generators.erdos_renyi(40, 3.0, seed=seed, weighted=weighted)
    if kind == 1:
        return generators.road_like(6, 5, seed=seed, weighted=weighted)
    return generators.rmat(5, 4, seed=seed, weighted=weighted)


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_codegen_identical(app, graph, hosts, threads=4, **kwargs):
    interpreted = run_kimbap(
        app, "equiv", hosts, graph=graph, threads=threads, bulk=True,
        codegen=False, **kwargs,
    )
    generated = run_kimbap(
        app, "equiv", hosts, graph=graph, threads=threads, bulk=True,
        codegen=True, **kwargs,
    )
    assert canonical(interpreted) == canonical(generated), (
        f"{app} hosts={hosts} {kwargs}: generated kernels diverged from "
        "the interpreted bulk path"
    )
    assert interpreted.values == generated.values


class TestCodegenByteIdentity:
    """Generated kernels vs interpreted bulk, whole-run byte-identity."""

    @pytest.mark.parametrize("app", APPS)
    def test_all_apps(self, app):
        graph = generators.powerlaw_like(scale=6, seed=3, weighted=app_weighted(app))
        assert_codegen_identical(app, graph, hosts=3)

    @given(
        seed=st.integers(min_value=0, max_value=60),
        hosts=st.sampled_from([1, 2, 4]),
        app=st.sampled_from(APPS),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed, hosts, app):
        graph = random_graph(seed, weighted=app_weighted(app))
        assert_codegen_identical(app, graph, hosts=hosts, threads=2)


class TestCodegenComposes:
    """Codegen x host-parallel sharding x fault plans x runtime variants."""

    @pytest.mark.parametrize("app", ("PR", "CC-LP", "SSSP"))
    def test_jobs_sharding(self, app):
        graph = generators.powerlaw_like(scale=6, seed=3, weighted=app_weighted(app))
        assert_codegen_identical(app, graph, hosts=4, jobs=2)

    def test_mc_variant_stays_identical_under_jobs(self):
        # The kvstore-backed MC variant keeps its sync collectives serial
        # (the pool.register_plan invariant); codegen must not disturb it.
        graph = generators.powerlaw_like(scale=6, seed=3)
        assert_codegen_identical(
            "CC-LP", graph, hosts=3, jobs=2, variant=RuntimeVariant.MC
        )

    @pytest.mark.parametrize("app", ("BFS", "PR"))
    def test_fault_plan_disables_fusion_still_identical(self, app):
        graph = generators.road_like(6, 5, seed=11, weighted=app_weighted(app))
        plan = FaultPlan(
            name="crash@2",
            checkpoint_interval=2,
            crashes=(HostCrash(host=1, round=2),),
        )
        faulted = run_kimbap(
            app, "equiv", 3, graph=graph, threads=4, bulk=True,
            fault_plan=plan,
        )
        assert faulted.outcome == "ok"
        assert faulted.faults["recoveries"] == 1
        assert_codegen_identical(app, graph, hosts=3, fault_plan=plan)


# ------------------------------------------------------ fusion boundaries


def _two_updates(cluster, pgraph, second_reads=()):
    a = NodePropMap(cluster, pgraph, "a")
    b = NodePropMap(cluster, pgraph, "b")
    steps = [
        OperatorStep(
            Operator(
                "fill_a", "masters",
                NodeUpdate(a, SUM, value=lambda nodes: nodes * 0.5),
            )
        ),
        OperatorStep(
            Operator(
                "fill_b", "masters",
                NodeUpdate(
                    b, MIN,
                    value=lambda nodes: nodes + 1.0,
                    read_names=second_reads,
                ),
            )
        ),
        SyncStep(a, "reduce"),
        SyncStep(b, "reduce"),
    ]
    plan = Plan(name="fusiontest", pgraph=pgraph, steps=steps, once=True)
    return plan, a, b


def _run_once(graph, codegen, second_reads=()):
    cluster = Cluster(2, threads_per_host=2)
    pgraph = partition(graph, 2, "cvc")
    executor = Executor(cluster, bulk=True, codegen=codegen)
    plan, a, b = _two_updates(cluster, pgraph, second_reads=second_reads)
    executor.init_map(a, lambda nodes: np.zeros(nodes.size))
    executor.init_map(b, lambda nodes: np.zeros(nodes.size))
    executor.run(plan)
    log = [
        (
            record.kind.value,
            record.label,
            record.operator,
            record.round,
            [counters.as_dict() for counters in record.counters],
        )
        for record in cluster.log.phases
    ]
    return cluster, a.snapshot(), b.snapshot(), log


class TestFusionBoundaries:
    @pytest.fixture(scope="class")
    def graph(self):
        return generators.powerlaw_like(scale=5, seed=3)

    def _compiled_tags(self, graph, bulk=True, codegen=None, faults=None,
                       second_reads=()):
        cluster = Cluster(2, threads_per_host=2)
        if faults is not None:
            install_faults(cluster, faults)
        pgraph = partition(graph, 2, "cvc")
        executor = Executor(cluster, bulk=bulk, codegen=codegen)
        plan, _, _ = _two_updates(cluster, pgraph, second_reads=second_reads)
        compiled = executor.compiled(plan)
        return compiled, [entry[0] for entry in compiled.entries]

    def test_adjacent_specializable_steps_fuse(self, graph):
        compiled, tags = self._compiled_tags(graph)
        assert tags.count(ENTRY_FUSED) == 1
        (group,) = compiled.fused_groups
        assert group.labels == ("fill_a", "fill_b")

    def test_read_after_write_hazard_blocks_fusion(self, graph):
        # fill_b declaring a read of map "a" (written by fill_a) must keep
        # the steps as two separate phases.
        _, tags = self._compiled_tags(graph, second_reads=("a",))
        assert ENTRY_FUSED not in tags
        assert tags.count(ENTRY_OPERATOR) == 2

    def test_fault_injector_disables_fusion(self, graph):
        _, tags = self._compiled_tags(
            graph, faults=FaultPlan(name="noop", checkpoint_interval=0)
        )
        assert ENTRY_FUSED not in tags
        assert tags.count(ENTRY_OPERATOR) == 2

    def test_scalar_backend_never_fuses(self, graph):
        cluster = Cluster(2, threads_per_host=2)
        executor = Executor(cluster, bulk=False)
        assert not fusion_enabled(executor)
        _, tags = self._compiled_tags(graph, bulk=False)
        assert ENTRY_FUSED not in tags

    def _push_then_fill(self, graph, with_active=False, **push_kwargs):
        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        executor = Executor(cluster, bulk=True)
        label = NodePropMap(cluster, pgraph, "label")
        out = NodePropMap(cluster, pgraph, "out")
        if with_active:
            push_kwargs["require_active"] = NodePropMap(
                cluster, pgraph, "active"
            )
        steps = [
            OperatorStep(
                Operator(
                    "push", "all",
                    EdgePush(target=out, op=MIN, source=label, **push_kwargs),
                )
            ),
            OperatorStep(
                Operator(
                    "fill", "masters",
                    NodeUpdate(out, MIN, value=lambda nodes: nodes + 0.0),
                )
            ),
        ]
        plan = Plan(name="mixed", pgraph=pgraph, steps=steps, once=True)
        compiled = executor.compiled(plan)
        return compiled, [entry[0] for entry in compiled.entries]

    def test_opaque_filter_push_breaks_the_group(self, graph):
        # An EdgePush with an opaque callable filter keeps its interpreted
        # body and must not join a fused group (the non-specializable
        # fallback the filter-spec migration preserves).
        _, tags = self._push_then_fill(
            graph, value_filter=lambda values: values > 0
        )
        assert ENTRY_FUSED not in tags
        assert tags.count(ENTRY_OPERATOR) == 2

    def test_frontier_push_specializes_and_fuses(self, graph):
        # Declarative filters are compiled, so a frontier push is now a
        # legal fusion constituent.
        compiled, tags = self._push_then_fill(graph, with_active=True)
        assert tags.count(ENTRY_FUSED) == 1
        (group,) = compiled.fused_groups
        assert group.labels == ("push", "fill")

    def test_fused_run_matches_interpreted_and_stamps_records(self, graph):
        _, a_cg, b_cg, log_cg = _run_once(graph, codegen=None)
        cluster, a_in, b_in, log_in = _run_once(graph, codegen=False)
        assert a_cg == a_in
        assert b_cg == b_in
        assert log_cg == log_in
        # Attribution: the fused constituents carry the group's labels on
        # their records under codegen, and None when interpreted.
        cg_cluster = _run_once(graph, codegen=None)[0]
        fused = [
            record.fused
            for record in cg_cluster.log.phases
            if record.label in ("fill_a", "fill_b")
        ]
        assert fused == [("fill_a", "fill_b"), ("fill_a", "fill_b")]
        interpreted = [
            record.fused
            for record in cluster.log.phases
            if record.label in ("fill_a", "fill_b")
        ]
        assert interpreted == [None, None]


# ------------------------------------------------------ frontier extremes


def _sssp_with_trace(graph, hosts=2, codegen=True, source=0):
    from repro.algorithms.sssp import sssp

    cluster = Cluster(hosts, threads_per_host=2)
    pgraph = partition(graph, hosts, "cvc")
    executor = Executor(cluster, bulk=True, codegen=codegen)
    result = sssp(cluster, pgraph, source=source, executor=executor)
    paths = [
        record.frontier
        for record in cluster.log.phases
        if record.frontier is not None
    ]
    return result, paths


class TestFrontierExtremes:
    """Frontier-aware kernels at the extremes - empty, full, and
    threshold-crossing active sets - stay byte-identical to interpreted
    bulk, and every executed round tapes the chosen gather path (dense /
    sparse / empty) into the phase trace."""

    @given(
        seed=st.integers(min_value=0, max_value=40),
        hosts=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=15, deadline=None)
    def test_sweep_byte_identity_and_path_taping(self, seed, hosts):
        graph = random_graph(seed, weighted=True)
        assert_codegen_identical("SSSP", graph, hosts=hosts, threads=2)
        _, paths = _sssp_with_trace(graph, hosts=hosts)
        assert paths, "compiled frontier kernels recorded no gather path"
        seen = {path for frontier in paths for path in frontier.values()}
        assert seen <= {"dense", "sparse", "empty"}

    def test_full_frontier_runs_dense(self):
        # Activity buffers start full, so CC-LP's first round pushes from
        # every candidate source: the dense mask path on every host.
        from repro.algorithms.cc_lp import cc_lp

        graph = generators.powerlaw_like(scale=6, seed=3)
        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        executor = Executor(cluster, bulk=True)
        cc_lp(cluster, pgraph, executor=executor)
        first = next(
            record.frontier
            for record in cluster.log.phases
            if record.frontier is not None
        )
        assert set(first.values()) == {"dense"}

    def test_empty_frontier_marks_empty(self):
        # A value filter nothing passes: the compiled kernel must charge
        # the static per-source work, then record an empty frontier.
        graph = generators.powerlaw_like(scale=5, seed=7)
        cluster = Cluster(2, threads_per_host=2)
        pgraph = partition(graph, 2, "cvc")
        executor = Executor(cluster, bulk=True)
        src = NodePropMap(cluster, pgraph, "src")
        out = NodePropMap(cluster, pgraph, "out")
        executor.init_map(src, lambda nodes: nodes + 0.0)
        executor.init_map(out, lambda nodes: nodes + 0.0)
        plan = Plan(
            name="nobody",
            pgraph=pgraph,
            once=True,
            steps=[
                OperatorStep(
                    Operator(
                        "push", "masters",
                        EdgePush(
                            target=out, op=MIN, source=src,
                            value_filter=CmpFilter("lt", -1.0),
                        ),
                    )
                ),
                SyncStep(out, "reduce"),
            ],
        )
        executor.run(plan)
        frontier = [
            record.frontier
            for record in cluster.log.phases
            if record.frontier is not None
        ]
        assert frontier
        assert all(set(f.values()) == {"empty"} for f in frontier)

    def test_density_crosses_switch_mid_run(self):
        # Single-source expansion on a power-law graph: round 1's
        # frontier is the lone source (sparse gather); within a few
        # rounds the wave covers most candidates (dense mask). Both
        # paths must appear in one run, still byte-identical.
        graph = generators.powerlaw_like(scale=7, seed=5, weighted=True)
        assert_codegen_identical("SSSP", graph, hosts=2)
        _, paths = _sssp_with_trace(graph, hosts=2)
        seen = {path for frontier in paths for path in frontier.values()}
        assert "sparse" in seen
        assert "dense" in seen


# -------------------------------------------------------- prepared folds


class TestPreparedFold:
    def _batch(self, seed):
        rng = np.random.default_rng(seed)
        count = 64
        threads = np.sort(rng.integers(0, 4, size=count))
        keys = rng.integers(0, 10, size=count)
        values = rng.standard_normal(count)
        return threads, keys, values

    @pytest.mark.parametrize("op", (SUM, MIN), ids=lambda o: o.name)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_prepared_matches_generic_fold(self, op, seed):
        threads, keys, values = self._batch(seed)
        cluster = Cluster(1, threads_per_host=4)
        generic = ThreadLocalReduction(cluster, 0)
        prepared_red = ThreadLocalReduction(cluster, 0)
        plan = prepared_red.prepare_bulk(threads, keys)
        from repro.cluster.metrics import PhaseKind

        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            generic.reduce_bulk(threads, keys, values, op)
            prepared_red.reduce_bulk_prepared(plan, values, op)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            assert generic.collect(op) == prepared_red.collect(op)

    def test_prepared_falls_back_on_pending_scalar_state(self):
        threads, keys, values = self._batch(7)
        cluster = Cluster(1, threads_per_host=4)
        generic = ThreadLocalReduction(cluster, 0)
        prepared_red = ThreadLocalReduction(cluster, 0)
        plan = prepared_red.prepare_bulk(threads, keys)
        from repro.cluster.metrics import PhaseKind

        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            # A scalar reduce before the batch: the prepared path must
            # take the generic fallback to fold in the right order.
            generic.reduce(0, int(keys[0]), 100.0, SUM)
            generic.reduce_bulk(threads, keys, values, SUM)
            prepared_red.reduce(0, int(keys[0]), 100.0, SUM)
            prepared_red.reduce_bulk_prepared(plan, values, SUM)
        with cluster.phase(PhaseKind.REDUCE_SYNC):
            assert generic.collect(SUM) == prepared_red.collect(SUM)

    def test_empty_batch_prepares_to_none(self):
        cluster = Cluster(1, threads_per_host=2)
        reduction = ThreadLocalReduction(cluster, 0)
        empty = np.array([], dtype=np.int64)
        assert reduction.prepare_bulk(empty, empty) is None

    def test_prepared_arrays_are_frozen(self):
        threads, keys, _ = self._batch(3)
        cluster = Cluster(1, threads_per_host=4)
        plan = ThreadLocalReduction(cluster, 0).prepare_bulk(threads, keys)
        for name in ("uniq", "first_idx", "rest", "inverse_rest", "last"):
            array = getattr(plan, name)
            with pytest.raises(ValueError):
                array[...] = 0
