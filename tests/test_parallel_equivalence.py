"""The host-parallel (``jobs=N``) execution path's equivalence contract.

The process-parallel backend (``repro.exec.pool``) promises the same
byte-identity the bulk path does: ``RunResult.to_dict()`` - every
counter, conflict count, modeled second, and trace row - plus the final
property values must match the ``jobs=1`` run exactly, for every
algorithm, on either kernel backend, and under fault injection. These
tests enforce that contract: all twelve applications at ``jobs=2``
(scalar and bulk), a hypothesis sweep over random graphs x ``jobs in
{1, 2, 4}`` x ``bulk in {False, True}``, and crash-mid-round recovery
equivalence under ``jobs=2``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.harness import APP_WEIGHTED, KIMBAP_APPS, run_kimbap
from repro.exec.pool import fork_available
from repro.faults import FaultPlan, HostCrash
from repro.graph import generators

APPS = tuple(sorted(KIMBAP_APPS))

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="host-parallel execution needs POSIX fork"
)


def app_weighted(app: str) -> bool:
    return APP_WEIGHTED.get(app, False)


def random_graph(seed: int, weighted: bool = False):
    kind = seed % 3
    if kind == 0:
        return generators.erdos_renyi(40, 3.0, seed=seed, weighted=weighted)
    if kind == 1:
        return generators.road_like(6, 5, seed=seed, weighted=weighted)
    return generators.rmat(5, 4, seed=seed, weighted=weighted)


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_jobs_equivalent(app, graph, hosts, jobs, bulk, **kwargs):
    serial = run_kimbap(
        app, "equiv", hosts, graph=graph, threads=4, bulk=bulk, **kwargs
    )
    parallel = run_kimbap(
        app, "equiv", hosts, graph=graph, threads=4, bulk=bulk, jobs=jobs, **kwargs
    )
    assert canonical(serial) == canonical(parallel), (
        f"{app} jobs={jobs} bulk={bulk}: RunResult.to_dict() diverged"
    )
    assert serial.values == parallel.values
    return serial, parallel


# ------------------------------------------------- all twelve applications


@needs_fork
@pytest.mark.parametrize("bulk", (False, True), ids=("scalar", "bulk"))
@pytest.mark.parametrize("app", APPS)
def test_every_app_identical_at_jobs2(app, bulk):
    graph = random_graph(3, weighted=app_weighted(app))
    assert_jobs_equivalent(app, graph, hosts=4, jobs=2, bulk=bulk)


@needs_fork
def test_jobs_beyond_hosts_degrades_to_available_shards():
    # jobs > num_hosts cannot shard finer than one host per process; the
    # pool clamps rather than erroring, and identity still holds.
    graph = random_graph(1)
    assert_jobs_equivalent("CC-SV", graph, hosts=2, jobs=4, bulk=False)


# ------------------------------------------------------- hypothesis sweep


@needs_fork
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    jobs=st.sampled_from((1, 2, 4)),
    bulk=st.booleans(),
)
def test_sweep_random_graphs_jobs_times_backend(seed, jobs, bulk):
    # Rotate through cheap, structurally distinct apps; the full registry
    # is covered by the deterministic jobs=2 matrix above.
    app = ("PR", "CC-SV", "BFS", "MIS", "K-CORE")[seed % 5]
    graph = random_graph(seed, weighted=app_weighted(app))
    assert_jobs_equivalent(app, graph, hosts=4, jobs=jobs, bulk=bulk)


# -------------------------------------------- fault recovery under jobs=2


@needs_fork
@pytest.mark.parametrize("app", ("PR", "CC-LP"))
def test_crash_mid_round_recovery_equivalence(app):
    """A host crash + checkpoint recovery replays identically on every
    process: the faulted parallel run matches the faulted serial run byte
    for byte, including the structured faults report."""
    graph = random_graph(3)
    plan = FaultPlan(
        name="crash@2",
        checkpoint_interval=2,
        crashes=(HostCrash(host=1, round=2),),
    )
    serial, parallel = assert_jobs_equivalent(
        app, graph, hosts=4, jobs=2, bulk=False, fault_plan=plan
    )
    assert serial.faults == parallel.faults
    assert serial.faults["recoveries"] >= 1


# ----------------------------------------------- warm pool reuse (jobs=N)


@needs_fork
@pytest.mark.parametrize("bulk", (False, True))
def test_warm_pool_reuse_is_byte_identical(bulk):
    """MSF issues a fresh plan per shortcut round; the plan registry lets
    the pool serve every round from one fork.  Warm replays must stay byte
    identical, and the run's parallel stats must show the reuse actually
    happened (one fork, >= 1 warm run) - otherwise the warm path silently
    regressed to fork-per-plan."""
    graph = random_graph(11, weighted=True)
    serial, parallel = assert_jobs_equivalent(
        "MSF", graph, hosts=4, jobs=2, bulk=bulk
    )
    stats = parallel.parallel
    assert stats is not None
    assert stats["forks"] == 1
    assert stats["warm_runs"] >= 1
    assert stats["bytes_exchanged"] > 0
    assert serial.parallel is None or serial.parallel["forks"] == 0


@needs_fork
def test_back_to_back_runs_are_deterministic():
    """Two cold pools over the same inputs produce the same bytes - the
    exchange protocol has no run-to-run nondeterminism (no leaked state
    in /dev/shm segment naming or slot reuse)."""
    graph = random_graph(12)
    first = run_kimbap("PR", "warm", 4, graph=graph, jobs=2, bulk=True)
    second = run_kimbap("PR", "warm", 4, graph=graph, jobs=2, bulk=True)
    assert canonical(first) == canonical(second)
