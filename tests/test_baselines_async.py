"""Tests for the rejected-asynchronous-execution baseline (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.algorithms import cc_lp
from repro.baselines import async_cc_lp
from repro.cluster import Cluster
from repro.graph import generators
from repro.partition import partition
from repro import verify

GRAPHS = {
    "road": generators.road_like(8, 4, seed=1),
    "powerlaw": generators.powerlaw_like(6, seed=3),
    "two_components": generators.disjoint_union(
        generators.path(6), generators.cycle(5)
    ),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("policy,hosts", [("cvc", 4), ("oec", 2), ("oec", 1)])
class TestAsyncCorrectness:
    def test_components_correct(self, graph_name, policy, hosts):
        graph = GRAPHS[graph_name]
        result = async_cc_lp(
            Cluster(hosts, threads_per_host=4), partition(graph, hosts, policy)
        )
        verify.check_components(graph, result.values)


class TestSection41Tradeoff:
    """The design-choice claims the module exists to demonstrate."""

    def run_pair(self, graph, hosts=4):
        # 48 threads per host, as on the paper's machines: asynchrony's
        # per-update messages don't parallelize, BSP's compute does
        bsp_cluster = Cluster(hosts, threads_per_host=48)
        bsp = cc_lp(bsp_cluster, partition(graph, hosts, "cvc"))
        async_cluster = Cluster(hosts, threads_per_host=48)
        asynchronous = async_cc_lp(async_cluster, partition(graph, hosts, "cvc"))
        return (bsp, bsp_cluster), (asynchronous, async_cluster)

    def test_async_converges_in_fewer_or_equal_rounds(self):
        (bsp, _), (asynchronous, _) = self.run_pair(GRAPHS["road"])
        assert asynchronous.rounds <= bsp.rounds

    def test_async_sends_many_more_messages(self):
        """"may generate a large number of messages ... duplicate
        messages" - per-update eager messaging vs one message per host
        pair per round."""
        (_, bsp_cluster), (_, async_cluster) = self.run_pair(GRAPHS["powerlaw"])
        assert (
            async_cluster.log.total_messages()
            > 3 * bsp_cluster.log.total_messages()
        )

    def test_async_pays_more_materialization(self):
        """"high materialization overheads" - every received update
        materializes individually."""
        (_, bsp_cluster), (_, async_cluster) = self.run_pair(GRAPHS["powerlaw"])
        assert (
            async_cluster.log.total_counters().materialize_ops
            > bsp_cluster.log.total_counters().materialize_ops
        )

    def test_bsp_wins_overall_at_scale(self):
        # the message-volume penalty needs a non-toy graph to dominate the
        # per-round barrier costs it saves
        graph = generators.powerlaw_like(9, seed=5)
        (_, bsp_cluster), (_, async_cluster) = self.run_pair(graph, hosts=8)
        assert bsp_cluster.elapsed().total < async_cluster.elapsed().total

    def test_same_answers(self):
        (bsp, _), (asynchronous, _) = self.run_pair(GRAPHS["two_components"])
        assert bsp.values == asynchronous.values
