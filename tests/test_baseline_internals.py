"""Deeper unit tests of baseline internals (Vite rounds, Galois slots)."""

from __future__ import annotations

import numpy as np

from repro.baselines.galois import _AtomicSlots, galois_cc_lp, galois_mis
from repro.baselines.vite import _vite_level, vite_louvain
from repro.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.graph import generators
from repro.partition import partition


class TestAtomicSlots:
    def test_light_regime_only_changing_cross_thread(self):
        cluster = Cluster(1, threads_per_host=4)
        slots = _AtomicSlots(cluster)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            slots.update(0, 5, changed=True)
            slots.update(1, 5, changed=False)  # benign: no conflict
            slots.update(1, 5, changed=True)  # cross-thread change: conflict
            slots.update(1, 5, changed=True)  # same thread again: none
        assert cluster.log.total_counters().cas_conflicts == 1

    def test_heavy_regime_charges_per_competitor(self):
        cluster = Cluster(1, threads_per_host=4)
        slots = _AtomicSlots(cluster, heavy=True)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            for thread in range(4):
                slots.update(thread, 9, changed=True)
        # competitors: 0 + 1 + 2 + 3
        assert cluster.log.total_counters().cas_conflicts == 6

    def test_new_sweep_resets(self):
        cluster = Cluster(1, threads_per_host=4)
        slots = _AtomicSlots(cluster)
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            slots.update(0, 1, changed=True)
            slots.new_sweep()
            slots.update(1, 1, changed=True)  # first writer of the new sweep
        assert cluster.log.total_counters().cas_conflicts == 0


class TestViteLevel:
    def test_level_converges_and_labels_valid(self):
        graph = generators.powerlaw_like(6, seed=1, weighted=True)
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=4)
        rng = np.random.default_rng(0)
        labels, rounds = _vite_level(
            cluster, pgraph, gamma=1.0, max_rounds=40,
            early_termination=False, rng=rng,
        )
        assert labels.shape == (graph.num_nodes,)
        assert rounds >= 1
        assert labels.min() >= 0
        assert labels.max() < graph.num_nodes

    def test_zero_weight_graph_short_circuits(self):
        from repro.graph import Graph

        graph = Graph.from_edge_list(4, [])
        pgraph = partition(graph, 2, "oec")
        cluster = Cluster(2, threads_per_host=4)
        labels, rounds = _vite_level(
            cluster, pgraph, gamma=1.0, max_rounds=40,
            early_termination=False, rng=np.random.default_rng(0),
        )
        assert rounds == 0
        assert list(labels) == [0, 1, 2, 3]

    def test_sgr_phase_exists_each_round(self):
        graph = generators.road_like(6, 4, seed=0, weighted=True)
        cluster = Cluster(2, threads_per_host=4)
        vite_louvain(cluster, partition(graph, 2, "oec"))
        sgr_phases = [p for p in cluster.log.phases if p.label == "vite:sgr"]
        serial_phases = [p for p in cluster.log.phases if p.label == "vite:inspect"]
        assert len(sgr_phases) == len(serial_phases) > 0


class TestGaloisDeterminism:
    def test_cc_lp_deterministic(self):
        graph = generators.powerlaw_like(6, seed=4)
        first = galois_cc_lp(Cluster(1, threads_per_host=8), graph)
        second = galois_cc_lp(Cluster(1, threads_per_host=8), graph)
        assert first.values == second.values
        assert first.rounds == second.rounds

    def test_mis_matches_distributed_priority_order(self):
        """Galois MIS and Kimbap MIS share the priority order, so the
        selected sets coincide."""
        from repro.algorithms import mis

        graph = generators.road_like(6, 4, seed=2)
        galois = galois_mis(Cluster(1, threads_per_host=8), graph)
        kimbap = mis(Cluster(2, threads_per_host=4), partition(graph, 2, "cvc"))
        galois_set = {n for n, v in galois.values.items() if v == 1}
        kimbap_set = {n for n, v in kimbap.values.items() if v == 1}
        assert galois_set == kimbap_set
