"""Observability layer: timeline invariants, exporters, machine-readable
results, and the ``trace`` / ``profile`` CLI commands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cluster.metrics import PhaseKind
from repro.eval.harness import RESULT_SCHEMA, run_kimbap
from repro.eval.reporting import format_phase_breakdown, phase_breakdown_rows
from repro.graph import generators
from repro.trace import to_chrome_trace, top_phases, write_chrome_trace


@pytest.fixture(scope="module")
def result():
    graph = generators.road_like(8, 4, seed=1)
    return run_kimbap("CC-LP", "road", 2, threads=4, graph=graph)


@pytest.fixture(scope="module")
def timeline(result):
    return result.timeline()


class TestTimeline:
    def test_every_host_track_sums_to_modeled_total(self, result, timeline):
        elapsed = result.cluster.elapsed().total
        for host, host_total in enumerate(timeline.per_host_totals()):
            assert host_total == pytest.approx(elapsed, abs=1e-9), f"host {host}"
        assert timeline.total == pytest.approx(elapsed, abs=1e-9)

    def test_phases_are_barrier_aligned(self, timeline):
        by_phase = {}
        for s in timeline.slices:
            by_phase.setdefault(s.phase_index, []).append(s)
        for slices in by_phase.values():
            starts = {s.start for s in slices}
            durations = {s.duration for s in slices}
            assert len(starts) == 1 and len(durations) == 1

    def test_busy_never_exceeds_duration(self, timeline):
        for s in timeline.slices:
            assert 0.0 <= s.busy <= s.duration + 1e-12

    def test_round_attribution_matches_run_rounds(self, result, timeline):
        # CC-LP is a single kimbap_while loop: the highest stamped round is
        # the number of BSP rounds; init phases carry round 0.
        assert max(s.round for s in timeline.slices) == result.rounds
        init = [s for s in timeline.slices if s.kind is PhaseKind.INIT]
        assert init and all(s.round == 0 for s in init)

    def test_operator_attribution_present(self, timeline):
        computes = [s for s in timeline.slices if s.kind is PhaseKind.REDUCE_COMPUTE]
        assert computes and all(s.operator for s in computes)
        assert any(s.operator == "cc_lp" for s in computes)

    def test_timeline_is_deterministic(self, result):
        first = result.timeline()
        second = result.timeline()
        assert first.slices == second.slices
        assert first.total == second.total


class TestChromeExport:
    def test_trace_round_trips_and_durations_sum(self, result, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), timeline)
        trace = json.loads(path.read_text())
        per_host = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "X":
                per_host.setdefault(event["tid"], 0.0)
                per_host[event["tid"]] += event["dur"]
        assert set(per_host) == set(range(result.hosts))
        elapsed = result.cluster.elapsed().total
        for total_us in per_host.values():
            assert total_us / 1e6 == pytest.approx(elapsed, abs=1e-9)

    def test_track_and_process_metadata(self, timeline):
        trace = to_chrome_trace(timeline)
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
        }
        assert names == {f"host {h}" for h in range(timeline.num_hosts)}
        assert trace["otherData"]["modeled_total_s"] == pytest.approx(timeline.total)

    def test_sync_phases_emit_flow_events(self, timeline):
        trace = to_chrome_trace(timeline)
        flows = [e for e in trace["traceEvents"] if e.get("cat") == "sync-flow"]
        assert flows, "a multi-host run must produce sync flows"
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event["ph"])
        for phases in by_id.values():
            assert phases[0] == "s" and phases[-1] == "f"

    def test_slice_args_carry_attribution(self, timeline):
        trace = to_chrome_trace(timeline)
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        for event in slices:
            assert {"round", "operator", "kind", "busy_s", "wait_s", "counters"} <= set(
                event["args"]
            )


class TestBreakdownTable:
    def test_rows_sum_to_total(self, result):
        cluster = result.cluster
        rows = phase_breakdown_rows(cluster.log, cluster.cost_model, result.threads)
        total = sum(float(row[-1]) for row in rows)
        assert total == pytest.approx(result.total, abs=1e-3 * max(1, len(rows)))

    def test_renders_rounds_and_kinds(self, result):
        cluster = result.cluster
        text = format_phase_breakdown(cluster.log, cluster.cost_model, result.threads)
        assert "round" in text
        assert "reduce-sync" in text
        assert "reduce-compute" in text


class TestRunResultJson:
    def test_schema_fields(self, result):
        data = result.to_dict()
        required = {
            "schema", "system", "app", "graph", "hosts", "comp", "comm",
            "total", "rounds", "messages", "bytes", "counters",
        }
        assert required <= set(data)
        assert data["schema"] == RESULT_SCHEMA
        assert data["comp"] + data["comm"] == pytest.approx(data["total"])
        assert data["counters"] == result.cluster.log.total_counters().as_dict()
        json.dumps(data)  # must be JSON-serializable as-is

    def test_deterministic_across_identical_runs(self):
        graph = generators.road_like(8, 4, seed=1)
        first = run_kimbap("CC-LP", "road", 2, threads=4, graph=graph).to_dict()
        second = run_kimbap("CC-LP", "road", 2, threads=4, graph=graph).to_dict()
        assert first == second


class TestProfile:
    def test_top_phases_ordered_and_attributed(self, result):
        cluster = result.cluster
        costs = top_phases(cluster.log, cluster.cost_model, result.threads, k=5)
        assert len(costs) == 5
        totals = [c.time.total for c in costs]
        assert totals == sorted(totals, reverse=True)
        assert all(c.breakdown for c in costs if c.time.total > 0)
        # weight attribution only contains priced counters
        for cost in costs:
            assert "reads_master" not in cost.breakdown
            assert "reads_remote" not in cost.breakdown


class TestCli:
    def test_trace_command_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        report = tmp_path / "result.json"
        code = main(
            [
                "trace", "CC-SV", "--graph", "road", "--hosts", "2",
                "--threads", "4", "--out", str(out), "--report", str(report),
            ]
        )
        assert code == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["hosts"] == 2
        result = json.loads(report.read_text())
        assert result["schema"] == RESULT_SCHEMA
        assert "wrote" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        code = main(
            ["profile", "MIS", "--graph", "road", "--hosts", "2",
             "--threads", "4", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "share" in out
        assert "operator" in out
