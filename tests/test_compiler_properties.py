"""Property tests linking the structural transforms to the CFG dominators.

The split transform builds request ParFors from the *structural prefix* of
each read; Section 5.1 specifies them via dominance. These tests generate
random structured operators and verify the two formulations coincide, plus
interpreter expression semantics against plain Python.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cfg import ENTRY, build_cfg
from repro.compiler.dominators import dominates, immediate_dominators
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    ForEdges,
    If,
    MapRead,
    MapReduce,
    Stmt,
    Var,
    walk,
)
from repro.compiler.transforms import request_slice
from repro.core.reducers import MIN


# -- random structured operator bodies --------------------------------------


def exprs():
    return st.one_of(
        st.builds(Const, st.integers(0, 5)),
        st.builds(Var, st.sampled_from(["a", "b", "c"])),
        st.just(ActiveNode()),
    )


def simple_stmts():
    return st.one_of(
        st.builds(Assign, st.sampled_from(["a", "b", "c"]), exprs()),
        st.builds(
            MapRead, st.sampled_from(["a", "b", "c"]), st.just("m"), exprs()
        ),
        st.builds(
            MapReduce, st.just("m"), exprs(), exprs(), st.just(MIN)
        ),
    )


def bodies(depth: int = 2):
    if depth == 0:
        return st.lists(simple_stmts(), min_size=1, max_size=4).map(tuple)
    sub = bodies(depth - 1)
    return st.lists(
        st.one_of(
            simple_stmts(),
            st.builds(If, exprs(), sub, sub),
            st.builds(ForEdges, st.just("e"), sub),
        ),
        min_size=1,
        max_size=4,
    ).map(tuple)


def slice_statements(body) -> list[Stmt]:
    return list(walk(body))


@given(bodies())
@settings(max_examples=60, deadline=None)
def test_slice_contains_only_dominators(body):
    """Every statement copied into a request ParFor dominates the read it
    serves (writes excluded by the cautious rule) - the paper's spec."""
    reads = [s for s in walk(body) if isinstance(s, MapRead)]
    if not reads:
        return
    cfg = build_cfg(body)
    idom = immediate_dominators(cfg)
    for target in reads:
        sliced, found = request_slice(body, target)
        assert found
        target_node = cfg.nodes_of(target)[0]
        for stmt in walk(sliced):
            if isinstance(stmt, (Assign, MapRead)):
                # the copy is by object identity, so the original occurrence
                # exists in the CFG and must dominate the target
                nodes = cfg.nodes_of(stmt)
                assert nodes, f"slice invented a statement: {stmt}"
                assert any(
                    dominates(idom, node, target_node) for node in nodes
                ), f"{stmt} does not dominate the target read"


@given(bodies())
@settings(max_examples=60, deadline=None)
def test_slice_never_contains_writes(body):
    reads = [s for s in walk(body) if isinstance(s, MapRead)]
    for target in reads:
        sliced, found = request_slice(body, target)
        assert found
        assert not any(isinstance(s, MapReduce) for s in walk(sliced))


@given(bodies())
@settings(max_examples=60, deadline=None)
def test_slice_ends_with_single_request(body):
    from repro.compiler.ir import MapRequest

    reads = [s for s in walk(body) if isinstance(s, MapRead)]
    for target in reads:
        sliced, found = request_slice(body, target)
        assert found
        requests = [s for s in walk(sliced) if isinstance(s, MapRequest)]
        assert len(requests) == 1
        assert requests[0].key == target.key


@given(bodies())
@settings(max_examples=40, deadline=None)
def test_cfg_entry_dominates_everything(body):
    cfg = build_cfg(body)
    idom = immediate_dominators(cfg)
    for node in idom:
        assert dominates(idom, ENTRY, node)


# -- interpreter expression semantics ----------------------------------------


class TestExpressionEval:
    def make_executor(self):
        from repro.cluster import Cluster
        from repro.compiler.interp import _Executor
        from repro.graph import generators
        from repro.partition import partition

        graph = generators.path(4)
        pgraph = partition(graph, 1, "oec")
        cluster = Cluster(1)
        return _Executor(cluster, pgraph, {}), cluster

    @given(
        st.sampled_from(["+", "-", "*", ">", "<", ">=", "<=", "==", "!=", "min", "max"]),
        st.integers(-100, 100),
        st.integers(-100, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_binops_match_python(self, op, left, right):
        import operator as py_op

        executor, cluster = self.make_executor()
        reference = {
            "+": py_op.add, "-": py_op.sub, "*": py_op.mul,
            ">": py_op.gt, "<": py_op.lt, ">=": py_op.ge, "<=": py_op.le,
            "==": py_op.eq, "!=": py_op.ne, "min": min, "max": max,
        }[op]
        from repro.cluster.metrics import PhaseKind
        from repro.runtime.engine import OperatorContext

        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            ctx = OperatorContext(
                cluster=cluster,
                part=executor.pgraph.parts[0],
                host=0,
                thread=0,
                local=0,
                node=0,
            )
            expr = BinOp(op, Const(left), Const(right))
            assert executor.eval(expr, ctx, {}) == reference(left, right)

    def test_boolean_ops_short_circuit_semantics(self):
        from repro.cluster.metrics import PhaseKind
        from repro.compiler.ir import Not
        from repro.runtime.engine import OperatorContext

        executor, cluster = self.make_executor()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            ctx = OperatorContext(
                cluster=cluster,
                part=executor.pgraph.parts[0],
                host=0,
                thread=0,
                local=0,
                node=0,
            )
            assert executor.eval(
                BinOp("and", Const(True), Const(False)), ctx, {}
            ) is False
            assert executor.eval(
                BinOp("or", Const(False), Const(True)), ctx, {}
            ) is True
            assert executor.eval(Not(Const(False)), ctx, {}) is True

    def test_division(self):
        from repro.cluster.metrics import PhaseKind
        from repro.runtime.engine import OperatorContext

        executor, cluster = self.make_executor()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE):
            ctx = OperatorContext(
                cluster=cluster,
                part=executor.pgraph.parts[0],
                host=0,
                thread=0,
                local=0,
                node=0,
            )
            assert executor.eval(BinOp("/", Const(7), Const(2)), ctx, {}) == 3.5
