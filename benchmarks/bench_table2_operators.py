"""Table 2: operator types used in each application.

For the compiled applications the row comes straight out of the compiler's
operator analysis; for LV / LD / MSF (hand-written at the generated-code
level) the declared classification is used and cross-checked against the
paper's table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.algorithms.common import ALGORITHM_OPERATORS
from repro.compiler.analysis import analyze_operator
from repro.compiler.programs import (
    cc_lp_program,
    cc_sclp_propagate,
    cc_sclp_shortcut,
    cc_sv_hook,
    cc_sv_shortcut,
    mis_blocked,
    mis_exclude,
    mis_select,
)

FIGURE_TITLE = "Table 2: operator types used in each application"
FIGURE_HEADERS = ("application", "adjacent-vertex op", "trans-vertex op", "source")

# paper Table 2 ground truth
PAPER = {
    "LV": (True, True),
    "LD": (True, True),
    "MSF": (False, True),
    "CC-LP": (True, False),
    "CC-SCLP": (True, True),
    "CC-SV": (False, True),
    "MIS": (True, False),
}

COMPILED_OPERATORS = {
    "CC-SV": [cc_sv_hook, cc_sv_shortcut],
    "CC-LP": [cc_lp_program],
    "CC-SCLP": [cc_sclp_propagate, cc_sclp_shortcut],
    "MIS": [mis_blocked, mis_select, mis_exclude],
}


def classify_compiled(app: str) -> tuple[bool, bool]:
    """App-level row: does any operator use each kind?"""
    has_adjacent = False
    has_trans = False
    for program_factory in COMPILED_OPERATORS[app]:
        analysis = analyze_operator(program_factory().par_for)
        if analysis.is_adjacent_vertex:
            has_adjacent = True
        else:
            has_trans = True
    return has_adjacent, has_trans


@pytest.mark.parametrize("app", sorted(PAPER))
def test_operator_classification(benchmark, app, figure_report):
    if app in COMPILED_OPERATORS:
        adjacent, trans = benchmark.pedantic(
            classify_compiled, args=(app,), rounds=1, iterations=1
        )
        source = "compiler analysis"
    else:
        kinds = ALGORITHM_OPERATORS[app]

        def declared():
            return kinds.adjacent_vertex, kinds.trans_vertex

        adjacent, trans = benchmark.pedantic(declared, rounds=1, iterations=1)
        source = "declared (hand-written kernel)"
    record(
        __name__,
        (app, "yes" if adjacent else "-", "yes" if trans else "-", source),
    )
    assert (adjacent, trans) == PAPER[app], f"Table 2 mismatch for {app}"


@pytest.mark.parametrize("app", ["K-CORE", "VERTEX-COVER"])
def test_extension_applications_row(benchmark, app, figure_report):
    """Extra rows beyond the paper's table: the extension applications."""
    kinds = ALGORITHM_OPERATORS[app]

    def declared():
        return kinds.adjacent_vertex, kinds.trans_vertex

    adjacent, trans = benchmark.pedantic(declared, rounds=1, iterations=1)
    record(
        __name__,
        (
            app,
            "yes" if adjacent else "-",
            "yes" if trans else "-",
            "extension (beyond the paper)",
        ),
    )
    assert adjacent and not trans
