"""Figure 12: compiler optimizations on vs off (CC-LP and MIS).

The same DSL programs are compiled twice: with the Section 5.2 elisions
(master-nodes RequestSync elision, adjacent-neighbors elision with pinned
mirrors) and without (NO-OPT: every read goes through a request ParFor
chain, all proxies compute). The paper reports 41x / 102x / 79x average
improvements in computation / communication / total, with NO-OPT CC-LP
timing out beyond one host; asserted here directionally: OPT wins on both
axes everywhere, with the communication gap the larger one.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import host_counts, record
from repro.cluster import Cluster
from repro.compiler.apps import COMPILED_APPS
from repro.eval.harness import RunResult
from repro.eval.workloads import load_graph
from repro.partition import partition

FIGURE_TITLE = "Figure 12: compiler optimizations (modeled seconds)"
FIGURE_HEADERS = ("app", "graph", "hosts", "mode", "comp(s)", "comm(s)", "total(s)")

HOSTS = host_counts(full=(1, 2, 4, 8, 16), fast=(1, 4, 16))
APPS = ("CC-LP", "MIS")
GRAPHS = ("road", "powerlaw")


def run_compiled_app(app: str, graph_name: str, hosts: int, optimize: bool) -> RunResult:
    graph = load_graph(graph_name)
    pgraph = partition(graph, hosts, "cvc")
    cluster = Cluster(hosts, threads_per_host=48)
    result = COMPILED_APPS[app](cluster, pgraph, optimize=optimize)
    return RunResult(
        system="OPT" if optimize else "NO-OPT",
        app=app,
        graph=graph_name,
        hosts=hosts,
        time=cluster.elapsed(),
        rounds=result.rounds,
        stats=dict(result.stats),
        messages=cluster.log.total_messages(),
        bytes=cluster.log.total_bytes(),
        time_by_kind=cluster.elapsed_by_kind(),
    )


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig12_opt_vs_no_opt(benchmark, app, graph, hosts, figure_report):
    def run_pair():
        return (
            run_compiled_app(app, graph, hosts, optimize=True),
            run_compiled_app(app, graph, hosts, optimize=False),
        )

    opt, no_opt = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    for result in (opt, no_opt):
        record(
            __name__,
            (
                result.app,
                result.graph,
                result.hosts,
                result.system,
                round(result.time.computation, 3),
                round(result.time.communication, 3),
                round(result.total, 3),
            ),
        )
    benchmark.extra_info["opt_total_s"] = opt.total
    benchmark.extra_info["no_opt_total_s"] = no_opt.total

    assert opt.time.computation < no_opt.time.computation
    assert opt.total < no_opt.total
    if hosts > 1:
        assert opt.time.communication < no_opt.time.communication
        # The elisions' whole point: the request traffic disappears.
        assert no_opt.messages > opt.messages


def test_fig12_gap_grows_with_hosts(benchmark, figure_report):
    """The paper's NO-OPT penalty explodes with scale (CC-LP timed out on
    more than one host). At simulation scale the absolute factors are far
    smaller (the road analog's replication factor is ~1.1, so per-round
    request volume is tiny - see EXPERIMENTS.md), but the *trend* must
    hold: the OPT advantage widens as hosts increase."""

    def gaps():
        out = {}
        for hosts in (2, 16):
            opt = run_compiled_app("MIS", "road", hosts, optimize=True)
            no_opt = run_compiled_app("MIS", "road", hosts, optimize=False)
            out[hosts] = no_opt.total / opt.total
        return out

    gap_by_hosts = benchmark.pedantic(gaps, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"total_gap_{k}h": round(v, 2) for k, v in gap_by_hosts.items()}
    )
    assert gap_by_hosts[16] > gap_by_hosts[2] > 1.0
