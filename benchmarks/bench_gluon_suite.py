"""The Gluon adjacent-vertex suite on Kimbap (bfs / cc / sssp).

The Gluon paper (cited [27], the adjacent-vertex state of the art Kimbap
must match) evaluates bfs, cc, pr, and sssp. Figures 9c/10c only compare
connected components; this bench extends the comparability claim across
the suite: Kimbap's compiled adjacent-vertex specialization must stay
within a small factor of the Gluon engine on every application.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.algorithms import bfs, cc_lp, sssp
from repro.baselines import gluon_bfs, gluon_cc_lp, gluon_sssp
from repro.cluster import Cluster
from repro.eval.workloads import load_graph
from repro.partition import partition

FIGURE_TITLE = "Gluon adjacent-vertex suite: Kimbap vs Gluon (modeled seconds)"
FIGURE_HEADERS = ("app", "graph", "hosts", "Gluon", "Kimbap", "ratio")

PAIRS = {
    "BFS": (gluon_bfs, bfs),
    "CC-LP": (gluon_cc_lp, cc_lp),
    "SSSP": (gluon_sssp, sssp),
}


@pytest.mark.parametrize("app", sorted(PAIRS))
@pytest.mark.parametrize("graph_name", ("road", "powerlaw"))
@pytest.mark.parametrize("hosts", (4, 16))
def test_suite_cell(benchmark, app, graph_name, hosts, figure_report):
    gluon_app, kimbap_app = PAIRS[app]
    weighted = app == "SSSP"
    graph = load_graph(graph_name, weighted=weighted)

    def run_pair():
        gluon_cluster = Cluster(hosts, threads_per_host=48)
        gluon_result = gluon_app(gluon_cluster, partition(graph, hosts, "cvc"))
        kimbap_cluster = Cluster(hosts, threads_per_host=48)
        kimbap_result = kimbap_app(kimbap_cluster, partition(graph, hosts, "cvc"))
        return gluon_cluster, gluon_result, kimbap_cluster, kimbap_result

    gluon_cluster, gluon_result, kimbap_cluster, kimbap_result = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    ratio = kimbap_cluster.elapsed().total / gluon_cluster.elapsed().total
    record(
        __name__,
        (
            app,
            graph_name,
            hosts,
            round(gluon_cluster.elapsed().total, 3),
            round(kimbap_cluster.elapsed().total, 3),
            round(ratio, 2),
        ),
    )
    benchmark.extra_info["ratio"] = round(ratio, 3)
    assert gluon_result.values == kimbap_result.values, "engines must agree"
    assert 0.3 < ratio < 3.0, (
        f"Kimbap must stay comparable to Gluon on {app} (ratio {ratio:.2f})"
    )
