"""Section 4.2's motivating measurement: the fraction of master-node reads.

The paper measured node-property reads across its applications: ~65% of
reads hit master properties on 4 hosts and ~50% on 32 hosts - far above
the ~3% of nodes that are masters per host - which is the locality GAR
exploits. This bench reproduces the measurement from the runtime's
zero-cost read counters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.cluster import Cluster
from repro.eval.harness import APP_POLICY, APP_WEIGHTED, KIMBAP_APPS
from repro.eval.workloads import load_graph
from repro.partition import partition

FIGURE_TITLE = "Section 4.2: fraction of reads that hit master properties"
FIGURE_HEADERS = ("app", "graph", "hosts", "master reads", "remote reads", "master %")

APPS = ("CC-LP", "CC-SV", "CC-SCLP", "MIS", "LV", "MSF")


def master_read_fraction(app: str, graph_name: str, hosts: int):
    graph = load_graph(graph_name, weighted=APP_WEIGHTED.get(app, False))
    pgraph = partition(graph, hosts, APP_POLICY[app])
    cluster = Cluster(hosts, threads_per_host=48)
    KIMBAP_APPS[app](cluster, pgraph)
    counters = cluster.log.total_counters()
    total = counters.reads_master + counters.reads_remote
    fraction = counters.reads_master / max(total, 1)
    # The locality statistics are zero-weight mirrors of the priced read
    # events; total_events() must not double-count them, or this very
    # measurement would inflate every event total it rides along with.
    assert counters.total_events() == sum(
        value
        for name, value in counters.as_dict().items()
        if name not in ("reads_master", "reads_remote")
    )
    return counters.reads_master, counters.reads_remote, fraction


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("hosts", (4, 32))
def test_master_read_fraction(benchmark, app, hosts, figure_report):
    master, remote, fraction = benchmark.pedantic(
        master_read_fraction, args=(app, "powerlaw", hosts), rounds=1, iterations=1
    )
    record(
        __name__,
        (app, "powerlaw", hosts, master, remote, f"{100 * fraction:.0f}%"),
    )
    benchmark.extra_info["master_fraction"] = round(fraction, 3)
    # Masters are a 1/hosts share of the nodes, yet reads concentrate on
    # them at or beyond that share - the locality that justifies GAR.
    assert fraction > 1 / hosts


def test_average_fraction_shrinks_with_hosts(benchmark, figure_report):
    def averages():
        out = {}
        for hosts in (4, 32):
            fractions = [
                master_read_fraction(app, "powerlaw", hosts)[2] for app in APPS
            ]
            out[hosts] = sum(fractions) / len(fractions)
        return out

    averages_by_hosts = benchmark.pedantic(averages, rounds=1, iterations=1)
    record(
        __name__,
        (
            "average",
            "powerlaw",
            "4 -> 32",
            "-",
            "-",
            f"{100 * averages_by_hosts[4]:.0f}% -> {100 * averages_by_hosts[32]:.0f}%",
        ),
    )
    benchmark.extra_info.update(
        {f"avg_fraction_{k}": round(v, 3) for k, v in averages_by_hosts.items()}
    )
    assert averages_by_hosts[32] < averages_by_hosts[4], (
        "master-read locality dilutes as hosts grow (65% @4 -> 50% @32)"
    )
