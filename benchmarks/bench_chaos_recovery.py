#!/usr/bin/env python
"""Recovery overhead of the self-healing host-parallel pool.

Standalone script (no pytest dependency, not CI-gated on speed): for each
cell it runs the ``jobs=1`` oracle, a fault-free ``jobs=4`` run with the
supervisor armed (measuring what watching costs), and a ``jobs=4`` run
that loses a real worker - SIGKILLed by a :class:`repro.faults.chaos.ChaosPlan`
at a mid-run sync boundary - under each recovery policy (``refork``
re-forks a replacement worker, ``reshard`` re-deals the dead worker's
hosts onto the survivors). Every variant **must** stay byte-identical to
the oracle (``RunResult.to_dict()``); any divergence exits non-zero, so
the benchmark doubles as a recovery-equivalence gate wherever it is run.

The interesting numbers are the wall-clock columns: how much a kill plus
reshard-and-resume recovery costs over the fault-free parallel run
(snapshot restore + refork + round replay), and how much the armed
supervisor costs when nothing fails (it should be noise: the watch path
only polls exit codes while already waiting on tokens).

Outputs ``benchmarks/reports/bench_chaos_recovery.{json,txt}`` in the
standard ``repro-bench-report/v1`` schema. ``REPRO_BENCH_FAST=1`` shrinks
the sweep to the headline cell.
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.harness import run_kimbap  # noqa: E402
from repro.eval.workloads import load_graph  # noqa: E402
from repro.faults import ChaosEvent, ChaosPlan  # noqa: E402

REPORT_SCHEMA = "repro-bench-report/v1"
TITLE = "Self-healing pool: worker-kill recovery overhead (byte-identical results)"
HEADERS = (
    "app",
    "graph",
    "policy",
    "kind",
    "boundary",
    "j1(s)",
    "clean j4(s)",
    "killed j4(s)",
    "recovery cost",
    "heals",
    "identical",
)
JOBS = 4


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def cells() -> list[tuple[str, str, str, str]]:
    sweep = [("PR", "powerlaw", "refork", "sigkill")]
    if not fast_mode():
        sweep += [
            ("PR", "powerlaw", "reshard", "sigkill"),
            ("CC-SV", "powerlaw", "refork", "sigterm"),
            ("CC-SV", "powerlaw", "reshard", "oom"),
        ]
    return sweep


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run_cell(app: str, graph_name: str, policy: str, kind: str) -> dict:
    graph = load_graph(graph_name)
    hosts = 4

    start = time.perf_counter()
    oracle = run_kimbap(app, graph_name, hosts, graph=graph)
    oracle_s = time.perf_counter() - start
    oracle_bytes = canonical(oracle)

    # Fault-free run with the supervisor armed: probes the boundary count
    # and prices the watching itself.
    start = time.perf_counter()
    clean = run_kimbap(
        app, graph_name, hosts, graph=graph, jobs=JOBS, recovery=policy
    )
    clean_s = time.perf_counter() - start
    boundaries = clean.parallel["boundaries"]
    boundary = max(1, boundaries // 2)

    chaos = ChaosPlan(
        name=f"{kind}@{boundary}",
        events=(ChaosEvent(boundary=boundary, worker=1, kind=kind),),
    )
    start = time.perf_counter()
    killed = run_kimbap(
        app,
        graph_name,
        hosts,
        graph=graph,
        jobs=JOBS,
        recovery=policy,
        chaos_plan=chaos,
    )
    killed_s = time.perf_counter() - start
    stats = killed.parallel

    diverged = sorted(
        key
        for key, result in (("clean_j4", clean), ("killed_j4", killed))
        if canonical(result) != oracle_bytes or result.values != oracle.values
    )
    return {
        "app": app,
        "graph": graph_name,
        "hosts": hosts,
        "policy": policy,
        "kind": kind,
        "boundary": boundary,
        "boundaries": boundaries,
        "wallclock_s": {"j1": oracle_s, "clean_j4": clean_s, "killed_j4": killed_s},
        "recovery_cost": (killed_s / clean_s) if clean_s > 0 else float("inf"),
        "watch_cost": (clean_s / oracle_s) if oracle_s > 0 else float("inf"),
        "deaths_detected": int(stats["deaths_detected"]),
        "heals": int(stats["heals"]),
        "reforks": int(stats["reforks"]),
        "reshards": int(stats["reshards"]),
        "identical": not diverged,
        "diverged": diverged,
    }


def main() -> int:
    rows = [run_cell(*cell) for cell in cells()]

    from repro.eval.reporting import format_table

    printable = [
        (
            r["app"],
            r["graph"],
            r["policy"],
            r["kind"],
            f"{r['boundary']}/{r['boundaries']}",
            f"{r['wallclock_s']['j1']:.3f}",
            f"{r['wallclock_s']['clean_j4']:.3f}",
            f"{r['wallclock_s']['killed_j4']:.3f}",
            f"{r['recovery_cost']:.2f}x",
            r["heals"],
            "yes" if r["identical"] else "DIVERGED",
        )
        for r in rows
    ]
    text = f"\n\n===== {TITLE} =====\n" + format_table(HEADERS, printable) + "\n"
    print(text)

    reports_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    with open(os.path.join(reports_dir, "bench_chaos_recovery.txt"), "w") as handle:
        handle.write(text)
    report = {
        "schema": REPORT_SCHEMA,
        "module": "bench_chaos_recovery",
        "title": TITLE,
        "headers": list(HEADERS),
        "results": [],
        "rows": [list(row) for row in printable],
        "cells": rows,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "fast_mode": fast_mode(),
    }
    with open(os.path.join(reports_dir, "bench_chaos_recovery.json"), "w") as handle:
        json.dump(report, handle, indent=1)

    failed = False
    for r in rows:
        for key in r["diverged"]:
            failed = True
            print(
                f"EQUIVALENCE FAILURE: {r['app']} on {r['graph']} "
                f"({r['policy']}, {r['kind']}@{r['boundary']}) - {key} "
                "RunResult.to_dict() diverged from jobs=1",
                file=sys.stderr,
            )
        if r["deaths_detected"] < 1 or r["heals"] < 1:
            failed = True
            print(
                f"CHAOS FAILURE: {r['app']} ({r['policy']}, "
                f"{r['kind']}@{r['boundary']}) never killed a worker "
                f"(deaths={r['deaths_detected']}, heals={r['heals']})",
                file=sys.stderr,
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
