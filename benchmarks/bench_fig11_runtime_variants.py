"""Figure 11: runtime-variant ablation (Vite / MC / SGR-only / SGR+CF / full).

LV and CC-SV on the road and power-law analogs at 4 / 8 / 16 hosts, with
the computation / communication split the paper plots. All variants execute
the same programs; only the node-property-map internals differ.

Orderings the paper reports, asserted here:

* MC is far slower than every SGR variant (text: SGR-only ~11x vs MC);
* SGR+CF beats SGR-only (~1.7x), and the full map beats SGR+CF (~3x);
* Vite loses to SGR-only (its inspection phase is single-threaded);
* CF's computation win is biggest where conflicts concentrate: LV on the
  power-law graph (hub clusters) and CC-SV on the road graph (pointer
  jumping hot roots).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import host_counts, record
from repro.core.variants import RuntimeVariant
from repro.eval.harness import run_kimbap, run_vite

FIGURE_TITLE = "Figure 11: runtime variants (modeled seconds, comp/comm split)"

HOSTS = host_counts(full=(4, 8, 16), fast=(4,))
GRAPHS = ("road", "powerlaw")
VARIANT_ORDER = (
    RuntimeVariant.MC,
    RuntimeVariant.SGR_ONLY,
    RuntimeVariant.SGR_CF,
    RuntimeVariant.KIMBAP,
)


def run_all_variants(app: str, graph: str, hosts: int):
    return {
        variant: run_kimbap(app, graph, hosts, variant=variant)
        for variant in VARIANT_ORDER
    }


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig11_lv_variants(benchmark, graph, hosts, figure_report):
    results = benchmark.pedantic(
        run_all_variants, args=("LV", graph, hosts), rounds=1, iterations=1
    )
    vite = run_vite(graph, hosts)
    record(__name__, vite)
    for variant in VARIANT_ORDER:
        record(__name__, results[variant])
    benchmark.extra_info["kimbap_total_s"] = results[RuntimeVariant.KIMBAP].total
    benchmark.extra_info["mc_total_s"] = results[RuntimeVariant.MC].total

    # Counter signatures (now serialized into the JSON reports): the full
    # map reads remotes by binary search, the hash-layout variants by hash
    # probe, and MC pays per-op string-key costs.
    assert results[RuntimeVariant.KIMBAP].counters["binsearch_steps"] > 0
    assert results[RuntimeVariant.SGR_CF].counters["hash_probes"] > 0
    assert results[RuntimeVariant.SGR_CF].counters["binsearch_steps"] == 0
    assert results[RuntimeVariant.MC].counters["kv_string_ops"] > 0

    totals = [results[v].total for v in VARIANT_ORDER]
    assert totals[0] > totals[1] >= totals[2] > totals[3], (
        f"expected MC > SGR-only >= SGR+CF > full, got {totals}"
    )
    assert totals[0] > 1.5 * totals[1], "MC must lose to SGR-only by a wide margin"
    assert vite.total > results[RuntimeVariant.KIMBAP].total, (
        "hand-optimized Vite must lose to the full Kimbap map"
    )
    if hosts == 4:
        # Vite's serial inspection + shared-map accumulation lose to even
        # the SGR-only runtime; at our scale the ordering holds at 4 hosts
        # (at 16 the serial section is too small to dominate - see
        # EXPERIMENTS.md).
        assert vite.total > results[RuntimeVariant.SGR_ONLY].total


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig11_ccsv_variants(benchmark, graph, hosts, figure_report):
    results = benchmark.pedantic(
        run_all_variants, args=("CC-SV", graph, hosts), rounds=1, iterations=1
    )
    for variant in VARIANT_ORDER:
        record(__name__, results[variant])
    benchmark.extra_info["kimbap_total_s"] = results[RuntimeVariant.KIMBAP].total
    totals = [results[v].total for v in VARIANT_ORDER]
    assert totals[0] > totals[3], "MC must lose to the full map"
    assert totals[1] > totals[3], "SGR-only must lose to the full map"
    assert totals[2] > totals[3], "SGR+CF must lose to the full map"


def test_fig11_cf_computation_benefit(benchmark, figure_report):
    """CF's computation-time win concentrates where concurrent same-key
    reductions concentrate (Section 6.4's analysis)."""

    def conflict_profile():
        profile = {}
        for app, graph in (("LV", "powerlaw"), ("CC-SV", "road")):
            shared = run_kimbap(app, graph, 4, variant=RuntimeVariant.SGR_ONLY)
            with_cf = run_kimbap(app, graph, 4, variant=RuntimeVariant.SGR_CF)
            profile[(app, graph)] = (
                shared.time.computation,
                with_cf.time.computation,
            )
        return profile

    profile = benchmark.pedantic(conflict_profile, rounds=1, iterations=1)
    for (app, graph), (shared_comp, cf_comp) in profile.items():
        benchmark.extra_info[f"{app}-{graph}"] = round(shared_comp / cf_comp, 2)
        assert cf_comp < shared_comp, (
            f"CF must cut computation time for {app} on {graph}"
        )
