"""Table 3: Galois (1 host) vs Kimbap (1 and 16 hosts) on medium graphs.

Shapes to reproduce:

* LV / CC-LP / MIS: Galois and Kimbap comparable on one host; Kimbap at
  16 hosts clearly faster than Galois;
* MSF / CC-SV: Galois wins on one host (asynchronous pointer jumping with
  in-place atomics vs Kimbap's BSP staging);
* LD: Kimbap wins even on one host (Galois' in-place atomic reductions
  contend on subcluster properties; the paper's Galois run timed out).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.eval.harness import run_galois, run_kimbap

FIGURE_TITLE = "Table 3: Galois vs Kimbap (modeled seconds)"
FIGURE_HEADERS = ("app", "graph", "Galois 1h", "Kimbap 1h", "Kimbap 16h", "best")

APPS = ("LV", "LD", "MSF", "CC-LP", "CC-SV", "MIS")
GRAPHS = ("road", "powerlaw")


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("graph", GRAPHS)
def test_table3_cell(benchmark, app, graph, figure_report):
    def run_cell():
        return (
            run_galois(app, graph),
            run_kimbap(app, graph, 1),
            run_kimbap(app, graph, 16),
        )

    galois, kimbap_1, kimbap_16 = benchmark.pedantic(run_cell, rounds=1, iterations=1)
    times = {
        "Galois 1h": galois.total,
        "Kimbap 1h": kimbap_1.total,
        "Kimbap 16h": kimbap_16.total,
    }
    best = min(times, key=times.get)
    record(
        __name__,
        (
            app,
            graph,
            round(galois.total, 3),
            round(kimbap_1.total, 3),
            round(kimbap_16.total, 3),
            best,
        ),
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in times.items()})

    if app in ("MSF", "CC-SV"):
        assert galois.total < kimbap_1.total, (
            f"async {app} must beat BSP {app} on one host (Table 3)"
        )
    if app == "LD":
        assert min(kimbap_1.total, kimbap_16.total) < galois.total, (
            "Kimbap LD must beat Galois LD (conflict-free vs atomic reductions)"
        )
    if app in ("LV", "CC-LP", "MIS"):
        # "comparable" on one host, scaling wins beyond: Kimbap at 16 hosts
        # must at least land in Galois' neighbourhood.
        assert kimbap_16.total < 3 * galois.total, (
            f"Kimbap {app} at 16 hosts must be comparable-or-better vs Galois"
        )


def test_table3_ld_conflict_blowup(benchmark, figure_report):
    """Galois LD pays for atomic subcluster updates: its LD/LV ratio must
    far exceed Kimbap's (the paper's Galois-LD run timed out entirely)."""

    def ratios():
        galois_ld = run_galois("LD", "powerlaw").total
        galois_lv = run_galois("LV", "powerlaw").total
        kimbap_ld = run_kimbap("LD", "powerlaw", 1).total
        kimbap_lv = run_kimbap("LV", "powerlaw", 1).total
        return galois_ld / galois_lv, kimbap_ld / kimbap_lv

    galois_ratio, kimbap_ratio = benchmark.pedantic(ratios, rounds=1, iterations=1)
    benchmark.extra_info["galois_ld_over_lv"] = round(galois_ratio, 2)
    benchmark.extra_info["kimbap_ld_over_lv"] = round(kimbap_ratio, 2)
    assert galois_ratio > 3 * kimbap_ratio
