"""Strong scaling of the extension applications (beyond the paper's seven).

BFS / SSSP / PR / K-CORE / VERTEX-COVER on the medium analogs at 1-16
hosts - the same sweep shape as Figure 9, demonstrating that the
node-property-map machinery generalizes past the paper's application set.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import host_counts, record
from repro.eval.harness import run_kimbap

FIGURE_TITLE = "Extension applications: strong scaling (modeled seconds)"

HOSTS = host_counts(full=(1, 4, 16), fast=(1, 16))
APPS = ("BFS", "SSSP", "PR", "K-CORE", "VERTEX-COVER")
GRAPHS = ("road", "powerlaw")


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_extension_cell(benchmark, app, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap(app, graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.rounds > 0


def test_extension_compute_scales(benchmark, figure_report):
    """Computation time must shrink with hosts for the edge-heavy apps."""

    def ratios():
        out = {}
        for app in ("PR", "SSSP"):
            single = run_kimbap(app, "powerlaw", 1)
            many = run_kimbap(app, "powerlaw", 16)
            out[app] = single.time.computation / max(many.time.computation, 1e-12)
        return out

    by_app = benchmark.pedantic(ratios, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in by_app.items()})
    for app, ratio in by_app.items():
        assert ratio > 2, f"{app} computation must scale with hosts"
