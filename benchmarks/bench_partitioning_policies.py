"""Partitioning-policy study (in the spirit of Gill et al. [40], cited §2.2).

Kimbap "supports general partitioning policies" (Section 1); this bench
quantifies what each policy costs: replication factor, request/broadcast
traffic, and modeled time for a trans-vertex (CC-SV) and an
adjacent-vertex (CC-LP) program on the power-law analog.

Expected shapes: the Cartesian vertex-cut bounds hub replication and wins
on power-law graphs at scale (why the paper picks it for CC/MSF/MIS);
edge-cuts replicate hubs' full neighborhoods; the hybrid cut sits between.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.algorithms import cc_lp, cc_sv
from repro.cluster import Cluster
from repro.eval.workloads import load_graph
from repro.partition import POLICIES, partition

FIGURE_TITLE = "Partitioning policies: replication, traffic, modeled time (powerlaw, 8 hosts)"
FIGURE_HEADERS = (
    "policy",
    "app",
    "replication",
    "messages",
    "kilobytes",
    "comp(s)",
    "comm(s)",
    "total(s)",
)

HOSTS = 8


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("app_name,app", [("CC-SV", cc_sv), ("CC-LP", cc_lp)])
def test_policy_cell(benchmark, policy, app_name, app, figure_report):
    graph = load_graph("powerlaw")

    def run_cell():
        pgraph = partition(graph, HOSTS, policy)
        cluster = Cluster(HOSTS, threads_per_host=48)
        result = app(cluster, pgraph)
        return pgraph, cluster, result

    pgraph, cluster, result = benchmark.pedantic(run_cell, rounds=1, iterations=1)
    elapsed = cluster.elapsed()
    record(
        __name__,
        (
            policy,
            app_name,
            round(pgraph.replication_factor(), 2),
            cluster.log.total_messages(),
            round(cluster.log.total_bytes() / 1024, 1),
            round(elapsed.computation, 3),
            round(elapsed.communication, 3),
            round(elapsed.total, 3),
        ),
    )
    benchmark.extra_info["replication"] = pgraph.replication_factor()
    benchmark.extra_info["total_s"] = elapsed.total
    # correctness is policy-independent
    from repro.verify import check_components

    check_components(graph, result.values)


def test_cvc_bounds_replication(benchmark, figure_report):
    """The vertex-cut's whole point on power-law inputs."""
    graph = load_graph("powerlaw")

    def factors():
        return {
            policy: partition(graph, HOSTS, policy).replication_factor()
            for policy in POLICIES
        }

    by_policy = benchmark.pedantic(factors, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in by_policy.items()})
    assert by_policy["cvc"] <= by_policy["oec"]
    assert by_policy["hvc"] <= by_policy["iec"]
