"""Figure 9: strong scaling on medium graphs (1-16 hosts, 48 threads each).

Five sub-figures: (a) LV Kimbap vs Vite, (b) LD, (c) CC as Gluon-LP /
Kimbap-LP / Kimbap-SCLP / Kimbap-SV, (d) MSF, (e) MIS - each on the
road-europe and friendster analogs.

Shapes the paper reports, asserted here:

* Kimbap's LV beats Vite at every host count (paper: ~4x average);
* on the high-diameter road graph, CC-SCLP and CC-SV beat CC-LP
  (paper: 14x and 2x average) while CC-LP wins on the power-law graph;
* Kimbap-LP is comparable to Gluon-LP;
* most applications scale: 16 hosts beats 1 host (MIS is excused - the
  paper notes it needs more hosts due to its communication ratio).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import host_counts, record
from repro.eval.harness import run_gluon, run_kimbap, run_vite

FIGURE_TITLE = "Figure 9: strong scaling, medium graphs (modeled seconds)"

HOSTS = host_counts(full=(1, 2, 4, 8, 16), fast=(1, 4, 16))
GRAPHS = ("road", "powerlaw")


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig9a_lv(benchmark, graph, hosts, figure_report):
    kimbap = benchmark.pedantic(
        lambda: run_kimbap("LV", graph, hosts), rounds=1, iterations=1
    )
    vite = run_vite(graph, hosts)
    record(__name__, kimbap)
    record(__name__, vite)
    benchmark.extra_info["modeled_total_s"] = kimbap.total
    benchmark.extra_info["vite_total_s"] = vite.total
    assert kimbap.total < vite.total, "Kimbap LV must beat Vite (Fig 9a)"
    assert kimbap.stats["modularity"] == pytest.approx(vite.stats["modularity"])


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig9b_ld(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("LD", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["modularity"] > 0


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig9c_cc(benchmark, graph, hosts, figure_report):
    def run_all():
        return {
            "Gluon-LP": run_gluon(graph, hosts),
            "Kimbap-LP": run_kimbap("CC-LP", graph, hosts, bulk=True),
            "Kimbap-SCLP": run_kimbap("CC-SCLP", graph, hosts),
            "Kimbap-SV": run_kimbap("CC-SV", graph, hosts),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results.values():
        record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = results["Kimbap-SV"].total
    ratio = results["Kimbap-LP"].total / results["Gluon-LP"].total
    assert 0.3 < ratio < 3.0, "Kimbap-LP must stay comparable to Gluon-LP"
    if graph == "road":
        assert results["Kimbap-SCLP"].total < results["Kimbap-LP"].total, (
            "pointer jumping must beat plain LP on the high-diameter graph"
        )
    elif hosts >= 8:
        # The paper's power-law claim is a communication argument: SV/SCLP
        # pointer-jumping requests stop scaling with hosts while LP's
        # neighbor traffic shrinks, so LP wins once hosts grow (Fig 9c).
        fastest = min(results.values(), key=lambda r: r.total)
        assert fastest.app == "CC-LP" or fastest.system == "Gluon", (
            "LP-style propagation wins on power-law graphs at scale"
        )
        assert (
            results["Kimbap-SV"].time.communication
            > results["Kimbap-LP"].time.communication
        )


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig9d_msf(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("MSF", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["forest_edges"] > 0


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("hosts", HOSTS)
def test_fig9e_mis(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("MIS", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["set_size"] > 0


def test_fig9b_ld_oom_panel(benchmark, figure_report):
    """The paper's Fig 9b has missing LD points: out-of-memory. With a
    simulated memory limit sized to fit LV comfortably, LD must blow it -
    the subcluster maps are the extra footprint the paper blames."""
    from repro.cluster import Cluster
    from repro.cluster.cluster import SimulatedOutOfMemory
    from repro.eval.workloads import load_graph
    from repro.partition import partition
    from repro.algorithms import leiden, louvain

    graph = load_graph("powerlaw", weighted=True)

    def run_panel():
        probe = Cluster(4, threads_per_host=48)
        louvain(probe, partition(graph, 4, "oec"))
        limit = int(probe.max_memory_slots() * 1.2)
        constrained = Cluster(4, threads_per_host=48, memory_limit_slots=limit)
        louvain(constrained, partition(graph, 4, "oec"))  # LV fits
        oom = Cluster(4, threads_per_host=48, memory_limit_slots=limit)
        try:
            leiden(oom, partition(graph, 4, "oec"))
            return limit, False
        except SimulatedOutOfMemory:
            return limit, True

    limit, ld_oomed = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    benchmark.extra_info["memory_limit_slots"] = limit
    benchmark.extra_info["ld_oom"] = ld_oomed
    record(__name__, ("Kimbap", "LD", "powerlaw", "(OOM panel)", "-", "-", "OOM" if ld_oomed else "fits"))
    assert ld_oomed, "LD must exceed a memory limit LV fits in (Fig 9b's gaps)"


def test_fig9_scaling_summary(benchmark, figure_report):
    """Strong scaling holds for the compute-bound applications."""

    def scaling_ratios():
        ratios = {}
        for app in ("LV", "CC-SV"):
            single = run_kimbap(app, "powerlaw", 1)
            many = run_kimbap(app, "powerlaw", 16)
            ratios[app] = single.total / many.total
        return ratios

    ratios = benchmark.pedantic(scaling_ratios, rounds=1, iterations=1)
    benchmark.extra_info.update({f"speedup_{k}": v for k, v in ratios.items()})
    assert ratios["LV"] > 1.5, "LV must scale from 1 to 16 hosts"
