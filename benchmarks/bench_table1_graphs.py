"""Table 1: input graphs and their statistics.

Regenerates the |V| / |E| / |E|/|V| / max-degree table for the four
synthetic analogs, alongside the paper's values for the real graphs they
stand in for, so the preserved *shape* properties are visible at a glance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.eval.workloads import GRAPHS, load_graph
from repro.graph.stats import compute_stats

FIGURE_TITLE = "Table 1: input graphs and their statistics (synthetic analogs)"
FIGURE_HEADERS = (
    "graph",
    "paper graph",
    "|V|",
    "|E|",
    "|E|/|V|",
    "max deg",
    "diam>=",
    "MB",
)

PAPER_ROWS = {
    # paper graph: (|V|, |E|, ratio, max degree)
    "road-europe": ("173M", "365M", 2, 16),
    "friendster": ("41M", "2B", 58, "3M"),
    "clueweb12": ("978M", "85B", 87, "7K"),
    "wdc12": ("3B", "256B", 72, "95B"),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_graph_statistics(benchmark, name, figure_report):
    spec = GRAPHS[name]

    def build_and_measure():
        graph = load_graph(name)
        return compute_stats(name, graph)

    stats = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = stats.num_nodes
    benchmark.extra_info["edges"] = stats.num_edges
    benchmark.extra_info["max_degree"] = stats.max_degree
    record(
        __name__,
        (
            name,
            spec.paper_name,
            stats.num_nodes,
            stats.num_edges,
            round(stats.avg_degree, 1),
            stats.max_degree,
            stats.approx_diameter,
            round(stats.size_mb, 2),
        ),
    )
    # Shape assertions: the signatures Table 1 documents must survive the
    # scale-down (high diameter + tiny degrees for road, hubs for the rest).
    if name == "road":
        assert stats.max_degree <= 16
        assert stats.approx_diameter >= 20
    else:
        assert stats.max_degree > 10 * stats.avg_degree
