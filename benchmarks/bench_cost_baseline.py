#!/usr/bin/env python
"""COST guardrail: simulator configurations vs single-threaded loops.

"Scalability! But at what COST?" (McSherry et al.) asks of every parallel
system: which Configuration Outperforms a Single Thread? This bench
applies that discipline to the reproduction's own execution backends.
Per app (PageRank, SSSP, CC-LP) it times three single-thread yardsticks
and the full backend configuration matrix on the same workload:

* ``straight`` - :data:`repro.baselines.cost.COST_STRAIGHT`: the same
  round-based algorithm the simulated app runs, as one plain Python
  loop over the CSR arrays (no simulator, no metering).
* ``tuned`` - :data:`repro.baselines.cost.COST_BASELINES`: the best
  sequential algorithm (Dijkstra, union-find; PageRank's straight loop
  is already the tuned one).
* ``scalar j1`` - the simulator's own single-threaded scalar reference
  configuration, producing the full metered deliverable (counters,
  modeled seconds, traces).

For each yardstick the report lists the cheapest winning configuration -
fewest cores first, then wall clock - or ``unbounded`` when no
configuration wins. The honest headline matches the COST paper's: at
bench scales, the metered simulator does **not** beat the tuned (or even
the straight same-algorithm) Python loop for the frontier apps - that
unbounded external COST is the paper's reproduced finding, printed, not
hidden. The CI floor therefore gates on the internal yardstick: when
armed (>=4 cores or ``REPRO_BENCH_REQUIRE_SPEEDUP=1``, the
arm-only-in-CI pattern), PageRank, SSSP, and CC-LP must each report a
configuration that beats the single-thread scalar baseline, so
codegen/bulk/parallel gains are always re-proven against a single
thread and the external COST columns are always published next to them.

Every configuration's final property values are verified against the
baseline oracles (PageRank to 1e-9 absolute - the vectorized fold order
differs - SSSP and CC exactly); any divergence exits non-zero
regardless of gating.

Outputs ``benchmarks/reports/bench_cost_baseline.{json,txt}`` in the
standard ``repro-bench-report/v1`` schema. ``REPRO_BENCH_FAST=1``
shrinks the matrix, ``REPRO_BENCH_SCALE`` rescales the graphs (larger
scales amortize per-round machinery and move the external COST
frontier).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.baselines.cost import (  # noqa: E402
    COST_BASELINES,
    COST_STRAIGHT,
    cost_pagerank,
)
from repro.eval.harness import run_kimbap  # noqa: E402
from repro.eval.workloads import load_graph  # noqa: E402

REPORT_SCHEMA = "repro-bench-report/v1"
TITLE = "COST guardrail: cheapest configuration beating a single thread"
PR_TOLERANCE = 1e-9
# Configuration matrix: (column key, bulk flag, jobs, codegen, cores).
# ``cores`` is the configuration's price in the COST ordering - cheapest
# (fewest cores, then fastest) winning configuration is the app's COST.
MATRIX = (
    ("scalar_j1", False, 1, None, 1),
    ("bulk_nocg_j1", True, 1, False, 1),
    ("bulk_j1", True, 1, None, 1),
    ("bulk_j2", True, 2, None, 2),
    ("bulk_j4", True, 4, None, 4),
)
YARDSTICKS = ("straight", "tuned", "scalar")
HEADERS = (
    "app",
    "graph",
    "straight(s)",
    "tuned(s)",
    "scalar j1(s)",
    "bulk nocg(s)",
    "bulk j1(s)",
    "bulk j2(s)",
    "bulk j4(s)",
    "frontier codegen",
    "COST straight",
    "COST tuned",
    "COST scalar",
    "values",
)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def gate_cost() -> bool:
    """The COST floor is armed exactly like the speedup gates: forced by
    env, or automatically on runners with at least 4 real cores."""
    forced = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "")
    if forced not in ("", "0"):
        return True
    return (os.cpu_count() or 1) >= 4


def matrix() -> tuple:
    if fast_mode():
        return tuple(entry for entry in MATRIX if entry[0] != "bulk_j2")
    return MATRIX


def repetitions() -> int:
    return 1 if fast_mode() else 2


def best_of(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def baseline_values(app: str, graph) -> list:
    if app == "PR":
        return cost_pagerank(graph)[0]
    return COST_BASELINES[app](graph)


def values_diverge(app: str, values: dict, oracle: list) -> bool:
    """Compare a run's final per-node values against the baseline oracle:
    PR to a tight absolute tolerance (vectorized fold order differs),
    SSSP/CC exactly."""
    if len(values) != len(oracle):
        return True
    for node, expected in enumerate(oracle):
        got = values[node]
        if app == "PR":
            if abs(got - expected) > PR_TOLERANCE:
                return True
        elif got != expected:
            return True
    return False


def cheapest_winner(yardstick_s: float, configs: list[dict]) -> dict | None:
    """The app's COST against one yardstick: the cheapest configuration
    (fewest cores, then fastest) whose wall clock beats it."""
    winners = [c for c in configs if c["wallclock_s"] < yardstick_s]
    if not winners:
        return None
    return min(winners, key=lambda c: (c["cores"], c["wallclock_s"]))


def run_cell(app: str, graph_name: str, hosts: int) -> dict:
    reps = repetitions()
    graph = load_graph(graph_name, weighted=(app == "SSSP"))
    oracle = baseline_values(app, graph)
    baseline_s = {
        "straight": best_of(lambda: COST_STRAIGHT[app](graph), reps),
        "tuned": best_of(lambda: COST_BASELINES[app](graph), reps),
    }
    configs = []
    diverged = []
    for key, bulk, jobs, codegen, cores in matrix():
        result = run_kimbap(
            app, graph_name, hosts, graph=graph, bulk=bulk, jobs=jobs,
            codegen=codegen,
        )
        if values_diverge(app, result.values, oracle):
            diverged.append(key)
        wallclock = best_of(
            lambda: run_kimbap(
                app, graph_name, hosts, graph=graph, bulk=bulk, jobs=jobs,
                codegen=codegen,
            ),
            reps,
        )
        configs.append({"key": key, "cores": cores, "wallclock_s": wallclock})
    by_key = {c["key"]: c for c in configs}
    baseline_s["scalar"] = by_key["scalar_j1"]["wallclock_s"]
    # Generated kernels (incl. the frontier-aware SSSP/CC-LP ones) vs the
    # interpreted bulk pipeline at the same single-core configuration -
    # the same contrast the wall-clock bench gates on, published here so
    # the COST table shows what codegen itself buys.
    frontier_codegen = (
        by_key["bulk_nocg_j1"]["wallclock_s"] / by_key["bulk_j1"]["wallclock_s"]
        if by_key["bulk_j1"]["wallclock_s"] > 0
        else float("inf")
    )
    # The scalar reference cannot win against itself; every other
    # configuration competes against every yardstick.
    cost = {
        yardstick: cheapest_winner(
            baseline_s[yardstick],
            [c for c in configs if c["key"] != "scalar_j1"],
        )
        for yardstick in YARDSTICKS
    }
    return {
        "app": app,
        "graph": graph_name,
        "hosts": hosts,
        "baseline_s": baseline_s,
        "configs": configs,
        "frontier_codegen": frontier_codegen,
        "cost": {
            yardstick: (winner["key"] if winner else None)
            for yardstick, winner in cost.items()
        },
        "identical": not diverged,
        "diverged": diverged,
    }


def main() -> int:
    cells = [
        run_cell("PR", "powerlaw", 4),
        run_cell("SSSP", "powerlaw", 4),
        run_cell("CC-LP", "powerlaw", 4),
    ]

    from repro.eval.reporting import format_table

    def seconds(cell: dict, key: str) -> str:
        config = next((c for c in cell["configs"] if c["key"] == key), None)
        return f"{config['wallclock_s']:.3f}" if config else "-"

    printable = [
        (
            cell["app"],
            cell["graph"],
            f"{cell['baseline_s']['straight']:.3f}",
            f"{cell['baseline_s']['tuned']:.3f}",
            seconds(cell, "scalar_j1"),
            seconds(cell, "bulk_nocg_j1"),
            seconds(cell, "bulk_j1"),
            seconds(cell, "bulk_j2"),
            seconds(cell, "bulk_j4"),
            f"{cell['frontier_codegen']:.2f}x",
            cell["cost"]["straight"] or "unbounded",
            cell["cost"]["tuned"] or "unbounded",
            cell["cost"]["scalar"] or "unbounded",
            "ok" if cell["identical"] else "DIVERGED",
        )
        for cell in cells
    ]
    text = f"\n\n===== {TITLE} =====\n" + format_table(HEADERS, printable) + "\n"
    print(text)

    reports_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    with open(os.path.join(reports_dir, "bench_cost_baseline.txt"), "w") as handle:
        handle.write(text)
    report = {
        "schema": REPORT_SCHEMA,
        "module": "bench_cost_baseline",
        "title": TITLE,
        "headers": list(HEADERS),
        "results": [],
        "rows": [list(row) for row in printable],
        "cells": cells,
        "matrix": [list(entry) for entry in matrix()],
        "yardsticks": list(YARDSTICKS),
        "cpu_count": os.cpu_count(),
        "cost_gated": gate_cost(),
        "fast_mode": fast_mode(),
    }
    with open(os.path.join(reports_dir, "bench_cost_baseline.json"), "w") as handle:
        json.dump(report, handle, indent=1)

    failed = False
    for cell in cells:
        for key in cell["diverged"]:
            failed = True
            print(
                f"VALUE DIVERGENCE: {cell['app']} on {cell['graph']} @ "
                f"{cell['hosts']} hosts - {key} final values diverged from "
                "the single-threaded baseline oracle",
                file=sys.stderr,
            )
        if gate_cost() and cell["cost"]["scalar"] is None:
            failed = True
            print(
                f"COST FAILURE: {cell['app']} on {cell['graph']} @ "
                f"{cell['hosts']} hosts - no configuration beats the "
                "single-thread scalar baseline "
                f"({cell['baseline_s']['scalar']:.3f}s, "
                f"cpu_count={os.cpu_count()})",
                file=sys.stderr,
            )
    if failed:
        return 1
    for cell in cells:
        print(
            f"{cell['app']}: COST vs straight loop = "
            f"{cell['cost']['straight'] or 'unbounded'}, vs tuned loop = "
            f"{cell['cost']['tuned'] or 'unbounded'}, vs scalar config = "
            f"{cell['cost']['scalar'] or 'unbounded'} "
            f"(straight {cell['baseline_s']['straight']:.3f}s, tuned "
            f"{cell['baseline_s']['tuned']:.3f}s, scalar "
            f"{cell['baseline_s']['scalar']:.3f}s)"
        )
    print(f"cpu_count={os.cpu_count()}, gated={gate_cost()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
