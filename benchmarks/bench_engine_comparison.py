#!/usr/bin/env python
"""Engine comparison: BSP rounds vs async priority/delta scheduling.

Section 4.1 of the paper rejects asynchronous execution ("may hide
communication overheads, but may generate a large number of messages...")
in favor of batched BSP rounds. The engine layer (``repro.exec.engine``)
makes that a measurable choice instead of a hand-rolled argument: per app
(PR, SSSP, CC-LP) and per partitioning policy this bench runs the same
operator plan under

* ``bsp`` - the round-synchronous oracle (``BSPEngine``), and
* ``async`` - the priority/delta engine (``AsyncEngine``): highest
  residual first, no global barrier, eager per-update cross-host
  messages, one final materialization;

and, for CC-LP, the historical ``baselines/async_mode.py`` eager-LP
implementation as a third yardstick row (the paper-faithful strawman the
engine layer supersedes). Each row reports updates-to-convergence,
rounds/chunks, messages, and modeled seconds; every async run's final
values are checked against the BSP oracle with
:func:`repro.verify.check_equivalent_values` (exact for the monotone
apps, the plan's residual tolerance for PR) and any divergence exits
non-zero.

The quantitative headline this produces: on road-like graphs the
priority/delta schedule converges in far fewer updates than BSP runs
rounds x nodes, and the ASYNC_COMPUTE cost rule (communication priced
only where it exceeds compute) models the "hide communication" half of
the paper's sentence - while the eager Async-LP baseline still loses on
messages, which is the half the paper kept.

Outputs ``benchmarks/reports/bench_engine_comparison.{json,txt}`` in the
standard ``repro-bench-report/v1`` schema. ``REPRO_BENCH_FAST=1`` shrinks
the policy sweep.
"""

from __future__ import annotations

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.baselines.async_mode import async_cc_lp  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.eval.harness import APP_WEIGHTED, KIMBAP_APPS  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.eval.workloads import load_graph  # noqa: E402
from repro.exec import Executor  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.verify import VerificationError, check_equivalent_values  # noqa: E402

REPORT_SCHEMA = "repro-bench-report/v1"
TITLE = "Execution engines: BSP rounds vs async priority/delta scheduling"
GRAPH = "road"
HOSTS = 4
THREADS = 48
APPS = ("PR", "SSSP", "CC-LP")
POLICIES = ("oec", "iec", "cvc", "hvc")
# Value-equivalence tolerance vs the BSP oracle: monotone label-correcting
# apps land on the exact fixed point under any schedule; delta-PR
# accumulates in a different order and agrees to the residual tolerance.
TOLERANCE = {"PR": 1e-6, "SSSP": 1e-9, "CC-LP": 0.0}
HEADERS = (
    "app",
    "policy",
    "engine",
    "rounds",
    "updates",
    "msgs",
    "comp(s)",
    "comm(s)",
    "total(s)",
    "values",
)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def policies() -> tuple[str, ...]:
    return ("cvc", "hvc") if fast_mode() else POLICIES


def total_node_iters(cluster: Cluster) -> int:
    """BSP's updates-to-convergence analog: node visits across all phases."""
    return sum(
        counters.node_iters
        for phase in cluster.log.phases
        for counters in phase.counters
    )


def run_engine(app: str, policy: str, graph, engine: str) -> dict:
    pgraph = partition(graph, HOSTS, policy)
    cluster = Cluster(HOSTS, threads_per_host=THREADS)
    executor = Executor(cluster, engine=engine)
    try:
        result = KIMBAP_APPS[app](cluster, pgraph, executor=executor)
    finally:
        executor.close()
    elapsed = cluster.elapsed()
    cell = {
        "app": app,
        "policy": policy,
        "engine": engine,
        "rounds": result.rounds,
        "updates": total_node_iters(cluster),
        "messages": cluster.log.total_messages(),
        "computation_s": elapsed.computation,
        "communication_s": elapsed.communication,
        "total_s": elapsed.total,
        "values": result.values,
    }
    if engine == "async":
        cell["rounds"] = executor.engine.last_chunks
        cell["updates"] = executor.engine.last_updates
    return cell


def run_async_lp_baseline(policy: str, graph) -> dict:
    """The pre-engine eager strawman (one message per update, duplicate
    mirror forwards, per-update materialization) as a yardstick row."""
    pgraph = partition(graph, HOSTS, policy)
    cluster = Cluster(HOSTS, threads_per_host=THREADS)
    result = async_cc_lp(cluster, pgraph)
    elapsed = cluster.elapsed()
    return {
        "app": "CC-LP",
        "policy": policy,
        "engine": "async-lp",
        "rounds": result.rounds,
        "updates": total_node_iters(cluster),
        "messages": cluster.log.total_messages(),
        "computation_s": elapsed.computation,
        "communication_s": elapsed.communication,
        "total_s": elapsed.total,
        "values": result.values,
    }


def main() -> int:
    cells: list[dict] = []
    divergences: list[str] = []
    for app in APPS:
        graph = load_graph(GRAPH, weighted=APP_WEIGHTED.get(app, False))
        for policy in policies():
            bsp = run_engine(app, policy, graph, "bsp")
            asynchronous = run_engine(app, policy, graph, "async")
            rows = [bsp, asynchronous]
            if app == "CC-LP":
                rows.append(run_async_lp_baseline(policy, graph))
            for cell in rows[1:]:
                where = f"{app}/{policy}/{cell['engine']}"
                try:
                    check_equivalent_values(
                        bsp["values"], cell["values"], TOLERANCE[app]
                    )
                    cell["equivalent"] = True
                except VerificationError as error:
                    cell["equivalent"] = False
                    divergences.append(f"{where}: {error}")
            bsp["equivalent"] = True  # the oracle row
            cells.extend(rows)

    printable = [
        (
            cell["app"],
            cell["policy"],
            cell["engine"],
            cell["rounds"],
            cell["updates"],
            cell["messages"],
            f"{cell['computation_s']:.3f}",
            f"{cell['communication_s']:.3f}",
            f"{cell['total_s']:.3f}",
            (
                "oracle"
                if cell["engine"] == "bsp"
                else ("ok" if cell["equivalent"] else "DIVERGED")
            ),
        )
        for cell in cells
    ]
    text = f"\n\n===== {TITLE} =====\n" + format_table(HEADERS, printable) + "\n"
    print(text)

    reports_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    with open(
        os.path.join(reports_dir, "bench_engine_comparison.txt"), "w"
    ) as handle:
        handle.write(text)
    report = {
        "schema": REPORT_SCHEMA,
        "module": "bench_engine_comparison",
        "title": TITLE,
        "headers": list(HEADERS),
        "results": [],
        "rows": [list(row) for row in printable],
        "cells": [
            {key: value for key, value in cell.items() if key != "values"}
            for cell in cells
        ],
        "graph": GRAPH,
        "hosts": HOSTS,
        "policies": list(policies()),
        "tolerance": TOLERANCE,
        "fast_mode": fast_mode(),
    }
    with open(
        os.path.join(reports_dir, "bench_engine_comparison.json"), "w"
    ) as handle:
        json.dump(report, handle, indent=1)

    for line in divergences:
        print(f"VALUE DIVERGENCE: {line}", file=sys.stderr)
    if divergences:
        return 1
    for app in APPS:
        app_cells = [c for c in cells if c["app"] == app]
        bsp_total = sum(c["total_s"] for c in app_cells if c["engine"] == "bsp")
        async_total = sum(
            c["total_s"] for c in app_cells if c["engine"] == "async"
        )
        if async_total:
            print(
                f"{app}: async modeled speedup over BSP across policies = "
                f"{bsp_total / async_total:.2f}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
