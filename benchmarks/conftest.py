"""Shared benchmark plumbing.

Each benchmark module accumulates :class:`RunResult` rows into a
module-level registry; the ``figure_report`` fixture prints the assembled
paper-style table after the module's cells all ran. Wall-clock timings from
pytest-benchmark measure the simulator itself; the *modeled* seconds (the
paper-comparable numbers) are attached as ``extra_info`` and printed in the
report tables.

Set ``REPRO_BENCH_FAST=1`` to run a reduced sweep (fewer host counts), and
``REPRO_BENCH_SCALE`` to grow/shrink the workload graphs.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

import pytest

_RESULTS: dict[str, list] = defaultdict(list)

REPORT_SCHEMA = "repro-bench-report/v1"


def record(module: str, result) -> None:
    _RESULTS[module].append(result)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def host_counts(full: tuple[int, ...], fast: tuple[int, ...]) -> tuple[int, ...]:
    return fast if fast_mode() else full


@pytest.fixture(scope="module")
def figure_report(request):
    """Yields the module's row registry; prints the table afterwards."""
    module = request.module.__name__
    yield _RESULTS[module]
    rows = _RESULTS[module]
    if not rows:
        return
    from repro.eval.reporting import format_table

    printable = []
    for row in rows:
        if hasattr(row, "row"):
            printable.append(row.row())
        else:
            printable.append(row)
    title = getattr(request.module, "FIGURE_TITLE", module)
    headers = getattr(
        request.module,
        "FIGURE_HEADERS",
        ("system", "app", "graph", "hosts", "comp(s)", "comm(s)", "total(s)"),
    )
    text = f"\n\n===== {title} =====\n" + format_table(headers, printable) + "\n"
    print(text)
    # Also persist: pytest captures stdout unless -s is passed, so every
    # report lands under benchmarks/reports/ for EXPERIMENTS.md.
    reports_dir = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    short = module.rsplit(".", 1)[-1]
    with open(os.path.join(reports_dir, f"{short}.txt"), "w") as handle:
        handle.write(text)
    # Machine-readable twin of the text table: every RunResult row lands in
    # the JSON report under "results" (the BENCH_*.json perf trajectory);
    # pre-formatted tuple rows are kept verbatim under "rows".
    report = {
        "schema": REPORT_SCHEMA,
        "module": short,
        "title": title,
        "headers": list(headers),
        "results": [row.to_dict() for row in rows if hasattr(row, "to_dict")],
        "rows": [list(row) for row in rows if not hasattr(row, "to_dict")],
    }
    with open(os.path.join(reports_dir, f"{short}.json"), "w") as handle:
        json.dump(report, handle, indent=1)
