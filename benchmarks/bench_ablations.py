"""Ablations beyond the paper's own (DESIGN.md section 6).

1. **GAR remote layout** - sorted arrays + binary search (Figure 6) vs a
   hash map for the requested-remote cache.
2. **CF combining step** - key-range dealing across threads vs a single
   combining thread.
3. **Request deduplication** - the concurrent bitset vs raw (duplicated)
   request streams; pointer jumping on a star graph makes every node
   request the hub's parent, the worst case dedup exists for.
4. **Early termination** - Vite's 75%-skip heuristic, which the paper
   deliberately did not port to Kimbap, applied to Vite here to measure
   what it buys.
"""

from __future__ import annotations

from benchmarks.conftest import record
from repro.algorithms.common import shortcut_until_flat
from repro.cluster import Cluster
from repro.core import NodePropMap
from repro.eval.harness import run_vite
from repro.eval.workloads import load_graph
from repro.graph import generators
from repro.partition import partition

FIGURE_TITLE = "Ablations: GAR layout, CF combine, request dedup, early termination"
FIGURE_HEADERS = ("ablation", "arm", "comp(s)", "comm(s)", "total(s)", "note")


def pointer_jump_workload(cluster, pgraph, **map_kwargs):
    """A shortcut-heavy workload: flatten a long parent chain."""
    parent = NodePropMap(cluster, pgraph, "parent", **map_kwargs)
    parent.set_initial(lambda node: max(node - 1, 0))
    rounds = shortcut_until_flat(cluster, pgraph, parent)
    assert all(v == 0 for v in parent.snapshot().values())
    return rounds


class TestGarLayout:
    def test_sorted_arrays_beat_hash_cache(self, benchmark, figure_report):
        graph = generators.path(512)

        def run_both():
            times = {}
            for layout in ("sorted", "hash"):
                pgraph = partition(graph, 8, "oec")
                cluster = Cluster(8, threads_per_host=48)
                pointer_jump_workload(cluster, pgraph, remote_layout=layout)
                times[layout] = cluster.elapsed()
            return times

        times = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for layout, elapsed in times.items():
            record(
                __name__,
                (
                    "gar-layout",
                    layout,
                    round(elapsed.computation, 3),
                    round(elapsed.communication, 3),
                    round(elapsed.total, 3),
                    "binary search vs hash probes",
                ),
            )
        benchmark.extra_info["sorted_s"] = times["sorted"].total
        benchmark.extra_info["hash_s"] = times["hash"].total
        # A hash probe costs ~4x a binary-search step; with caches of a few
        # hundred entries (log2 ~ 9 steps) the sorted layout should win or
        # tie - and must never lose badly.
        assert times["sorted"].total < 1.5 * times["hash"].total


class TestCfCombine:
    def test_parallel_combine_beats_serial(self, benchmark, figure_report):
        graph = generators.powerlaw_like(8, seed=5)

        def run_both():
            times = {}
            for serial in (False, True):
                pgraph = partition(graph, 4, "cvc")
                cluster = Cluster(4, threads_per_host=48)
                pointer_jump_workload(cluster, pgraph, serial_combine=serial)
                times["serial" if serial else "parallel"] = cluster.elapsed()
            return times

        times = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for arm, elapsed in times.items():
            record(
                __name__,
                (
                    "cf-combine",
                    arm,
                    round(elapsed.computation, 3),
                    round(elapsed.communication, 3),
                    round(elapsed.total, 3),
                    "key-range dealing vs single thread",
                ),
            )
        assert times["parallel"].total < times["serial"].total


class TestRequestDedup:
    def test_bitset_dedup_cuts_request_traffic(self, benchmark, figure_report):
        # Star: every leaf's shortcut requests the hub's parent - thousands
        # of duplicate requests without the bitset.
        graph = generators.star(600)

        def run_both():
            out = {}
            for dedup in (True, False):
                pgraph = partition(graph, 6, "oec")
                cluster = Cluster(6, threads_per_host=48)
                parent = NodePropMap(
                    cluster, pgraph, "parent", request_dedup=dedup
                )
                parent.set_initial(lambda node: 0)
                # every leaf requests the hub's (node 0's) parent
                from repro.cluster.metrics import PhaseKind
                from repro.runtime import par_for

                def request(ctx):
                    parent.request(ctx.host, 0)

                par_for(
                    cluster,
                    pgraph,
                    "masters",
                    request,
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
                parent.request_sync()
                out["dedup" if dedup else "raw"] = (
                    cluster.elapsed(),
                    cluster.log.total_bytes(),
                )
            return out

        results = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for arm, (elapsed, total_bytes) in results.items():
            record(
                __name__,
                (
                    "request-dedup",
                    arm,
                    round(elapsed.computation, 3),
                    round(elapsed.communication, 3),
                    round(elapsed.total, 3),
                    f"{total_bytes} bytes requested",
                ),
            )
        assert results["dedup"][1] < results["raw"][1]
        assert results["dedup"][0].total <= results["raw"][0].total


class TestAsyncExecution:
    def test_bsp_batching_beats_eager_async(self, benchmark, figure_report):
        """Section 4.1's design choice: asynchronous execution converges in
        fewer sweeps but pays per-update messages, duplicates, and
        materialization; BSP's batched, deduplicated rounds win."""
        from repro.algorithms import cc_lp
        from repro.baselines import async_cc_lp
        from repro.cluster import Cluster
        from repro.partition import partition

        graph = load_graph("powerlaw")

        def run_both():
            out = {}
            for name, algorithm in (("bsp", cc_lp), ("async", async_cc_lp)):
                pgraph = partition(graph, 8, "cvc")
                cluster = Cluster(8, threads_per_host=48)
                result = algorithm(cluster, pgraph)
                out[name] = (result, cluster)
            return out

        results = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for name, (result, cluster) in results.items():
            elapsed = cluster.elapsed()
            record(
                __name__,
                (
                    "execution-model",
                    name,
                    round(elapsed.computation, 3),
                    round(elapsed.communication, 3),
                    round(elapsed.total, 3),
                    f"{cluster.log.total_messages()} msgs, "
                    f"{result.rounds} rounds",
                ),
            )
        bsp_result, bsp_cluster = results["bsp"]
        async_result, async_cluster = results["async"]
        assert bsp_result.values == async_result.values
        assert async_result.rounds <= bsp_result.rounds  # async converges faster
        assert async_cluster.log.total_messages() > 5 * bsp_cluster.log.total_messages()
        assert bsp_cluster.elapsed().total < async_cluster.elapsed().total


class TestEarlyTermination:
    def test_heuristic_trades_quality_for_time(self, benchmark, figure_report):
        def run_both():
            out = {}
            for early in (False, True):
                result = run_vite("powerlaw", 4, early_termination=early, seed=2)
                out["early-term" if early else "plain"] = result
            return out

        results = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for arm, result in results.items():
            record(
                __name__,
                (
                    "vite-early-termination",
                    arm,
                    round(result.time.computation, 3),
                    round(result.time.communication, 3),
                    round(result.total, 3),
                    f"Q={result.stats['modularity']:.3f}",
                ),
            )
        # the heuristic must not wreck quality
        assert (
            results["early-term"].stats["modularity"]
            > results["plain"].stats["modularity"] - 0.1
        )
