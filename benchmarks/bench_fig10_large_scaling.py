"""Figure 10: strong scaling on large graphs (32-256 hosts).

The clueweb12 / wdc12 analogs run with the paper's host counts (web: 32,
64, 128; web_xl: 128, 256). Vite timed out on these in the paper, so only
Kimbap and Gluon appear. LD runs on the web analog only (on wdc12 the
paper's LD goes out of memory).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fast_mode, record
from repro.eval.harness import run_gluon, run_kimbap
from repro.eval.workloads import GRAPHS

FIGURE_TITLE = "Figure 10: strong scaling, large graphs (modeled seconds)"


def cells() -> list[tuple[str, int]]:
    out = []
    for name in ("web", "web_xl"):
        counts = GRAPHS[name].host_counts
        if fast_mode():
            counts = counts[:1]
        out.extend((name, hosts) for hosts in counts)
    return out


CELLS = cells()


@pytest.mark.parametrize("graph,hosts", CELLS)
def test_fig10a_lv(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("LV", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["modularity"] > 0


@pytest.mark.parametrize(
    "graph,hosts", [(g, h) for g, h in CELLS if g == "web"]
)
def test_fig10b_ld(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("LD", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total


@pytest.mark.parametrize("graph,hosts", CELLS)
def test_fig10c_cc(benchmark, graph, hosts, figure_report):
    def run_all():
        return {
            "Gluon-LP": run_gluon(graph, hosts),
            "Kimbap-LP": run_kimbap("CC-LP", graph, hosts, bulk=True),
            "Kimbap-SCLP": run_kimbap("CC-SCLP", graph, hosts),
            "Kimbap-SV": run_kimbap("CC-SV", graph, hosts),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results.values():
        record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = results["Kimbap-LP"].total
    # Power-law web crawls at high host counts: LP-style propagation wins
    # and stays comparable to Gluon.
    ratio = results["Kimbap-LP"].total / results["Gluon-LP"].total
    assert 0.3 < ratio < 3.0
    fastest = min(results.values(), key=lambda r: r.total)
    assert fastest.app == "CC-LP" or fastest.system == "Gluon"


@pytest.mark.parametrize("graph,hosts", CELLS)
def test_fig10d_msf(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("MSF", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["forest_edges"] > 0


@pytest.mark.parametrize("graph,hosts", CELLS)
def test_fig10e_mis(benchmark, graph, hosts, figure_report):
    result = benchmark.pedantic(
        lambda: run_kimbap("MIS", graph, hosts), rounds=1, iterations=1
    )
    record(__name__, result)
    benchmark.extra_info["modeled_total_s"] = result.total
    assert result.stats["set_size"] > 0
