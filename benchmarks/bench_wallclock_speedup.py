#!/usr/bin/env python
"""Wall-clock speedup of the bulk execution path over the scalar reference.

Standalone script (no pytest dependency - CI's smoke job runs it directly):
for each app cell it runs the scalar and the bulk path on the same workload,
times both with ``time.perf_counter``, and **asserts the byte-identical
equivalence contract** - ``RunResult.to_dict()`` (counters, conflict counts,
modeled seconds, traces) and the final property values must match exactly.
Any divergence exits non-zero, so the CI smoke job doubles as the
equivalence gate.

Outputs ``benchmarks/reports/bench_wallclock_speedup.{json,txt}`` in the
standard ``repro-bench-report/v1`` schema. Environment knobs match the
pytest benchmarks: ``REPRO_BENCH_FAST=1`` shrinks the sweep to the
equivalence-critical cells, ``REPRO_BENCH_SCALE`` rescales the graphs.
"""

from __future__ import annotations

import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.harness import run_kimbap  # noqa: E402
from repro.eval.workloads import load_graph  # noqa: E402

REPORT_SCHEMA = "repro-bench-report/v1"
TITLE = "Bulk vs scalar execution path: wall-clock speedup (byte-identical metrics)"
HEADERS = (
    "app",
    "graph",
    "hosts",
    "scalar(s)",
    "bulk(s)",
    "speedup",
    "modeled(s)",
    "identical",
)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def cells() -> list[tuple[str, str, int]]:
    # The headline cell is PR on the Fig-9 power-law medium graph at 4
    # hosts; SSSP and CC-LP ride along as the other two ported apps.
    sweep = [
        ("PR", "powerlaw", 4),
        ("SSSP", "powerlaw", 4),
        ("CC-LP", "powerlaw", 4),
    ]
    if not fast_mode():
        sweep += [
            ("PR", "road", 4),
            ("CC-LP", "road", 4),
            ("PR", "powerlaw", 16),
        ]
    return sweep


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run_cell(app: str, graph_name: str, hosts: int) -> dict:
    graph = load_graph(graph_name, weighted=(app == "SSSP"))
    start = time.perf_counter()
    scalar = run_kimbap(app, graph_name, hosts, graph=graph, bulk=False)
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    bulk = run_kimbap(app, graph_name, hosts, graph=graph, bulk=True)
    bulk_s = time.perf_counter() - start
    identical = canonical(scalar) == canonical(bulk) and scalar.values == bulk.values
    return {
        "app": app,
        "graph": graph_name,
        "hosts": hosts,
        "scalar_wallclock_s": scalar_s,
        "bulk_wallclock_s": bulk_s,
        "speedup": scalar_s / bulk_s if bulk_s > 0 else float("inf"),
        "modeled_total_s": bulk.total,
        "identical": identical,
    }


def main() -> int:
    rows = [run_cell(*cell) for cell in cells()]

    from repro.eval.reporting import format_table

    printable = [
        (
            r["app"],
            r["graph"],
            r["hosts"],
            f"{r['scalar_wallclock_s']:.3f}",
            f"{r['bulk_wallclock_s']:.3f}",
            f"{r['speedup']:.1f}x",
            f"{r['modeled_total_s']:.4f}",
            "yes" if r["identical"] else "DIVERGED",
        )
        for r in rows
    ]
    text = f"\n\n===== {TITLE} =====\n" + format_table(HEADERS, printable) + "\n"
    print(text)

    reports_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    with open(os.path.join(reports_dir, "bench_wallclock_speedup.txt"), "w") as handle:
        handle.write(text)
    report = {
        "schema": REPORT_SCHEMA,
        "module": "bench_wallclock_speedup",
        "title": TITLE,
        "headers": list(HEADERS),
        "results": [],
        "rows": [list(row) for row in printable],
        "cells": rows,
        "fast_mode": fast_mode(),
    }
    with open(os.path.join(reports_dir, "bench_wallclock_speedup.json"), "w") as handle:
        json.dump(report, handle, indent=1)

    diverged = [r for r in rows if not r["identical"]]
    if diverged:
        for r in diverged:
            print(
                f"EQUIVALENCE FAILURE: {r['app']} on {r['graph']} @ {r['hosts']} "
                "hosts - bulk RunResult.to_dict() diverged from scalar",
                file=sys.stderr,
            )
        return 1
    headline = rows[0]
    print(
        f"headline: {headline['app']} {headline['graph']}@{headline['hosts']} "
        f"speedup {headline['speedup']:.1f}x (scalar {headline['scalar_wallclock_s']:.3f}s, "
        f"bulk {headline['bulk_wallclock_s']:.3f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
