#!/usr/bin/env python
"""Wall-clock speedup of the bulk, codegen, and host-parallel paths.

Standalone script (no pytest dependency - CI's smoke job runs it directly):
for each app cell it runs the full backend matrix on the same workload -
scalar ``jobs=1`` (the oracle), scalar ``jobs=4``, interpreted bulk
``jobs=1`` (``codegen=False``), generated-kernel bulk ``jobs=1``
(``repro.exec.codegen``, the bulk default), and bulk ``jobs=2/4``
(host-shard process parallelism, ``repro.exec.pool``) - times every
variant with ``time.perf_counter`` over a cell-shared prebuilt
partition (graph loading/partitioning is excluded from the measured
region, matching how the paper reports execution time), and **asserts
the byte-identical equivalence contract** against the scalar oracle: ``RunResult.to_dict()``
(counters, conflict counts, modeled seconds, traces) and the final
property values must match exactly. Any divergence exits non-zero, so
the CI smoke job doubles as the equivalence gate.

On runners with at least 4 cores the script additionally gates on real
parallel speedup: the headline cell's scalar ``jobs=4`` run must beat
scalar ``jobs=1`` by ``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` (default 1.8x),
bulk ``jobs=2`` must beat bulk ``jobs=1`` by
``REPRO_BENCH_MIN_BULK_J2_SPEEDUP`` (default 1.3x), and generated
kernels must beat the interpreted bulk path by
``REPRO_BENCH_MIN_CODEGEN_SPEEDUP`` (default 1.2x) at the same jobs=1
configuration (that ratio is core-count independent, but it shares the
gate switch so loaded single-core machines never fail on timer noise).
The full (non-fast) sweep additionally runs the **SSSP frontier-codegen
floor** (``FRONTIER_FLOOR_CELL``): road SSSP at scale 4 - the
hundreds-of-rounds wavefront workload the compiled frontier kernels of
``repro.exec.codegen.PreparedFrontierPush`` exist for - timed min-of-N
interpreted vs generated, gated on the same
``REPRO_BENCH_MIN_CODEGEN_SPEEDUP`` floor and on byte-identical
results. The scalar backend is
the easy parallelism demonstration: its compute phases dominate the run.
The bulk gate is the honest one (the COST caution of PAPERS.md): the
vectorized baseline is fast, so winning against it demands the
shared-memory aggregated exchange of ``repro.exec.pool`` - persistent
warm workers, one zero-copy bundle per worker per sync boundary - rather
than per-phase pickled round-trips. The report records the exchange
instrumentation (``bytes_exchanged``, ``segments_peak``) per cell so the
aggregation win is visible in the artifact.
Single-core machines still verify the full equivalence matrix - the
determinism contract is core-count independent - and record the measured
ratios without gating; set ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` to force the
gates regardless of core count.

Outputs ``benchmarks/reports/bench_wallclock_speedup.{json,txt}`` in the
standard ``repro-bench-report/v1`` schema. Environment knobs match the
pytest benchmarks: ``REPRO_BENCH_FAST=1`` shrinks the sweep to the
equivalence-critical cells, ``REPRO_BENCH_SCALE`` rescales the graphs.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.harness import APP_POLICY, run_kimbap  # noqa: E402
from repro.eval.workloads import load_graph  # noqa: E402
from repro.partition import partition  # noqa: E402

REPORT_SCHEMA = "repro-bench-report/v1"
TITLE = (
    "Bulk + host-parallel execution paths: wall-clock speedup "
    "(byte-identical metrics)"
)
# Backend matrix per cell: (column key, bulk flag, jobs, codegen). The
# scalar jobs=1 run is the oracle every other variant must match byte for
# byte; bulk_nocg_j1 pins the interpreted bulk kernels (codegen=False) as
# the honest baseline for the codegen speedup column.
MATRIX = (
    ("scalar_j1", False, 1, None),
    ("scalar_j4", False, 4, None),
    ("bulk_nocg_j1", True, 1, False),
    ("bulk_j1", True, 1, None),
    ("bulk_j2", True, 2, None),
    ("bulk_j4", True, 4, None),
)
HEADERS = (
    "app",
    "graph",
    "hosts",
    "scalar j1(s)",
    "scalar j4(s)",
    "bulk nocg(s)",
    "bulk j1(s)",
    "bulk j2(s)",
    "bulk j4(s)",
    "bulk/scalar",
    "codegen",
    "scalar j4/j1",
    "bulk j2/j1",
    "bulk j4/j1",
    "exchanged",
    "segs",
    "identical",
)


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def min_parallel_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "1.8"))


def min_bulk_j2_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_BULK_J2_SPEEDUP", "1.3"))


def min_codegen_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_CODEGEN_SPEEDUP", "1.2"))


def gate_speedup() -> bool:
    """The >=1.8x scalar jobs=4 gate needs 4 real cores; equivalence
    does not."""
    forced = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "")
    if forced not in ("", "0"):
        return True
    return (os.cpu_count() or 1) >= 4


def cells() -> list[tuple[str, str, int]]:
    # The headline cell is PR on the Fig-9 power-law medium graph at 4
    # hosts; SSSP and CC-LP ride along as the other two ported apps.
    sweep = [
        ("PR", "powerlaw", 4),
        ("SSSP", "powerlaw", 4),
        ("CC-LP", "powerlaw", 4),
    ]
    if not fast_mode():
        sweep += [
            ("PR", "road", 4),
            ("SSSP", "road", 4),
            ("CC-LP", "road", 4),
            ("PR", "powerlaw", 16),
        ]
    return sweep


# The SSSP frontier-codegen floor cell: app, graph, hosts, graph scale,
# timing repeats (min-of-N on each side). Road SSSP is the workload the
# frontier-aware kernels exist for - a high-diameter wavefront that runs
# hundreds of rounds over the same frozen decomposition - and the scale-4
# grid gives the compiled path enough rounds to amortize its one-time
# builds the way any real input would (the default bench analogs are
# ~10^4x smaller than the paper's graphs, so per-run constants loom
# disproportionately large at scale 0).
FRONTIER_FLOOR_CELL = ("SSSP", "road", 4, 4, 5)


def run_frontier_floor() -> dict:
    """Time interpreted-bulk vs generated frontier kernels head to head.

    Scalar oracles are impractical at this scale, so the equivalence
    check here is interpreted vs generated (both are matrix-verified
    against the scalar oracle at default scale above): byte-identical
    ``RunResult.to_dict()`` and final values, min-of-N wall-clock on
    each side. The repeats interleave (interpreted, generated) pairs so
    a monotonic system-load drift penalizes both sides equally instead
    of whichever ran second.
    """
    app, graph_name, hosts, scale, repeats = FRONTIER_FLOOR_CELL
    graph = load_graph(graph_name, weighted=(app == "SSSP"), scale=scale)
    pgraph = partition(graph, hosts, APP_POLICY[app])

    def timed(codegen):
        start = time.perf_counter()
        result = run_kimbap(
            app, graph_name, hosts, graph=graph, pgraph=pgraph,
            bulk=True, jobs=1, codegen=codegen,
        )
        return time.perf_counter() - start, result

    interp_s = codegen_s = math.inf
    interp = compiled = None
    for _ in range(repeats):
        elapsed, interp = timed(False)
        interp_s = min(interp_s, elapsed)
        elapsed, compiled = timed(None)
        codegen_s = min(codegen_s, elapsed)
    return {
        "app": app,
        "graph": graph_name,
        "hosts": hosts,
        "scale": scale,
        "repeats": repeats,
        "rounds": interp.rounds,
        "interpreted_s": interp_s,
        "codegen_s": codegen_s,
        "codegen_speedup": (
            interp_s / codegen_s if codegen_s > 0 else float("inf")
        ),
        "identical": (
            canonical(interp) == canonical(compiled)
            and interp.values == compiled.values
        ),
    }


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run_cell(app: str, graph_name: str, hosts: int) -> dict:
    graph = load_graph(graph_name, weighted=(app == "SSSP"))
    # One partition per cell, shared by every variant: the timed region
    # measures execution only, the same exclusion of graph loading and
    # partitioning time the paper's reported numbers use.
    pgraph = partition(graph, hosts, APP_POLICY[app])
    wallclock: dict[str, float] = {}
    results: dict[str, object] = {}
    for key, bulk, jobs, codegen in MATRIX:
        start = time.perf_counter()
        results[key] = run_kimbap(
            app, graph_name, hosts, graph=graph, pgraph=pgraph, bulk=bulk,
            jobs=jobs, codegen=codegen,
        )
        wallclock[key] = time.perf_counter() - start
    oracle = results["scalar_j1"]
    oracle_bytes = canonical(oracle)
    diverged = sorted(
        key
        for key, result in results.items()
        if key != "scalar_j1"
        and (canonical(result) != oracle_bytes or result.values != oracle.values)
    )
    # Exchange instrumentation of the widest parallel run (bulk jobs=4):
    # bytes through the shared arenas + pipe fallbacks, peak live
    # /dev/shm segments, forks, and warm (fork-free) pool reuses.
    parallel = getattr(results["bulk_j4"], "parallel", None) or {}
    return {
        "app": app,
        "graph": graph_name,
        "hosts": hosts,
        "wallclock_s": wallclock,
        "bulk_speedup": (
            wallclock["scalar_j1"] / wallclock["bulk_j1"]
            if wallclock["bulk_j1"] > 0
            else float("inf")
        ),
        "parallel_speedup": (
            wallclock["scalar_j1"] / wallclock["scalar_j4"]
            if wallclock["scalar_j4"] > 0
            else float("inf")
        ),
        "codegen_speedup": (
            wallclock["bulk_nocg_j1"] / wallclock["bulk_j1"]
            if wallclock["bulk_j1"] > 0
            else float("inf")
        ),
        "bulk_j2_speedup": (
            wallclock["bulk_j1"] / wallclock["bulk_j2"]
            if wallclock["bulk_j2"] > 0
            else float("inf")
        ),
        "bulk_parallel_speedup": (
            wallclock["bulk_j1"] / wallclock["bulk_j4"]
            if wallclock["bulk_j4"] > 0
            else float("inf")
        ),
        "bytes_exchanged": int(parallel.get("bytes_exchanged", 0)),
        "segments_peak": int(parallel.get("segments_peak", 0)),
        "pool_forks": int(parallel.get("forks", 0)),
        "pool_warm_runs": int(parallel.get("warm_runs", 0)),
        "modeled_total_s": oracle.total,
        "identical": not diverged,
        "diverged": diverged,
    }


def main() -> int:
    # The floor runs before the matrix: a fresh process gives it the
    # same memory layout every time, instead of whatever the full
    # matrix's allocator churn left behind.
    frontier_floor = None if fast_mode() else run_frontier_floor()
    rows = [run_cell(*cell) for cell in cells()]

    from repro.eval.reporting import format_table

    printable = [
        (
            r["app"],
            r["graph"],
            r["hosts"],
            f"{r['wallclock_s']['scalar_j1']:.3f}",
            f"{r['wallclock_s']['scalar_j4']:.3f}",
            f"{r['wallclock_s']['bulk_nocg_j1']:.3f}",
            f"{r['wallclock_s']['bulk_j1']:.3f}",
            f"{r['wallclock_s']['bulk_j2']:.3f}",
            f"{r['wallclock_s']['bulk_j4']:.3f}",
            f"{r['bulk_speedup']:.1f}x",
            f"{r['codegen_speedup']:.2f}x",
            f"{r['parallel_speedup']:.2f}x",
            f"{r['bulk_j2_speedup']:.2f}x",
            f"{r['bulk_parallel_speedup']:.2f}x",
            f"{r['bytes_exchanged'] / 1024:.0f}K",
            r["segments_peak"],
            "yes" if r["identical"] else "DIVERGED",
        )
        for r in rows
    ]
    text = f"\n\n===== {TITLE} =====\n" + format_table(HEADERS, printable) + "\n"
    if frontier_floor is not None:
        f = frontier_floor
        text += (
            f"\nfrontier codegen floor: {f['app']} {f['graph']}@{f['hosts']} "
            f"(scale {f['scale']}, {f['rounds']} rounds, min of "
            f"{f['repeats']}): interpreted {f['interpreted_s']:.3f}s, "
            f"generated {f['codegen_s']:.3f}s = {f['codegen_speedup']:.2f}x "
            f"({'identical' if f['identical'] else 'DIVERGED'})\n"
        )
    print(text)

    reports_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "reports")
    os.makedirs(reports_dir, exist_ok=True)
    with open(os.path.join(reports_dir, "bench_wallclock_speedup.txt"), "w") as handle:
        handle.write(text)
    report = {
        "schema": REPORT_SCHEMA,
        "module": "bench_wallclock_speedup",
        "title": TITLE,
        "headers": list(HEADERS),
        "results": [],
        "rows": [list(row) for row in printable],
        "cells": rows,
        "frontier_floor": frontier_floor,
        "matrix": [list(entry) for entry in MATRIX],
        "cpu_count": os.cpu_count(),
        "speedup_gated": gate_speedup(),
        "min_parallel_speedup": min_parallel_speedup(),
        "min_bulk_j2_speedup": min_bulk_j2_speedup(),
        "min_codegen_speedup": min_codegen_speedup(),
        "fast_mode": fast_mode(),
    }
    with open(os.path.join(reports_dir, "bench_wallclock_speedup.json"), "w") as handle:
        json.dump(report, handle, indent=1)

    failed = False
    for r in rows:
        for key in r["diverged"]:
            failed = True
            print(
                f"EQUIVALENCE FAILURE: {r['app']} on {r['graph']} @ "
                f"{r['hosts']} hosts - {key} RunResult.to_dict() diverged "
                "from scalar jobs=1",
                file=sys.stderr,
            )
    headline = rows[0]
    if gate_speedup() and headline["parallel_speedup"] < min_parallel_speedup():
        failed = True
        print(
            f"SPEEDUP FAILURE: headline {headline['app']} "
            f"{headline['graph']}@{headline['hosts']} scalar jobs=4 over "
            f"jobs=1 is {headline['parallel_speedup']:.2f}x "
            f"(< {min_parallel_speedup():.1f}x, cpu_count={os.cpu_count()})",
            file=sys.stderr,
        )
    if gate_speedup() and headline["bulk_j2_speedup"] < min_bulk_j2_speedup():
        failed = True
        print(
            f"SPEEDUP FAILURE: headline {headline['app']} "
            f"{headline['graph']}@{headline['hosts']} bulk jobs=2 over "
            f"jobs=1 is {headline['bulk_j2_speedup']:.2f}x "
            f"(< {min_bulk_j2_speedup():.1f}x, cpu_count={os.cpu_count()})",
            file=sys.stderr,
        )
    if gate_speedup() and headline["codegen_speedup"] < min_codegen_speedup():
        failed = True
        print(
            f"SPEEDUP FAILURE: headline {headline['app']} "
            f"{headline['graph']}@{headline['hosts']} generated kernels "
            f"over interpreted bulk is {headline['codegen_speedup']:.2f}x "
            f"(< {min_codegen_speedup():.1f}x, cpu_count={os.cpu_count()})",
            file=sys.stderr,
        )
    if frontier_floor is not None:
        if not frontier_floor["identical"]:
            failed = True
            print(
                f"EQUIVALENCE FAILURE: frontier floor "
                f"{frontier_floor['app']} on {frontier_floor['graph']} @ "
                f"{frontier_floor['hosts']} hosts (scale "
                f"{frontier_floor['scale']}) - generated kernels diverged "
                "from interpreted bulk",
                file=sys.stderr,
            )
        if (
            gate_speedup()
            and frontier_floor["codegen_speedup"] < min_codegen_speedup()
        ):
            failed = True
            print(
                f"SPEEDUP FAILURE: frontier floor {frontier_floor['app']} "
                f"{frontier_floor['graph']}@{frontier_floor['hosts']} "
                f"(scale {frontier_floor['scale']}) generated kernels over "
                f"interpreted bulk is "
                f"{frontier_floor['codegen_speedup']:.2f}x "
                f"(< {min_codegen_speedup():.1f}x, cpu_count={os.cpu_count()})",
                file=sys.stderr,
            )
    if failed:
        return 1
    print(
        f"headline: {headline['app']} {headline['graph']}@{headline['hosts']} "
        f"bulk/scalar {headline['bulk_speedup']:.1f}x, "
        f"codegen {headline['codegen_speedup']:.2f}x, "
        f"scalar j4/j1 {headline['parallel_speedup']:.2f}x, "
        f"bulk j2/j1 {headline['bulk_j2_speedup']:.2f}x, "
        f"bulk j4/j1 {headline['bulk_parallel_speedup']:.2f}x, "
        f"exchanged {headline['bytes_exchanged']} bytes over "
        f"{headline['segments_peak']} segments "
        f"(cpu_count={os.cpu_count()}, gated={gate_speedup()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
