"""Event counters: what the simulation measures instead of wall-clock time.

Every phase of every BSP round produces one :class:`PhaseRecord` holding a
:class:`Counters` per host plus per-host message/byte totals. The cost model
(:mod:`repro.cluster.costmodel`) prices these records into modeled seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Sequence

import numpy as np


class PhaseKind(enum.Enum):
    """The four BSP phase kinds of Section 4.1, plus baseline-specific ones."""

    REQUEST_COMPUTE = "request-compute"
    REQUEST_SYNC = "request-sync"
    REDUCE_COMPUTE = "reduce-compute"
    REDUCE_SYNC = "reduce-sync"
    BROADCAST_SYNC = "broadcast-sync"
    INIT = "init"
    SERIAL = "serial"  # e.g. Vite's single-threaded inspection phase
    # Fault-tolerance collectives (repro.faults): snapshot serialization /
    # restore-and-replay. Barrier collectives like the sync kinds, so their
    # cost reports as communication ("recovery time") in the breakdowns.
    CHECKPOINT = "checkpoint"
    RECOVERY = "recovery"
    # Barrier-free chunk of the asynchronous engine (repro.exec.engine):
    # compute and its eager messaging overlap, so the cost model prices
    # communication as only the part peeking out past compute rather than
    # adding a sync phase - there are no round barriers to charge.
    ASYNC_COMPUTE = "async-compute"

    @property
    def is_sync(self) -> bool:
        return self in (
            PhaseKind.REQUEST_SYNC,
            PhaseKind.REDUCE_SYNC,
            PhaseKind.BROADCAST_SYNC,
            PhaseKind.CHECKPOINT,
            PhaseKind.RECOVERY,
        )


# Counter fields that are statistics mirrors of priced events, not events of
# their own: every master/remote read already shows up as a vector_read,
# hash_probe or binsearch_step. The cost model gives these weight 0 and
# `Counters.total_events` excludes them, both from this one set.
STATISTIC_FIELDS = frozenset({"reads_master", "reads_remote"})


@dataclass
class Counters:
    """Additive per-host event counters for one phase.

    ``vector_reads`` are O(1) dense-array reads (the GAR master layout),
    ``binsearch_steps`` are probes of the sorted remote arrays,
    ``hash_probes`` are hash-map lookups (the non-GAR layouts),
    ``cas_attempts``/``cas_conflicts`` price shared-map and key-value-store
    reductions, ``combine_ops`` is the CF thread-local-map combining step,
    and ``kv_string_ops`` is the extra per-operation cost of the
    key-value-store's string keys (Section 6.4).
    """

    node_iters: int = 0
    edge_iters: int = 0
    local_ops: int = 0
    # Free statistics counters (zero cost weight): how many property reads
    # hit master vs non-master properties, for the Section 4.2 locality
    # measurement that motivates GAR.
    reads_master: int = 0
    reads_remote: int = 0
    vector_reads: int = 0
    binsearch_steps: int = 0
    hash_probes: int = 0
    reduce_calls: int = 0
    cas_attempts: int = 0
    cas_conflicts: int = 0
    combine_ops: int = 0
    materialize_ops: int = 0
    kv_string_ops: int = 0

    def add(self, other: "Counters") -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def total_events(self) -> int:
        """Priced events only: statistics mirrors would double-count reads."""
        return sum(
            getattr(self, name)
            for name in COUNTER_FIELDS
            if name not in STATISTIC_FIELDS
        )

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in COUNTER_FIELDS}


COUNTER_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(Counters))


def counters_to_rows(rows: Sequence[Counters]) -> np.ndarray:
    """Pack counters into one ``int64`` matrix, one row per host: the
    shared-memory accumulation layout of the parallel exchange
    (:mod:`repro.exec.pool`), column order = ``COUNTER_FIELDS``."""
    return np.array(
        [[getattr(c, name) for name in COUNTER_FIELDS] for c in rows],
        dtype=np.int64,
    )


def add_counter_row(counters: Counters, row: np.ndarray) -> None:
    """Fold one packed row back in, keeping the fields plain Python ints
    (byte-identity: ``as_dict`` must serialize exactly as a serial run)."""
    for name, value in zip(COUNTER_FIELDS, row):
        setattr(counters, name, getattr(counters, name) + int(value))


@dataclass
class PhaseRecord:
    """One executed phase: counters and traffic for every host.

    ``round`` is the BSP round the phase ran in (0 for pre-loop phases such
    as initialization; ``kimbap_while`` rounds count from 1) and
    ``operator`` names the operator or collective that opened the phase -
    together they let traces and profiles attribute modeled time.
    """

    kind: PhaseKind
    parallel: bool
    counters: list[Counters]
    msgs_sent: list[int]
    bytes_sent: list[int]
    msgs_recv: list[int]
    bytes_recv: list[int]
    label: str = ""
    round: int = 0
    operator: str = ""
    # Per-host compute-time multipliers stamped by an installed fault
    # injector (straggler modeling); None - the overwhelmingly common
    # case - prices identically to all-ones.
    slowdown: list[float] | None = None
    # Constituent operator labels of the fused kernel group this phase ran
    # in (repro.exec.codegen): the phase keeps its own record - counters,
    # traffic, label - so profiles stay per-step, and the tuple marks the
    # generated kernel it executed inside for trace attribution. Never
    # serialized (like ``slowdown``), so fusion cannot perturb the
    # byte-identity contract.
    fused: tuple[str, ...] | None = None
    # Chunk ordinal within an asynchronous run (repro.exec.engine): the
    # async engine has no rounds, so traces key attribution on the chunk
    # instead. None for every BSP phase - never serialized, like ``fused``,
    # so the BSP byte-identity contract is untouched.
    chunk: int | None = None
    # Per-host frontier-gather path chosen by a compiled frontier push
    # (repro.exec.codegen.PreparedFrontierPush): "dense" (mask over the
    # full precomputed expansion), "sparse" (per-source gather), or
    # "empty" (nothing survived the filters). None for every other phase
    # - never serialized, like ``fused``, so the byte-identity contract
    # is untouched.
    frontier: dict[int, str] | None = None

    @classmethod
    def empty(
        cls,
        kind: PhaseKind,
        num_hosts: int,
        parallel: bool,
        label: str = "",
        round: int = 0,
        operator: str = "",
    ) -> "PhaseRecord":
        return cls(
            kind=kind,
            parallel=parallel,
            counters=[Counters() for _ in range(num_hosts)],
            msgs_sent=[0] * num_hosts,
            bytes_sent=[0] * num_hosts,
            msgs_recv=[0] * num_hosts,
            bytes_recv=[0] * num_hosts,
            label=label,
            round=round,
            operator=operator,
        )


@dataclass
class MetricsLog:
    """Append-only log of phase records for one measured region."""

    num_hosts: int
    phases: list[PhaseRecord] = field(default_factory=list)

    def start_phase(
        self,
        kind: PhaseKind,
        parallel: bool = True,
        label: str = "",
        round: int = 0,
        operator: str = "",
    ) -> PhaseRecord:
        record = PhaseRecord.empty(
            kind, self.num_hosts, parallel, label, round=round, operator=operator
        )
        self.phases.append(record)
        return record

    def total_counters(self) -> Counters:
        # Integer addition is exact, so folding through the instance
        # dicts (and skipping zero entries) matches ``Counters.add``
        # field for field at a fraction of the attribute-protocol cost -
        # result assembly sums every phase of a many-thousand-phase log.
        total = Counters()
        sums = total.__dict__
        for phase in self.phases:
            for counters in phase.counters:
                for name, value in counters.__dict__.items():
                    if value:
                        sums[name] += value
        return total

    def total_messages(self) -> int:
        return sum(sum(phase.msgs_sent) for phase in self.phases)

    def total_bytes(self) -> int:
        return sum(sum(phase.bytes_sent) for phase in self.phases)

    def counters_by_kind(self) -> dict[PhaseKind, Counters]:
        by_kind: dict[PhaseKind, Counters] = {}
        for phase in self.phases:
            bucket = by_kind.setdefault(phase.kind, Counters())
            for counters in phase.counters:
                bucket.add(counters)
        return by_kind
