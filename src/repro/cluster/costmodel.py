"""Cost model: prices event counters into modeled execution seconds.

This is the reproduction's substitute for Stampede2 wall-clock time. Each
counter kind has a weight in abstract "op units"; a host's phase time is its
weighted units divided by its virtual-thread count (for parallel phases),
times ``seconds_per_unit``. Phase time is the max over hosts (BSP barrier),
plus an alpha-beta network term for sync phases. The defaults are calibrated
so the Figure 11 variant ordering and rough factors match the paper; they are
deliberately simple and fully documented here rather than hidden.

Weight rationale (relative units):

* ``vector_reads`` = 1       - dense array load (GAR master layout).
* ``binsearch_steps`` = 1    - one probe of the sorted remote array; a read
  of a remote key costs ~log2(cache size) of these.
* ``hash_probes`` = 4        - hash + probe + compare of a general map.
* ``reduce_calls`` = 3       - thread-local (conflict-free) reduce.
* ``cas_attempts`` = 8       - an atomic RMW including fence cost.
* ``cas_conflicts`` = 40     - a failed CAS: cache-line ping-pong + retry
  logic. This is where shared-map reductions lose on power-law graphs.
* ``combine_ops`` = 2        - CF combining step entry scan (sequential
  traversal, cache friendly).
* ``materialize_ops`` = 3    - building/sorting the remote arrays.
* ``kv_string_ops`` = 25     - string key formatting + parsing per KV op
  (Section 6.4 blames string keys explicitly).
* ``edge_iters`` = 1, ``node_iters`` = 1, ``local_ops`` = 1 - operator body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import (
    COUNTER_FIELDS,
    STATISTIC_FIELDS,
    Counters,
    MetricsLog,
    PhaseKind,
    PhaseRecord,
)


DEFAULT_WEIGHTS: dict[str, float] = {
    "node_iters": 1.0,
    "edge_iters": 1.0,
    "local_ops": 1.0,
    "vector_reads": 1.0,
    "binsearch_steps": 1.0,
    "hash_probes": 4.0,
    "reduce_calls": 3.0,
    "cas_attempts": 8.0,
    "cas_conflicts": 40.0,
    "combine_ops": 2.0,
    "materialize_ops": 3.0,
    "kv_string_ops": 25.0,
}
# Statistics mirrors (Section 4.2 locality measure) are priced at zero; the
# set lives in metrics.py so total_events() and the weights cannot drift.
DEFAULT_WEIGHTS.update({name: 0.0 for name in STATISTIC_FIELDS})


@dataclass(frozen=True)
class ModeledTime:
    """Modeled seconds split the way the paper's figures split them."""

    computation: float
    communication: float

    @property
    def total(self) -> float:
        return self.computation + self.communication

    def __add__(self, other: "ModeledTime") -> "ModeledTime":
        return ModeledTime(
            self.computation + other.computation,
            self.communication + other.communication,
        )


@dataclass
class CostModel:
    """Prices :class:`MetricsLog` records into :class:`ModeledTime`.

    ``seconds_per_unit`` is tuned so a ~1k-node simulation lands in the same
    numeric neighbourhood as the paper's charts; only *relative* numbers are
    meaningful. ``alpha`` is per-message latency, ``beta`` seconds/byte
    (1/bandwidth).
    """

    seconds_per_unit: float = 2e-4
    alpha: float = 3e-4
    beta: float = 4e-6
    weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def units(self, counters: Counters) -> float:
        # Summation stays in COUNTER_FIELDS order; dropping zero-weight
        # terms is exact (every partial sum is non-negative, so +0.0 is
        # the identity) and instance-dict reads skip the attribute
        # protocol - this is the log-pricing hot loop.
        weights = self.weights
        values = counters.__dict__
        return sum(
            weights[name] * values[name]
            for name in COUNTER_FIELDS
            if weights[name]
        )

    def units_breakdown(self, counters: Counters) -> dict[str, float]:
        """Weighted units contributed by each counter kind (zero entries
        dropped) - the attribution shown by ``repro profile``."""
        return {
            name: self.weights[name] * value
            for name, value in counters.as_dict().items()
            if self.weights[name] * value != 0.0
        }

    def _host_units(self, phase: PhaseRecord, host: int) -> float:
        """One host's weighted units, stretched by any straggler slowdown."""
        units = self.units(phase.counters[host])
        if phase.slowdown is not None:
            units *= phase.slowdown[host]
        return units

    def host_phase_time(
        self, phase: PhaseRecord, host: int, threads: int
    ) -> ModeledTime:
        """One host's own busy time inside a phase (its compute units plus
        its own traffic), before the BSP barrier extends it to the slowest
        host. Used by the trace exporter to show per-host utilization."""
        divisor = threads if phase.parallel else 1
        compute = (
            self._host_units(phase, host) / divisor
        ) * self.seconds_per_unit
        comm = self.alpha * max(
            phase.msgs_sent[host], phase.msgs_recv[host]
        ) + self.beta * max(phase.bytes_sent[host], phase.bytes_recv[host])
        if phase.kind.is_sync:
            return ModeledTime(0.0, compute + comm)
        if phase.kind is PhaseKind.ASYNC_COMPUTE:
            # Barrier-free execution hides eager messaging behind compute:
            # only the communication exceeding the chunk's compute time is
            # exposed (the "may hide communication overheads" half of the
            # paper's Section 4.1 asynchrony trade-off).
            return ModeledTime(compute, max(comm - compute, 0.0))
        return ModeledTime(compute, comm)

    def phase_time(self, phase: PhaseRecord, threads: int) -> ModeledTime:
        divisor = threads if phase.parallel else 1
        compute = max(
            (
                self._host_units(phase, host) / divisor
                for host in range(len(phase.counters))
            ),
            default=0.0,
        ) * self.seconds_per_unit
        max_msgs = max(
            max(phase.msgs_sent, default=0), max(phase.msgs_recv, default=0)
        )
        max_bytes = max(
            max(phase.bytes_sent, default=0), max(phase.bytes_recv, default=0)
        )
        comm = self.alpha * max_msgs + self.beta * max_bytes
        if phase.kind.is_sync:
            # Local work inside a sync phase (serving requests, applying
            # reductions) is part of what the paper reports as communication
            # time (its ReduceSync / RequestSync breakdown).
            return ModeledTime(0.0, compute + comm)
        if phase.kind is PhaseKind.ASYNC_COMPUTE:
            # No barrier: per-update messages stream while the chunk
            # computes, so only the excess shows up as communication.
            return ModeledTime(compute, max(comm - compute, 0.0))
        # Compute phases normally carry no traffic; the MC variant's CAS
        # loops do (computation and communication overlap in MC, which the
        # paper reports as a single "compcomm" bar).
        return ModeledTime(compute, comm)

    def time(self, log: MetricsLog, threads: int) -> ModeledTime:
        total = ModeledTime(0.0, 0.0)
        for phase in log.phases:
            total = total + self.phase_time(phase, threads)
        return total

    def time_by_kind(self, log: MetricsLog, threads: int) -> dict[PhaseKind, ModeledTime]:
        by_kind: dict[PhaseKind, ModeledTime] = {}
        for phase in log.phases:
            current = by_kind.get(phase.kind, ModeledTime(0.0, 0.0))
            by_kind[phase.kind] = current + self.phase_time(phase, threads)
        return by_kind

    def time_totals(
        self, log: MetricsLog, threads: int
    ) -> tuple[ModeledTime, dict[PhaseKind, ModeledTime]]:
        """``time`` and ``time_by_kind`` in one pricing pass.

        Long runs log thousands of phases and result assembly prices each
        one twice; the fused pass prices once. Both accumulations run in
        log order with the exact additions of the two originals, so the
        returned values are bit-identical to calling them separately.
        """
        total = ModeledTime(0.0, 0.0)
        by_kind: dict[PhaseKind, ModeledTime] = {}
        for phase in log.phases:
            priced = self.phase_time(phase, threads)
            total = total + priced
            current = by_kind.get(phase.kind, ModeledTime(0.0, 0.0))
            by_kind[phase.kind] = current + priced
        return total, by_kind
