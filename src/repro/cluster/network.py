"""Message accounting for the simulated interconnect.

Values move between hosts as ordinary Python data (the simulation is
in-process), so the network's only job is to *count*: every logical message
records its size against the sender's and receiver's totals in the current
phase. The cost model later prices a phase's traffic with an alpha-beta
model (latency per message + volume / bandwidth).
"""

from __future__ import annotations

from repro.cluster.metrics import PhaseRecord


class Network:
    """Counts messages and bytes against the currently-open phase record."""

    def __init__(self, num_hosts: int) -> None:
        self.num_hosts = num_hosts
        self._phase: PhaseRecord | None = None
        # Fault injection hook (repro.faults.install_faults); None keeps
        # the accounting below byte-identical to the fault-free model.
        self.faults = None

    def bind_phase(self, phase: PhaseRecord | None) -> None:
        self._phase = phase

    def send(self, src: int, dst: int, nbytes: int) -> None:
        """Record one message of ``nbytes`` from ``src`` to ``dst``.

        Self-sends are free: data already on the host is not communicated,
        matching the paper's per-pair message accounting. With a fault
        injector installed, a drop charges the sender one full retransmit
        per dropped attempt (the value still arrives - this is a model)
        and a duplication charges the receiver one extra delivery.
        """
        if src == dst:
            return
        if self._phase is None:
            raise RuntimeError("network used outside of a phase")
        if self.faults is not None:
            drops, duplicates = self.faults.on_send(self._phase, src, dst, nbytes)
            if drops:
                self._phase.msgs_sent[src] += drops
                self._phase.bytes_sent[src] += nbytes * drops
            if duplicates:
                self._phase.msgs_recv[dst] += duplicates
                self._phase.bytes_recv[dst] += nbytes * duplicates
        self._phase.msgs_sent[src] += 1
        self._phase.bytes_sent[src] += nbytes
        self._phase.msgs_recv[dst] += 1
        self._phase.bytes_recv[dst] += nbytes

    def send_many(self, src: int, dst: int, nbytes_each: int, count: int) -> None:
        """Record ``count`` identical messages of ``nbytes_each``.

        Fault-free this is a single aggregated update, byte-identical to
        ``count`` calls of :meth:`send`. With a fault injector installed the
        per-send hook must observe every message, so it falls back to the
        scalar loop (keeping drop/duplication draws identical too).
        """
        if src == dst or count <= 0:
            return
        if self.faults is not None:
            for _ in range(count):
                self.send(src, dst, nbytes_each)
            return
        if self._phase is None:
            raise RuntimeError("network used outside of a phase")
        self._phase.msgs_sent[src] += count
        self._phase.bytes_sent[src] += nbytes_each * count
        self._phase.msgs_recv[dst] += count
        self._phase.bytes_recv[dst] += nbytes_each * count

    def all_to_all(self, nbytes_by_pair: dict[tuple[int, int], int]) -> None:
        """Record one message per (src, dst) pair present in the mapping."""
        for (src, dst), nbytes in nbytes_by_pair.items():
            self.send(src, dst, nbytes)

    def allreduce(self, nbytes: int) -> None:
        """Record a small collective (e.g. the BoolReducer / IsUpdated vote).

        Modeled as a ring: every host sends one message of ``nbytes``.
        """
        for host in range(self.num_hosts):
            self.send(host, (host + 1) % self.num_hosts, nbytes)
