"""The simulated cluster: hosts, virtual threads, and phase scoping.

All computation in the reproduction runs "on" a :class:`Cluster`. Code that
models per-host parallel work opens a phase (:meth:`Cluster.phase`), then
records events against per-host counters. Virtual threads exist only as a
deterministic dealing function (:func:`static_thread`) - matching OpenMP
static scheduling - used both by the conflict-free reduction (which keys
thread-local maps by thread id) and by the conflict accounting of the
shared-map variants.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, ModeledTime
from repro.cluster.metrics import Counters, MetricsLog, PhaseKind, PhaseRecord
from repro.cluster.network import Network


def static_thread(index: int, total: int, threads: int) -> int:
    """Deal item ``index`` of ``total`` to a virtual thread, OpenMP-static style."""
    if total <= 0:
        return 0
    if index < 0 or index >= total:
        raise IndexError(f"item {index} out of range for {total} items")
    return min(index * threads // total, threads - 1)


class SimulatedOutOfMemory(MemoryError):
    """A host's tracked property-slot footprint exceeded the cluster's
    configured memory limit (models the paper's LD OOM cells).

    Carries structured fields so reports can name the map whose report
    blew the budget: ``host``, ``owner`` (the reporting owner, e.g.
    ``"npm:rank"``), ``total_slots`` (the host's footprint at the time),
    and ``limit``.
    """

    def __init__(self, host: int, owner: str, total_slots: int, limit: int) -> None:
        super().__init__(
            f"host {host}: {owner!r} pushed the footprint to {total_slots} "
            f"value slots (limit {limit})"
        )
        self.host = host
        self.owner = owner
        self.total_slots = total_slots
        self.limit = limit


@dataclass(frozen=True)
class Host:
    """One simulated machine (48 hardware threads on Stampede2 SKX)."""

    host_id: int
    threads: int


class Cluster:
    """A set of simulated hosts plus the metrics log they write into."""

    def __init__(
        self,
        num_hosts: int,
        threads_per_host: int = 48,
        cost_model: CostModel | None = None,
        memory_limit_slots: int | None = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError("need at least one host")
        if threads_per_host < 1:
            raise ValueError("need at least one thread per host")
        self.num_hosts = num_hosts
        self.threads_per_host = threads_per_host
        self.hosts = [Host(i, threads_per_host) for i in range(num_hosts)]
        self.cost_model = cost_model or CostModel()
        self.network = Network(num_hosts)
        self.log = MetricsLog(num_hosts)
        self._current: PhaseRecord | None = None
        # Round/operator attribution for traces and profiles: phases opened
        # before any loop round belong to round 0; kimbap_while (and the
        # baseline drivers) advance the round counter once per BSP round.
        self.current_round = 0
        # Recoverable-loop bookkeeping, mirrored here so the self-healing
        # pool (repro.exec.pool) can resume an interrupted loop on a
        # freshly forked worker: completed-round count of the loop in
        # flight, and its live CheckpointManager (if any).
        self.loop_rounds = 0
        self.active_manager = None
        # Memory accounting: property maps (and baselines) report their
        # per-host live value-slot footprint; the cluster tracks the peak
        # (the paper's max-RSS measure) and, with a limit configured,
        # raises SimulatedOutOfMemory like the paper's LD OOM cells.
        self.memory_limit_slots = memory_limit_slots
        self._live_slots: dict[tuple[int, str], int] = {}
        # Per-host running totals of _live_slots, maintained on every report
        # so track_memory is O(1) instead of summing the live table.
        self._host_slot_totals = [0] * num_hosts
        self.peak_memory_slots = [0] * num_hosts
        # Fault injection (repro.faults): None unless install_faults() has
        # attached an injector; every hook call site guards on this, so the
        # fault layer is zero-overhead when off.
        self.faults = None
        # Thread-dealing caches: chunk bounds and per-item thread ids are a
        # pure function of (n_items, threads_per_host), and the same
        # iteration-set sizes recur every round, so recomputing them per
        # phase was pure waste. Cached arrays are frozen (writeable=False);
        # hit/miss counts back the cache micro-benchmark.
        self._boundary_cache: dict[int, np.ndarray] = {}
        self._threads_of_cache: dict[int, np.ndarray] = {}
        self.boundary_cache_hits = 0
        self.boundary_cache_misses = 0

    # -- phase scoping -----------------------------------------------------

    @contextlib.contextmanager
    def phase(
        self,
        kind: PhaseKind,
        parallel: bool = True,
        label: str = "",
        operator: str = "",
    ) -> Iterator[PhaseRecord]:
        """Open a phase; all events recorded inside belong to it.

        Phases do not nest: the BSP execution model is a flat sequence of
        phases inside each round. ``operator`` names the operator body or
        collective for trace attribution (defaults to the label).
        """
        if self._current is not None:
            raise RuntimeError(
                f"phase {self._current.kind} is still open; phases do not nest"
            )
        record = self.log.start_phase(
            kind,
            parallel=parallel,
            label=label,
            round=self.current_round,
            operator=operator or label,
        )
        self._current = record
        self.network.bind_phase(record)
        if self.faults is not None:
            self.faults.on_phase_start(record)
        try:
            yield record
        finally:
            self._current = None
            self.network.bind_phase(None)

    @contextlib.contextmanager
    def fused_phases(
        self, specs: Sequence[tuple[PhaseKind, str]], fused: Sequence[str] = ()
    ) -> Iterator[list[PhaseRecord]]:
        """Open one record per spec for a fused compute group (codegen).

        A generated fused kernel executes several adjacent compute phases
        per host in one pass. Each constituent keeps its own
        :class:`PhaseRecord` - appended here in step order, so the log is
        indistinguishable from the unfused walk - and the runner switches
        attribution between the open records with :meth:`activate_phase`.
        ``fused`` stamps every record with the group's operator labels for
        trace attribution.

        Only valid without a fault injector: ``faults.on_phase_start`` is
        a per-phase serial-cadence hook, so codegen disables fusion under
        fault plans (the executor enforces this before compiling).
        """
        if self._current is not None:
            raise RuntimeError(
                f"phase {self._current.kind} is still open; phases do not nest"
            )
        if self.faults is not None:
            raise RuntimeError(
                "fused phase groups cannot run under fault injection"
            )
        records = []
        for kind, label in specs:
            record = self.log.start_phase(
                kind,
                parallel=True,
                label=label,
                round=self.current_round,
                operator=label,
            )
            record.fused = tuple(fused)
            records.append(record)
        try:
            yield records
        finally:
            self._current = None
            self.network.bind_phase(None)

    def activate_phase(self, record: PhaseRecord) -> None:
        """Point counter/traffic attribution at one of a fused group's open
        records (only meaningful inside :meth:`fused_phases`)."""
        self._current = record
        self.network.bind_phase(record)

    def counters(self, host_id: int) -> Counters:
        """The current phase's counters for ``host_id``."""
        if self._current is None:
            raise RuntimeError("no phase is open")
        return self._current.counters[host_id]

    @property
    def in_phase(self) -> bool:
        return self._current is not None

    # -- results ------------------------------------------------------------

    def elapsed(self) -> ModeledTime:
        return self.cost_model.time(self.log, self.threads_per_host)

    def elapsed_by_kind(self) -> dict[PhaseKind, ModeledTime]:
        return self.cost_model.time_by_kind(self.log, self.threads_per_host)

    def elapsed_all(self) -> tuple[ModeledTime, dict[PhaseKind, ModeledTime]]:
        """Total and per-kind modeled time in one pricing pass over the
        log (bit-identical to the two separate calls)."""
        return self.cost_model.time_totals(self.log, self.threads_per_host)

    def advance_round(self) -> int:
        """Start the next BSP round; later phases carry the new round id."""
        self.current_round += 1
        return self.current_round

    def reset(self) -> None:
        """Drop all recorded metrics (e.g. to exclude loading/partitioning)."""
        if self._current is not None:
            raise RuntimeError("cannot reset inside an open phase")
        self.log = MetricsLog(self.num_hosts)
        self.current_round = 0

    def thread_of(self, index: int, total: int) -> int:
        return static_thread(index, total, self.threads_per_host)

    def thread_boundaries(self, total: int) -> np.ndarray:
        """Closed-form OpenMP-static chunk bounds over ``total`` items.

        Item ``i`` is dealt to thread ``t`` iff ``bounds[t] <= i <
        bounds[t + 1]``; agrees with :func:`static_thread` for every index
        (the bulk execution path derives per-thread segments from these
        bounds instead of calling the dealing function per item).

        Results are cached per item count (``threads_per_host`` is fixed
        for the cluster's lifetime) and returned read-only.
        """
        bounds = self._boundary_cache.get(total)
        if bounds is not None:
            self.boundary_cache_hits += 1
            return bounds
        self.boundary_cache_misses += 1
        threads = self.threads_per_host
        t = np.arange(threads + 1, dtype=np.int64)
        bounds = np.minimum((t * total + threads - 1) // threads, total)
        bounds.flags.writeable = False
        self._boundary_cache[total] = bounds
        return bounds

    def threads_of(self, total: int) -> np.ndarray:
        """Vectorized :func:`static_thread`: the thread id of every item.

        Cached per item count, like :meth:`thread_boundaries` (a cached
        lookup here counts as a boundary-cache hit)."""
        threads = self._threads_of_cache.get(total)
        if threads is not None:
            self.boundary_cache_hits += 1
            return threads
        bounds = self.thread_boundaries(total)
        threads = np.repeat(
            np.arange(self.threads_per_host, dtype=np.int64), np.diff(bounds)
        )
        threads.flags.writeable = False
        self._threads_of_cache[total] = threads
        return threads

    # -- memory accounting ---------------------------------------------------

    def track_memory(self, host_id: int, owner: str, slots: int) -> None:
        """Report ``owner``'s current value-slot footprint on a host.

        Owners (property maps, baseline kernels) call this whenever their
        footprint changes; the per-host total's peak is the modeled max
        RSS. Exceeding ``memory_limit_slots`` aborts the run the way the
        paper's out-of-memory cells do.
        """
        previous = self._live_slots.get((host_id, owner), 0)
        if slots == 0:
            # A zero footprint is the same as no footprint: drop the entry
            # so released/empty owners do not linger in the live table.
            self._live_slots.pop((host_id, owner), None)
        else:
            self._live_slots[(host_id, owner)] = slots
        self._host_slot_totals[host_id] += slots - previous
        total = self._host_slot_totals[host_id]
        if total > self.peak_memory_slots[host_id]:
            self.peak_memory_slots[host_id] = total
        if self.memory_limit_slots is not None and total > self.memory_limit_slots:
            raise SimulatedOutOfMemory(
                host_id, owner, total, self.memory_limit_slots
            )

    def release_memory(self, owner: str) -> None:
        """Drop an owner's footprint on every host (e.g. a map going away)."""
        for key in [k for k in self._live_slots if k[1] == owner]:
            self._host_slot_totals[key[0]] -= self._live_slots[key]
            del self._live_slots[key]

    def max_memory_slots(self) -> int:
        """Peak per-host footprint across the cluster (the max-RSS analog)."""
        return max(self.peak_memory_slots, default=0)
