"""Simulated distributed cluster.

The paper runs on up to 256 MPI hosts with 48 threads each. Here the cluster
is simulated inside one process: hosts are objects, threads are *virtual*
(work is dealt to them deterministically and conflicts are counted, not
raced), and the network is an alpha-beta cost model fed by per-phase message
accounting. See DESIGN.md section 1 for why this substitution preserves the
paper's measured effects.
"""

from repro.cluster.metrics import (
    STATISTIC_FIELDS,
    Counters,
    PhaseKind,
    PhaseRecord,
    MetricsLog,
)
from repro.cluster.network import Network
from repro.cluster.costmodel import CostModel, ModeledTime
from repro.cluster.cluster import Cluster, Host

__all__ = [
    "STATISTIC_FIELDS",
    "Counters",
    "PhaseKind",
    "PhaseRecord",
    "MetricsLog",
    "Network",
    "CostModel",
    "ModeledTime",
    "Cluster",
    "Host",
]
