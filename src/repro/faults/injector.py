"""The runtime half of fault injection: hooks called by cluster primitives.

One :class:`FaultInjector` is installed per cluster (``install_faults``).
It is consulted from three places:

* :meth:`repro.cluster.cluster.Cluster.phase` - at phase open, to stamp
  straggler slowdown multipliers onto the phase record and advance the
  per-phase decision streams;
* :meth:`repro.cluster.network.Network.send` - per logical message, to
  decide drops (charged as sender retransmissions) and duplications
  (charged as extra receiver deliveries);
* :class:`repro.kvstore.client.KvClient` - per request, to decide
  transient timeouts (charged as extra request messages).

Crashes are not raised from inside phases: the recoverable loop driver
(:mod:`repro.faults.recovery`) polls :meth:`crash_at` at round boundaries,
which keeps every phase record well-formed and recovery attributable.

Every decision is a pure function of ``(plan.seed, decision labels)`` via
:mod:`repro.faults.rng`, so the same plan on the same workload yields a
byte-identical trace. When no injector is installed the hooks are never
reached (`cluster.faults is None` guards every call site), keeping the
fault layer zero-overhead when off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan, HostCrash
from repro.faults.rng import stream_uniform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.metrics import PhaseRecord


class HostCrashError(RuntimeError):
    """An injected host failure (caught by the recoverable loop driver)."""

    def __init__(self, crash: HostCrash) -> None:
        super().__init__(f"host {crash.host} crashed entering round {crash.round}")
        self.crash = crash


class FaultInjector:
    """Per-cluster fault state: schedules, decision streams, and tallies."""

    def __init__(self, plan: FaultPlan, cluster: "Cluster") -> None:
        self.plan = plan
        self.cluster = cluster
        self._phase: "PhaseRecord | None" = None
        self._phase_ordinal = -1
        self._msg_seq: dict[tuple[int, int], int] = {}
        self._kv_seq: dict[tuple[int, int], int] = {}
        self._fired_crashes: set[HostCrash] = set()
        # Tallies surfaced in RunResult.to_dict()["faults"].
        self.messages_dropped = 0
        self.retries = 0
        self.resent_bytes = 0
        self.messages_duplicated = 0
        self.duplicate_bytes = 0
        self.kv_timeouts = 0
        self.checkpoints_taken = 0
        self.checkpoint_bytes = 0
        self.recoveries = 0
        self.rounds_replayed = 0
        self.events: list[dict] = []

    # ------------------------------------------------------------ phase hook

    def on_phase_start(self, record: "PhaseRecord") -> None:
        """Advance the per-phase decision streams; stamp straggler slowdown."""
        self._phase = record
        self._phase_ordinal += 1
        self._msg_seq.clear()
        self._kv_seq.clear()
        slowdown = None
        for straggler in self.plan.stragglers:
            if straggler.host < self.cluster.num_hosts and straggler.covers(
                record.round
            ):
                if slowdown is None:
                    slowdown = [1.0] * self.cluster.num_hosts
                slowdown[straggler.host] *= straggler.multiplier
        if slowdown is not None:
            record.slowdown = slowdown

    # ---------------------------------------------------------- network hook

    def on_send(
        self, record: "PhaseRecord", src: int, dst: int, nbytes: int
    ) -> tuple[int, int]:
        """Decide one message's fate: ``(dropped_attempts, duplicates)``."""
        flake = self.plan.flake
        if flake is None or not flake.covers(record.round):
            return 0, 0
        key = (src, dst)
        seq = self._msg_seq.get(key, 0)
        self._msg_seq[key] = seq + 1
        seed = self.plan.seed
        drops = 0
        while drops < flake.max_retries and (
            stream_uniform(seed, "drop", self._phase_ordinal, src, dst, seq, drops)
            < flake.drop_rate
        ):
            drops += 1
        duplicates = int(
            flake.duplicate_rate > 0.0
            and stream_uniform(seed, "dup", self._phase_ordinal, src, dst, seq)
            < flake.duplicate_rate
        )
        if drops:
            self.messages_dropped += drops
            self.retries += drops
            self.resent_bytes += nbytes * drops
        if duplicates:
            self.messages_duplicated += duplicates
            self.duplicate_bytes += nbytes * duplicates
        return drops, duplicates

    # ---------------------------------------------------------- kvstore hook

    def kv_retries(self, host: int, server: int) -> int:
        """How many times this request times out before succeeding."""
        timeouts = self.plan.kv_timeouts
        if timeouts is None:
            return 0
        round = self._phase.round if self._phase is not None else 0
        if not timeouts.covers(round):
            return 0
        key = (host, server)
        seq = self._kv_seq.get(key, 0)
        self._kv_seq[key] = seq + 1
        retries = 0
        while retries < timeouts.max_retries and (
            stream_uniform(
                self.plan.seed, "kv", self._phase_ordinal, host, server, seq, retries
            )
            < timeouts.rate
        ):
            retries += 1
        self.kv_timeouts += retries
        return retries

    # ------------------------------------------------------------ crash hook

    def crash_at(self, round: int) -> HostCrash | None:
        """The crash scheduled for ``round``, if any and not yet fired.

        Firing is once-per-crash: after recovery rolls the round counter
        back, the replayed pass through the same round must not re-crash.
        """
        for crash in self.plan.crashes:
            if (
                crash.round == round
                and crash.host < self.cluster.num_hosts
                and crash not in self._fired_crashes
            ):
                self._fired_crashes.add(crash)
                self.events.append(
                    {"kind": "crash", "host": crash.host, "round": round}
                )
                return crash
        return None

    # --------------------------------------------------- checkpoint bookkeeping

    def note_checkpoint(self, round: int, nbytes: int) -> None:
        self.checkpoints_taken += 1
        self.checkpoint_bytes += nbytes
        self.events.append({"kind": "checkpoint", "round": round, "bytes": nbytes})

    def note_recovery(
        self, crash: HostCrash, restored_round: int, nbytes: int
    ) -> None:
        self.recoveries += 1
        self.rounds_replayed += crash.round - restored_round - 1
        self.events.append(
            {
                "kind": "recovery",
                "host": crash.host,
                "crash_round": crash.round,
                "restored_round": restored_round,
                "bytes": nbytes,
            }
        )

    # ------------------------------------------- real-fault recovery snapshot

    def snapshot_state(self) -> dict:
        """All mutable injector state, for the self-healing pool's
        :class:`~repro.faults.checkpoint.RoundSnapshot`: rolling a round
        back must also roll back the decision-stream cursors and tallies,
        or the replayed round would draw different faults (or double-count
        the old ones) and the report bytes would diverge."""
        return {
            "phase_ordinal": self._phase_ordinal,
            "msg_seq": dict(self._msg_seq),
            "kv_seq": dict(self._kv_seq),
            "fired_crashes": set(self._fired_crashes),
            "messages_dropped": self.messages_dropped,
            "retries": self.retries,
            "resent_bytes": self.resent_bytes,
            "messages_duplicated": self.messages_duplicated,
            "duplicate_bytes": self.duplicate_bytes,
            "kv_timeouts": self.kv_timeouts,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "recoveries": self.recoveries,
            "rounds_replayed": self.rounds_replayed,
            "events": [dict(event) for event in self.events],
        }

    def restore_state(self, state: dict) -> None:
        self._phase = None
        self._phase_ordinal = state["phase_ordinal"]
        self._msg_seq = dict(state["msg_seq"])
        self._kv_seq = dict(state["kv_seq"])
        self._fired_crashes = set(state["fired_crashes"])
        self.messages_dropped = state["messages_dropped"]
        self.retries = state["retries"]
        self.resent_bytes = state["resent_bytes"]
        self.messages_duplicated = state["messages_duplicated"]
        self.duplicate_bytes = state["duplicate_bytes"]
        self.kv_timeouts = state["kv_timeouts"]
        self.checkpoints_taken = state["checkpoints_taken"]
        self.checkpoint_bytes = state["checkpoint_bytes"]
        self.recoveries = state["recoveries"]
        self.rounds_replayed = state["rounds_replayed"]
        self.events = [dict(event) for event in state["events"]]

    # ---------------------------------------------------------------- report

    def report(self) -> dict:
        """The structured ``faults`` section of a run result."""
        fired = sorted((c.round, c.host) for c in self._fired_crashes)
        pending = sorted(
            (c.round, c.host)
            for c in self.plan.crashes
            if c not in self._fired_crashes
        )
        return {
            "schema": "repro-faults/v1",
            "plan": self.plan.describe(),
            "events": list(self.events),
            "messages_dropped": self.messages_dropped,
            "retries": self.retries,
            "resent_bytes": self.resent_bytes,
            "messages_duplicated": self.messages_duplicated,
            "duplicate_bytes": self.duplicate_bytes,
            "kv_timeouts": self.kv_timeouts,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "recoveries": self.recoveries,
            "rounds_replayed": self.rounds_replayed,
            "crashes_fired": [list(item) for item in fired],
            "crashes_pending": [list(item) for item in pending],
        }


def install_faults(cluster: "Cluster", plan: FaultPlan) -> FaultInjector:
    """Attach a fault injector to a cluster (and its network)."""
    if cluster.faults is not None:
        raise RuntimeError("cluster already has a fault injector installed")
    injector = FaultInjector(plan, cluster)
    cluster.faults = injector
    cluster.network.faults = injector
    return injector
