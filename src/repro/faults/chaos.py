"""Real-fault chaos plans: actual signals, not modeled failures.

Where a :class:`~repro.faults.plan.FaultPlan` *models* failures (a
"crash" is a priced restore-and-replay, the process never dies), a
:class:`ChaosPlan` delivers the real thing to the host-parallel pool:
``SIGKILL``/``SIGTERM`` to a specific worker process, or a simulated
OOM-kill (``os._exit(137)``), at a specific sync boundary of the
exchange protocol. The doomed worker kills *itself* just before writing
its effect bundle, so the coordinator's supervisor must detect a real
dead process mid-exchange - exactly the failure the self-healing pool
(:mod:`repro.exec.pool`) recovers from.

Determinism: every process counts sync boundaries identically
(``HostShardPool.boundaries_seen``, never rolled back by recovery), so
``ChaosEvent(boundary=B, worker=W)`` names one exact point in the
replicated protocol and fires exactly once - replacement workers
inherit the coordinator's counter, which is already past ``B``. The two
plan families compose: a run can carry a modeled ``FaultPlan`` (drops,
stragglers, modeled crashes) *and* a ``ChaosPlan`` killing real
workers, and the byte-identity contract still holds.
"""

from __future__ import annotations

import os
import signal
from dataclasses import asdict, dataclass, field

from repro.faults.rng import stream_rng

CHAOS_SCHEMA = "repro-chaos/v1"

#: What a chaos event can do to its victim worker process.
CHAOS_KINDS = ("sigkill", "sigterm", "oom")

#: Conventional exit status of an OOM-killed process (128 + SIGKILL).
OOM_EXIT_CODE = 137


@dataclass(frozen=True)
class ChaosEvent:
    """Kill worker ``worker`` at sync boundary ``boundary``.

    ``boundary`` counts the pool's real exchanges (flushes and
    all-gathers) from 1 across the executor's lifetime; ``worker`` is a
    pool worker index (>= 1 - index 0 is the coordinator, which is the
    supervisor and not a valid victim). ``kind`` picks the weapon:
    ``sigkill`` and ``sigterm`` are delivered with ``os.kill``; ``oom``
    simulates the kernel OOM killer via ``os._exit(137)``.
    """

    boundary: int
    worker: int
    kind: str = "sigkill"

    def __post_init__(self) -> None:
        if self.boundary < 1:
            raise ValueError("chaos boundary must be >= 1 (boundaries count from 1)")
        if self.worker < 1:
            raise ValueError(
                "chaos worker must be >= 1 (worker 0 is the coordinator)"
            )
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; have {CHAOS_KINDS}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """One named, seeded schedule of real worker kills."""

    name: str = "chaos"
    seed: int = 0
    events: tuple[ChaosEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def describe(self) -> dict:
        """JSON-ready form (mirrors ``FaultPlan.describe``)."""
        return {
            "schema": CHAOS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "events": [asdict(event) for event in self.events],
        }


def random_chaos(
    seed: int,
    workers: int,
    boundaries: int,
    events: int = 1,
    kinds: tuple[str, ...] = CHAOS_KINDS,
) -> ChaosPlan:
    """A seeded random kill schedule: ``events`` distinct boundaries drawn
    from ``1..boundaries``, each aimed at a random worker in
    ``1..workers`` with a random kind. Same seed, same plan."""
    if workers < 1:
        raise ValueError("need at least one worker to kill")
    if boundaries < 1:
        raise ValueError("need at least one boundary to kill at")
    rng = stream_rng(seed, "chaos", workers, boundaries, events)
    count = min(events, boundaries)
    picked = rng.sample(range(1, boundaries + 1), count)
    return ChaosPlan(
        name=f"random@{seed}",
        seed=seed,
        events=tuple(
            ChaosEvent(
                boundary=boundary,
                worker=rng.randint(1, workers),
                kind=rng.choice(list(kinds)),
            )
            for boundary in sorted(picked)
        ),
    )


def deliver(event: ChaosEvent) -> None:
    """Execute one chaos event against the *calling* process. Does not
    return (the process dies here)."""
    if event.kind == "oom":
        os._exit(OOM_EXIT_CODE)
    sig = signal.SIGKILL if event.kind == "sigkill" else signal.SIGTERM
    if sig == signal.SIGTERM:
        # A harness (e.g. coverage) may have hooked SIGTERM; restore the
        # default fatal disposition so the boundary stays the death point.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), sig)
    os._exit(1)  # pragma: no cover - unreachable once the signal lands
