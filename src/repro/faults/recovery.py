"""The recoverable round loop: one driver for every BSP iteration loop.

``run_recoverable_loop`` is the common skeleton behind ``kimbap_while``
(quiescence-driven) and tolerance-driven loops like PageRank's. Without a
fault injector on the cluster it is exactly the legacy loop - same call
order, no extra phases, zero overhead. With an injector it additionally:

* takes an entry checkpoint before the first round (so any crash is
  recoverable) and periodic checkpoints every ``checkpoint_interval``
  completed rounds;
* polls the injector at each round boundary; on an injected crash it
  opens a ``recovery`` phase, restores every registered map (plus any
  loop-private state captured by ``extra_snapshot``/``extra_restore``),
  rolls the round counter back, and replays.

Replay determinism is the contract: the round body must be a pure
function of the registered maps plus the captured extra state, which is
what makes post-recovery values identical to a fault-free run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.faults.checkpoint import CheckpointManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.core.propmap import NodePropMap


def run_recoverable_loop(
    cluster: "Cluster",
    maps: Sequence["NodePropMap"],
    round_body: Callable[[], None],
    *,
    converged: Callable[[], bool],
    before_round: Callable[[], None] | None = None,
    max_rounds: int = 100000,
    advance_rounds: bool = True,
    extra_snapshot: Callable[[], object] | None = None,
    extra_restore: Callable[[object], None] | None = None,
    on_max_rounds: Callable[[int], Exception] | None = None,
    resume_rounds: int | None = None,
) -> int:
    """Run ``round_body`` until ``converged()``; returns completed rounds.

    ``before_round`` runs first each round (e.g. ``reset_updated``);
    ``advance_rounds`` stamps phases with BSP round ids via
    ``cluster.advance_round()`` (loops that historically attribute all
    phases to round 0, like PageRank's, pass False). At ``max_rounds``
    the loop raises ``on_max_rounds(rounds)`` if given, else returns.

    ``resume_rounds`` re-enters a loop already in flight (the self-healing
    pool forks replacement workers mid-run): the loop picks up at that
    completed-round count with the cluster state already rolled back to
    the round start - so the first resumed iteration skips
    ``before_round``/``advance_round``/the crash poll (all already applied
    before the snapshot was taken) and reuses the loop's live
    ``CheckpointManager`` instead of taking a fresh entry checkpoint.
    """
    if max_rounds <= 0:
        return 0
    resuming = resume_rounds is not None
    injector = cluster.faults
    manager: CheckpointManager | None = None
    if resuming:
        manager = cluster.active_manager
    elif injector is not None and (
        injector.plan.crashes or injector.plan.checkpoint_interval > 0
    ):
        manager = CheckpointManager(
            cluster,
            maps,
            injector,
            extra_snapshot=extra_snapshot,
            extra_restore=extra_restore,
        )
        # Entry checkpoint: a crash before the first periodic checkpoint
        # must still be recoverable (GraphLab snapshots at start of run).
        manager.take(0)
    cluster.active_manager = manager
    rounds = resume_rounds if resuming else 0
    while True:
        if resuming:
            resuming = False
        else:
            if before_round is not None:
                before_round()
            if advance_rounds:
                cluster.advance_round()
            if manager is not None:
                round_id = cluster.current_round if advance_rounds else rounds + 1
                crash = injector.crash_at(round_id)
                if crash is not None:
                    # The state mutated since the last boundary (before_round)
                    # is discarded by the restore; replay re-runs it.
                    rounds = manager.recover(crash)
                    continue
        cluster.loop_rounds = rounds
        round_body()
        rounds += 1
        if converged():
            return rounds
        if rounds >= max_rounds:
            if on_max_rounds is not None:
                raise on_max_rounds(rounds)
            return rounds
        if manager is not None and manager.due(rounds):
            manager.take(rounds)
