"""Round-granularity checkpointing and restore-and-replay recovery.

Checkpoints follow Distributed GraphLab's synchronous snapshot story: at a
round boundary (reductions drained, no phase open) every host serializes
its shard of each registered node-property map and ships it to a buddy
host - one hop right on the ring - modeling replicated snapshot storage.
Both the serialization work (``local_ops`` per value slot) and the bytes
cross the existing counters, so checkpoints are priced by the same cost
model as everything else and show up as attributed ``checkpoint`` phases
in traces.

Recovery is the mirror image: every host rolls back to the last snapshot
(deserialize cost), the crashed host additionally refetches its shard
from its buddy (bytes on the wire), and the loop replays from the
checkpointed round. Because the loop body is deterministic in map state,
replay converges to values identical to a fault-free run - the property
``repro.verify.check_equivalent_values`` pins down end-to-end.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.cluster.metrics import PhaseKind
from repro.faults.injector import FaultInjector
from repro.faults.plan import HostCrash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.core.propmap import NodePropMap

CHECKPOINT_KEY_BYTES = 8


@dataclass
class Checkpoint:
    """One snapshot: map states plus enough loop state to replay from it."""

    round: int  # cluster.current_round at capture time
    completed_rounds: int  # loop rounds completed at capture time
    map_states: list[dict]
    extra: Any  # loop-private state (e.g. PageRank's previous-ranks dict)
    host_nbytes: list[int]  # serialized size per host (for recovery pricing)
    host_slots: list[int]


@dataclass
class RoundSnapshot:
    """The coordinator's round-start state, captured for self-healing.

    Where :class:`Checkpoint` is a *modeled* snapshot (priced in the cost
    model, taken at the recoverable loop's cadence), a ``RoundSnapshot``
    is the real thing the host-parallel pool rolls back to when a worker
    actually dies mid-round: every carrier's full state **plus** its
    pending (exported-but-unreduced) per-host compute effects - which
    ``restore_state`` alone does not clear - the plan's loop-private
    extra state, the metrics-log length (the log is append-only, so
    restore is truncation), the round counters, and the fault injector's
    decision-stream cursors. Free of modeled cost on purpose: recovery
    from a real fault must leave the run's report byte-identical to an
    undisturbed one.
    """

    carrier_states: list[tuple[str, Any]]
    carrier_effects: list[list[Any]]
    extra: Any
    phase_count: int
    current_round: int
    loop_rounds: int
    seq: int
    injector_state: dict | None

    @classmethod
    def capture(cls, cluster: "Cluster", carriers: Sequence[Any], plan) -> "RoundSnapshot":
        states: list[tuple[str, Any]] = []
        effects: list[list[Any]] = []
        for carrier in carriers:
            if hasattr(carrier, "checkpoint_state"):
                states.append(("checkpoint", carrier.checkpoint_state()))
            elif hasattr(carrier, "export_epoch_state"):
                states.append(
                    ("epoch", copy.deepcopy(carrier.export_epoch_state()))
                )
            else:  # pragma: no cover - every carrier exports one of the two
                states.append(("none", None))
            effects.append(
                [
                    copy.deepcopy(carrier.export_compute_effects(host))
                    for host in range(cluster.num_hosts)
                ]
            )
        extra_snapshot = getattr(plan, "extra_snapshot", None)
        return cls(
            carrier_states=states,
            carrier_effects=effects,
            extra=(
                copy.deepcopy(extra_snapshot())
                if extra_snapshot is not None
                else None
            ),
            phase_count=len(cluster.log.phases),
            current_round=cluster.current_round,
            loop_rounds=cluster.loop_rounds,
            seq=0,
            injector_state=(
                cluster.faults.snapshot_state()
                if cluster.faults is not None
                else None
            ),
        )

    def restore(
        self,
        cluster: "Cluster",
        carriers: Sequence[Any],
        plan,
        resolve_op: Callable[[str, str], Any],
    ) -> None:
        for carrier, (kind, state), per_host in zip(
            carriers, self.carrier_states, self.carrier_effects
        ):
            if kind == "checkpoint":
                carrier.restore_state(state)
            elif kind == "epoch":
                carrier.install_epoch_state(copy.deepcopy(state), resolve_op)
            for host, effect in enumerate(per_host):
                carrier.install_compute_effects(
                    host, copy.deepcopy(effect), resolve_op
                )
        extra_restore = getattr(plan, "extra_restore", None)
        if extra_restore is not None:
            extra_restore(copy.deepcopy(self.extra))
        del cluster.log.phases[self.phase_count :]
        cluster.current_round = self.current_round
        cluster.loop_rounds = self.loop_rounds
        if self.injector_state is not None and cluster.faults is not None:
            cluster.faults.restore_state(self.injector_state)


class CheckpointManager:
    """Takes checkpoints of a set of maps and restores them after a crash."""

    def __init__(
        self,
        cluster: "Cluster",
        maps: Sequence["NodePropMap"],
        injector: FaultInjector,
        extra_snapshot: Callable[[], Any] | None = None,
        extra_restore: Callable[[Any], None] | None = None,
    ) -> None:
        self.cluster = cluster
        self.maps = list(maps)
        self.injector = injector
        self.extra_snapshot = extra_snapshot
        self.extra_restore = extra_restore
        self.interval = injector.plan.checkpoint_interval
        self._last: Checkpoint | None = None

    @property
    def last(self) -> Checkpoint | None:
        return self._last

    def due(self, completed_rounds: int) -> bool:
        """Periodic checkpoints: every ``interval`` completed rounds."""
        return self.interval > 0 and completed_rounds % self.interval == 0

    def take(self, completed_rounds: int) -> None:
        """Snapshot all registered maps; charge serialization and shipping."""
        cluster = self.cluster
        host_nbytes = [0] * cluster.num_hosts
        host_slots = [0] * cluster.num_hosts
        with cluster.phase(
            PhaseKind.CHECKPOINT, label="checkpoint", operator="checkpoint"
        ):
            for prop_map in self.maps:
                for host in range(cluster.num_hosts):
                    slots = prop_map.checkpoint_slots(host)
                    nbytes = slots * (CHECKPOINT_KEY_BYTES + prop_map.value_nbytes)
                    host_slots[host] += slots
                    host_nbytes[host] += nbytes
                    # Serialization: one pass over the live value slots.
                    cluster.counters(host).local_ops += slots
                    # Replicated snapshot storage: ship the shard to the
                    # ring buddy (a no-op charge on one-host clusters).
                    cluster.network.send(
                        host, (host + 1) % cluster.num_hosts, nbytes
                    )
        self._last = Checkpoint(
            round=cluster.current_round,
            completed_rounds=completed_rounds,
            map_states=[prop_map.checkpoint_state() for prop_map in self.maps],
            extra=(
                copy.deepcopy(self.extra_snapshot())
                if self.extra_snapshot is not None
                else None
            ),
            host_nbytes=host_nbytes,
            host_slots=host_slots,
        )
        self.injector.note_checkpoint(cluster.current_round, sum(host_nbytes))

    def recover(self, crash: HostCrash) -> int:
        """Roll back to the last checkpoint; returns the completed-round count
        to resume the loop from."""
        checkpoint = self._last
        if checkpoint is None:
            raise RuntimeError("no checkpoint to recover from")
        cluster = self.cluster
        refetched = checkpoint.host_nbytes[crash.host]
        with cluster.phase(
            PhaseKind.RECOVERY,
            label=f"recover:host{crash.host}",
            operator="recovery",
        ):
            # Every host rolls back: deserialize its shard of the snapshot.
            for host in range(cluster.num_hosts):
                cluster.counters(host).local_ops += checkpoint.host_slots[host]
            # The crashed host lost its state entirely: its shard comes
            # back over the wire from the buddy that holds the replica.
            cluster.network.send(
                (crash.host + 1) % cluster.num_hosts, crash.host, refetched
            )
        for prop_map, state in zip(self.maps, checkpoint.map_states):
            prop_map.restore_state(state)
        if self.extra_restore is not None:
            self.extra_restore(copy.deepcopy(checkpoint.extra))
        cluster.current_round = checkpoint.round
        self.injector.note_recovery(crash, checkpoint.completed_rounds, refetched)
        return checkpoint.completed_rounds
