"""Seeded, order-independent randomness for fault schedules.

Every stochastic choice the fault layer makes is a pure function of
``(seed, *labels)``: the labels name the decision (e.g. ``("drop",
phase_ordinal, src, dst, seq, attempt)``) and the value is derived by
hashing, not by consuming a shared generator. That makes schedules
byte-reproducible across processes (no salted ``hash``), independent of
call order, and stable under replay - two runs of the same plan on the
same workload produce identical traces, which the determinism tests diff
byte-for-byte. Any future sampling added to the repro should route its
randomness through this module for the same guarantee.
"""

from __future__ import annotations

import hashlib
import random

_SCALE = float(2**64)


def stream_seed(seed: int, *labels: object) -> int:
    """A 64-bit value derived deterministically from ``seed`` and labels."""
    payload = repr((int(seed),) + tuple(labels)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def stream_uniform(seed: int, *labels: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one named decision."""
    return stream_seed(seed, *labels) / _SCALE


def stream_rng(seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` seeded from the named stream (for bulk sampling)."""
    return random.Random(stream_seed(seed, *labels))
