"""Deterministic fault injection, checkpointing, and recovery.

The subsystem has four parts: declarative :class:`FaultPlan` schedules
(:mod:`repro.faults.plan`), the per-cluster :class:`FaultInjector` hooks
(:mod:`repro.faults.injector`), round-granularity checkpoint/restore
(:mod:`repro.faults.checkpoint`), and the recoverable loop driver
(:mod:`repro.faults.recovery`). All randomness routes through
:mod:`repro.faults.rng`, so a plan + seed fully determines every injected
fault and the resulting trace bytes.
"""

from repro.faults.chaos import (
    CHAOS_KINDS,
    CHAOS_SCHEMA,
    ChaosEvent,
    ChaosPlan,
    random_chaos,
)
from repro.faults.checkpoint import Checkpoint, CheckpointManager, RoundSnapshot
from repro.faults.injector import FaultInjector, HostCrashError, install_faults
from repro.faults.plan import (
    NAMED_PLANS,
    FaultPlan,
    HostCrash,
    KvTimeouts,
    MessageFlake,
    Straggler,
    named_plan,
)
from repro.faults.recovery import run_recoverable_loop
from repro.faults.rng import stream_rng, stream_seed, stream_uniform

__all__ = [
    "CHAOS_KINDS",
    "CHAOS_SCHEMA",
    "NAMED_PLANS",
    "ChaosEvent",
    "ChaosPlan",
    "Checkpoint",
    "CheckpointManager",
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "HostCrashError",
    "KvTimeouts",
    "MessageFlake",
    "RoundSnapshot",
    "Straggler",
    "install_faults",
    "named_plan",
    "random_chaos",
    "run_recoverable_loop",
    "stream_rng",
    "stream_seed",
    "stream_uniform",
]
