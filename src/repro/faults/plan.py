"""Fault plans: the declarative, fully deterministic failure schedule.

A :class:`FaultPlan` describes everything that will go wrong during a run:
host crashes pinned to a BSP round, transient message drop/duplication
rates over a round window, straggler (slow-host) multipliers, and
transient key-value-store timeouts. Given the same plan, the same seed and
the same workload, the injected faults - and therefore the full metrics
log and the exported trace - are byte-identical across runs; all
randomness routes through :mod:`repro.faults.rng`.

Plans are *models*: the simulation never loses data (it is in-process),
so a "dropped" message is charged as a retransmission, a "crash" triggers
restore-and-replay from the last checkpoint, and a straggler stretches
the host's modeled compute time. The point is to price the recovery
machinery and surface it in traces, the way Distributed GraphLab prices
snapshot-based recovery at iteration granularity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be in [0, 1); got {value}")


@dataclass(frozen=True)
class HostCrash:
    """Host ``host`` fails when the recoverable loop enters round ``round``.

    Recovery rolls every registered map back to the last checkpoint and
    replays; a crash at a round the workload never reaches simply does not
    fire (it is reported as pending in the run's faults section).
    """

    host: int
    round: int

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError("crash host must be >= 0")
        if self.round < 1:
            raise ValueError("crash round must be >= 1 (rounds count from 1)")


@dataclass(frozen=True)
class MessageFlake:
    """Transient message loss/duplication over a window of rounds.

    Each logical message is independently dropped with ``drop_rate`` (and
    retransmitted: the sender is charged one full resend per drop, up to
    ``max_retries`` before the transport is modeled as getting through)
    and duplicated with ``duplicate_rate`` (the receiver is charged one
    extra delivery). Values always arrive - only modeled cost changes.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    first_round: int = 0
    last_round: int | None = None
    max_retries: int = 3

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def covers(self, round: int) -> bool:
        return round >= self.first_round and (
            self.last_round is None or round <= self.last_round
        )


@dataclass(frozen=True)
class Straggler:
    """Host ``host`` runs ``multiplier``x slower over a window of rounds.

    Applied as a per-host multiplier on modeled compute units inside every
    phase of the window - the BSP barrier then stretches the whole phase,
    which is exactly how a slow host hurts a synchronous system.
    """

    host: int
    multiplier: float = 2.0
    first_round: int = 0
    last_round: int | None = None

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError("straggler host must be >= 0")
        if self.multiplier <= 0:
            raise ValueError("straggler multiplier must be positive")

    def covers(self, round: int) -> bool:
        return round >= self.first_round and (
            self.last_round is None or round <= self.last_round
        )


@dataclass(frozen=True)
class KvTimeouts:
    """Transient key-value-store request timeouts (MC variant).

    Each client request independently times out with ``rate``; every
    timeout is retried (one extra request message per retry, capped at
    ``max_retries``), modeling memcached's client-side retry loop.
    """

    rate: float = 0.0
    first_round: int = 0
    last_round: int | None = None
    max_retries: int = 3

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def covers(self, round: int) -> bool:
        return round >= self.first_round and (
            self.last_round is None or round <= self.last_round
        )


@dataclass(frozen=True)
class FaultPlan:
    """One named, seeded failure schedule for a run.

    ``checkpoint_interval`` is the number of completed loop rounds between
    checkpoints (0 disables periodic checkpoints). Whenever the plan can
    crash a host - or the interval is positive - an entry checkpoint is
    taken as a recoverable loop starts, so every crash remains
    recoverable; crash-free plans with interval 0 skip checkpointing
    entirely.
    """

    name: str = "plan"
    seed: int = 0
    checkpoint_interval: int = 2
    crashes: tuple[HostCrash, ...] = ()
    flake: MessageFlake | None = None
    stragglers: tuple[Straggler, ...] = ()
    kv_timeouts: KvTimeouts | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.round in seen:
                raise ValueError(
                    f"two crashes scheduled for round {crash.round}; "
                    "one crash per round keeps recovery attributable"
                )
            seen.add(crash.round)

    def describe(self) -> dict:
        """JSON-ready form (the ``faults.plan`` section of run reports)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "checkpoint_interval": self.checkpoint_interval,
            "crashes": [asdict(crash) for crash in self.crashes],
            "flake": asdict(self.flake) if self.flake else None,
            "stragglers": [asdict(straggler) for straggler in self.stragglers],
            "kv_timeouts": asdict(self.kv_timeouts) if self.kv_timeouts else None,
        }


def named_plan(
    name: str,
    *,
    seed: int = 0,
    hosts: int = 4,
    crash_round: int = 3,
    checkpoint_interval: int = 2,
) -> FaultPlan:
    """Build one of the preset plans used by ``repro faults`` and CI.

    ``hosts`` bounds the victim host ids so presets stay valid on any
    cluster size.
    """
    victim = 1 % max(hosts, 1)
    slow = 0
    if name == "crash":
        return FaultPlan(
            name="crash",
            seed=seed,
            checkpoint_interval=checkpoint_interval,
            crashes=(HostCrash(host=victim, round=crash_round),),
        )
    if name == "flaky-net":
        return FaultPlan(
            name="flaky-net",
            seed=seed,
            checkpoint_interval=0,
            flake=MessageFlake(drop_rate=0.05, duplicate_rate=0.02),
        )
    if name == "straggler":
        return FaultPlan(
            name="straggler",
            seed=seed,
            checkpoint_interval=0,
            stragglers=(Straggler(host=slow, multiplier=3.0),),
        )
    if name == "kv-lag":
        return FaultPlan(
            name="kv-lag",
            seed=seed,
            checkpoint_interval=0,
            kv_timeouts=KvTimeouts(rate=0.1),
        )
    if name == "chaos":
        return FaultPlan(
            name="chaos",
            seed=seed,
            checkpoint_interval=checkpoint_interval,
            crashes=(HostCrash(host=victim, round=crash_round),),
            flake=MessageFlake(drop_rate=0.03, duplicate_rate=0.01),
            stragglers=(Straggler(host=slow, multiplier=1.5),),
            kv_timeouts=KvTimeouts(rate=0.05),
        )
    raise ValueError(f"unknown fault plan {name!r}; have {sorted(NAMED_PLANS)}")


NAMED_PLANS = ("chaos", "crash", "flaky-net", "kv-lag", "straggler")
