"""Cartesian vertex-cut (Boman et al. [14]), as used by Gluon/CuSP.

Hosts form a ``pr x pc`` grid. Nodes get contiguous degree-balanced owner
blocks (one per host). Edge ``(u, v)`` is assigned to the host at grid
position ``(row_of(owner(u)), col_of(owner(v)))``, so a node's outgoing
edges are spread over the ``pc`` hosts of its owner's grid row and its
incoming edges over the ``pr`` hosts of its owner's grid column. This is the
vertex-cut the paper uses for CC, MSF and MIS (Section 6.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.csr import Graph
from repro.partition.base import PartitionedGraph, balanced_node_blocks, build_partitioned


def grid_shape(num_hosts: int) -> tuple[int, int]:
    """Factor ``num_hosts`` into the most square ``(pr, pc)`` grid."""
    best_rows = 1
    for rows in range(1, int(math.isqrt(num_hosts)) + 1):
        if num_hosts % rows == 0:
            best_rows = rows
    return best_rows, num_hosts // best_rows


class CartesianVertexCut:
    """CVC: a 2-D blocked edge assignment over the host grid."""

    name = "cvc"

    def partition(self, graph: Graph, num_hosts: int) -> PartitionedGraph:
        rows, cols = grid_shape(num_hosts)
        owner = balanced_node_blocks(graph, num_hosts)
        owner = np.minimum(owner, num_hosts - 1)
        srcs = graph.edge_sources()
        dsts = graph.indices
        src_row = owner[srcs] // cols
        dst_col = owner[dsts] % cols
        edge_host = src_row * cols + dst_col
        return build_partitioned(graph, self.name, owner, edge_host, num_hosts=num_hosts)
