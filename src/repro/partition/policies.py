"""Policy registry and the one-call partitioning entry point."""

from __future__ import annotations

from repro.graph.csr import Graph
from repro.partition.base import PartitionedGraph
from repro.partition.cartesian import CartesianVertexCut
from repro.partition.edge_cut import IncomingEdgeCut, OutgoingEdgeCut
from repro.partition.hybrid import HybridVertexCut

POLICIES = {
    policy.name: policy
    for policy in (
        OutgoingEdgeCut(),
        IncomingEdgeCut(),
        CartesianVertexCut(),
        HybridVertexCut(),
    )
}


def partition(graph: Graph, num_hosts: int, policy: str = "oec") -> PartitionedGraph:
    """Partition ``graph`` over ``num_hosts`` with the named policy.

    The paper's experiments use ``cvc`` for CC/MSF/MIS and an edge-cut
    (``oec`` here) for LV/LD, because Vite only supports edge-cuts.
    """
    if num_hosts < 1:
        raise ValueError("need at least one host")
    try:
        chosen = POLICIES[policy]
    except KeyError:
        raise ValueError(f"unknown policy {policy!r}; have {sorted(POLICIES)}") from None
    return chosen.partition(graph, num_hosts)
