"""Hybrid vertex-cut (PowerLyra-style [25]).

Kimbap's claim to support *general* partitioning policies (Section 1) is
exercised with a degree-differentiated policy: low-in-degree nodes keep
all their incoming edges on their owner host (edge-cut locality), while
high-in-degree hubs have incoming edges placed by the *source's* owner
(vertex-cut scale-out). This is the standard answer to power-law skew:
only the few hubs pay replication.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.partition.base import PartitionedGraph, balanced_node_blocks, build_partitioned


class HybridVertexCut:
    """Low-degree: edge lives at owner(dst). High-degree dst: at owner(src)."""

    name = "hvc"

    def __init__(self, threshold: int | None = None) -> None:
        self.threshold = threshold

    def partition(self, graph: Graph, num_hosts: int) -> PartitionedGraph:
        owner = balanced_node_blocks(graph, num_hosts)
        owner = np.minimum(owner, num_hosts - 1)
        in_degrees = np.bincount(graph.indices, minlength=graph.num_nodes)
        threshold = self.threshold
        if threshold is None:
            # default: hubs are nodes whose in-degree exceeds 4x the mean
            mean_degree = max(graph.num_edges / max(graph.num_nodes, 1), 1.0)
            threshold = int(4 * mean_degree) + 1
        srcs = graph.edge_sources()
        dsts = graph.indices
        is_hub_dst = in_degrees[dsts] >= threshold
        edge_host = np.where(is_hub_dst, owner[srcs], owner[dsts])
        return build_partitioned(graph, self.name, owner, edge_host, num_hosts=num_hosts)
