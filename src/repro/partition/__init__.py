"""Graph partitioning: edge-cut and vertex-cut policies with master/mirror proxies."""

from repro.partition.base import LocalPartition, PartitionedGraph, build_partitioned
from repro.partition.edge_cut import OutgoingEdgeCut, IncomingEdgeCut
from repro.partition.cartesian import CartesianVertexCut
from repro.partition.hybrid import HybridVertexCut
from repro.partition.policies import POLICIES, partition

__all__ = [
    "LocalPartition",
    "PartitionedGraph",
    "build_partitioned",
    "OutgoingEdgeCut",
    "IncomingEdgeCut",
    "CartesianVertexCut",
    "HybridVertexCut",
    "POLICIES",
    "partition",
]
