"""Edge-cut partitioning policies.

An edge-cut assigns *all* outgoing (or all incoming) edges of a node to the
node's owner host, so mirrors have no outgoing (respectively incoming)
edges - the structural invariant Gluon's communication elisions exploit.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.partition.base import PartitionedGraph, balanced_node_blocks, build_partitioned


class OutgoingEdgeCut:
    """OEC: edge (u, v) lives on owner(u); contiguous degree-balanced owners."""

    name = "oec"

    def partition(self, graph: Graph, num_hosts: int) -> PartitionedGraph:
        owner = balanced_node_blocks(graph, num_hosts)
        owner = np.minimum(owner, num_hosts - 1)
        edge_host = owner[graph.edge_sources()]
        return build_partitioned(graph, self.name, owner, edge_host, num_hosts=num_hosts)


class IncomingEdgeCut:
    """IEC: edge (u, v) lives on owner(v)."""

    name = "iec"

    def partition(self, graph: Graph, num_hosts: int) -> PartitionedGraph:
        owner = balanced_node_blocks(graph, num_hosts)
        owner = np.minimum(owner, num_hosts - 1)
        edge_host = owner[graph.indices]
        return build_partitioned(graph, self.name, owner, edge_host, num_hosts=num_hosts)
