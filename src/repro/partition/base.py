"""Partitioned graphs: per-host local graphs with master and mirror proxies.

Section 2.2 of the paper: edges are partitioned among hosts and proxy nodes
are created for their endpoints. One proxy per node is the *master* (holds
the canonical property value); the rest are *mirrors*. Each host's partition
is a small graph in itself, over local node ids, so operators run without
knowing the graph is distributed.

Local id convention: on every host, masters occupy local ids
``0 .. num_masters - 1`` (in ascending global id order) and mirrors follow
(also ascending). This is what lets the GAR layout use one dense vector for
all locally-materialized properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.graph.csr import Graph


@dataclass
class LocalPartition:
    """One host's share of the graph, in local-id CSR form."""

    host_id: int
    local_to_global: np.ndarray  # global id of each local id; masters first
    num_masters: int
    indptr: np.ndarray  # CSR over local ids
    indices: np.ndarray  # local destination ids
    weights: np.ndarray | None

    @cached_property
    def global_to_local(self) -> dict[int, int]:
        return {int(g): l for l, g in enumerate(self.local_to_global)}

    @property
    def num_local(self) -> int:
        return self.local_to_global.size

    @property
    def num_mirrors(self) -> int:
        return self.num_local - self.num_masters

    @property
    def masters_global(self) -> np.ndarray:
        return self.local_to_global[: self.num_masters]

    @property
    def mirrors_global(self) -> np.ndarray:
        return self.local_to_global[self.num_masters :]

    def is_master_local(self, local: int) -> bool:
        return local < self.num_masters

    def has_node(self, global_id: int) -> bool:
        return global_id in self.global_to_local

    def degree(self, local: int) -> int:
        return int(self.indptr[local + 1] - self.indptr[local])

    def neighbors(self, local: int) -> np.ndarray:
        return self.indices[self.indptr[local] : self.indptr[local + 1]]

    def edge_range(self, local: int) -> range:
        return range(int(self.indptr[local]), int(self.indptr[local + 1]))

    def edge_dst(self, edge: int) -> int:
        return int(self.indices[edge])

    def edge_weight(self, edge: int) -> float:
        if self.weights is None:
            return 1.0
        return float(self.weights[edge])

    @cached_property
    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.indices, minlength=self.num_local)

    def num_edges(self) -> int:
        return self.indices.size


@dataclass
class PartitionedGraph:
    """The global graph plus every host's :class:`LocalPartition`."""

    graph: Graph
    policy: str
    owner: np.ndarray  # owner host of every global node
    parts: list[LocalPartition]

    @property
    def num_hosts(self) -> int:
        return len(self.parts)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def owner_of(self, global_id: int) -> int:
        return int(self.owner[global_id])

    @cached_property
    def mirror_hosts_by_owner(self) -> list[list[tuple[int, np.ndarray]]]:
        """For each owner host: the (mirror host, mirrored global ids) pairs.

        This is the broadcast fan-out structure: after a reduce-sync, owner
        ``h`` pushes updated master values to exactly these hosts.
        """
        fan_out: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(self.num_hosts)]
        for part in self.parts:
            mirrors = part.mirrors_global
            if mirrors.size == 0:
                continue
            owners = self.owner[mirrors]
            for owner_host in np.unique(owners):
                owned_mirrors = mirrors[owners == owner_host]
                fan_out[int(owner_host)].append((part.host_id, owned_mirrors))
        return fan_out

    @cached_property
    def any_mirror_has_outgoing(self) -> bool:
        """False for outgoing edge-cuts: the structural invariant Gluon
        exploits to elide broadcasts for push-style operators."""
        for part in self.parts:
            for mirror_local in range(part.num_masters, part.num_local):
                if part.degree(mirror_local) > 0:
                    return True
        return False

    @cached_property
    def any_mirror_has_incoming(self) -> bool:
        for part in self.parts:
            if part.in_degrees[part.num_masters :].any():
                return True
        return False

    def total_mirrors(self) -> int:
        return sum(part.num_mirrors for part in self.parts)

    def replication_factor(self) -> float:
        """Average number of proxies per node (1.0 means no mirrors)."""
        total_proxies = sum(part.num_local for part in self.parts)
        return total_proxies / max(self.num_nodes, 1)


def balanced_node_blocks(graph: Graph, num_blocks: int) -> np.ndarray:
    """Assign nodes to contiguous blocks with roughly equal edge counts.

    Returns the block id of each node. Contiguity preserves locality and is
    what real partitioners (CuSP) do for the blocked policies.
    """
    degrees = graph.out_degrees() + 1  # +1 keeps empty nodes balanced too
    cumulative = np.cumsum(degrees)
    total = cumulative[-1] if cumulative.size else 0
    # boundaries[k] is the first node of block k + 1: the node at which the
    # running edge count first meets the k-th equal-share target completes
    # block k, so the next block starts one past it.
    targets = np.arange(1, num_blocks) * total / num_blocks
    boundaries = np.searchsorted(cumulative, targets, side="left") + 1
    block = np.searchsorted(boundaries, np.arange(graph.num_nodes), side="right")
    return block.astype(np.int64)


def build_partitioned(
    graph: Graph,
    policy: str,
    owner: np.ndarray,
    edge_host: np.ndarray,
    num_hosts: int | None = None,
) -> PartitionedGraph:
    """Assemble per-host local partitions from an edge->host assignment.

    Every owned node exists on its owner host (the master proxy always
    exists, even with no local edges) and every endpoint of a local edge
    exists as either a master or a mirror proxy. ``num_hosts`` keeps empty
    hosts alive when there are more hosts than nodes (their partitions are
    simply empty).
    """
    if num_hosts is None:
        num_hosts = int(owner.max(initial=-1)) + 1 if owner.size else 1
        num_hosts = max(num_hosts, int(edge_host.max(initial=-1)) + 1, 1)
    srcs = graph.edge_sources()
    dsts = graph.indices
    parts: list[LocalPartition] = []
    owned_by_host = [np.flatnonzero(owner == h) for h in range(num_hosts)]
    for host in range(num_hosts):
        mask = edge_host == host
        host_srcs = srcs[mask]
        host_dsts = dsts[mask]
        host_weights = graph.weights[mask] if graph.weights is not None else None
        endpoints = np.unique(np.concatenate([host_srcs, host_dsts]))
        masters = owned_by_host[host]
        mirrors = np.setdiff1d(endpoints, masters, assume_unique=False)
        local_to_global = np.concatenate([masters, mirrors])
        lookup = np.empty(graph.num_nodes, dtype=np.int64)
        lookup[local_to_global] = np.arange(local_to_global.size, dtype=np.int64)
        local_srcs = lookup[host_srcs]
        local_dsts = lookup[host_dsts]
        order = np.argsort(local_srcs, kind="stable")
        local_srcs = local_srcs[order]
        local_dsts = local_dsts[order]
        if host_weights is not None:
            host_weights = host_weights[order]
        counts = np.bincount(local_srcs, minlength=local_to_global.size)
        indptr = np.zeros(local_to_global.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        parts.append(
            LocalPartition(
                host_id=host,
                local_to_global=local_to_global,
                num_masters=masters.size,
                indptr=indptr,
                indices=local_dsts,
                weights=host_weights,
            )
        )
    return PartitionedGraph(graph=graph, policy=policy, owner=owner, parts=parts)
