"""Evaluation harness: workload registry, run drivers, and table printers.

Everything the benchmark modules under ``benchmarks/`` share: the Table 1
graph analogs (:mod:`repro.eval.workloads`), one-call runners that build
cluster + partition + algorithm and return a structured row
(:mod:`repro.eval.harness`), and the text renderers that print rows the
way the paper's tables and figures report them
(:mod:`repro.eval.reporting`).
"""

from repro.eval.workloads import GRAPHS, GraphSpec, load_graph, medium_host_counts
from repro.eval.harness import RunResult, run_galois, run_gluon, run_kimbap, run_vite
from repro.eval.reporting import format_phase_breakdown, format_table, print_series

__all__ = [
    "GRAPHS",
    "GraphSpec",
    "load_graph",
    "medium_host_counts",
    "RunResult",
    "run_kimbap",
    "run_vite",
    "run_gluon",
    "run_galois",
    "format_phase_breakdown",
    "format_table",
    "print_series",
]
