"""Plain-text renderers for paper-style tables and scaling series."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.eval.harness import RunResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_series(title: str, results: Iterable[RunResult]) -> str:
    """One strong-scaling series: hosts vs modeled seconds (a figure line)."""
    rows = [
        (r.system, r.hosts, f"{r.time.computation:.3f}", f"{r.time.communication:.3f}", f"{r.total:.3f}")
        for r in results
    ]
    body = format_table(
        ("system", "hosts", "comp (s)", "comm (s)", "total (s)"), rows
    )
    text = f"\n== {title} ==\n{body}"
    print(text)
    return text


def speedup(baseline: RunResult, contender: RunResult) -> float:
    """How many times faster the contender is than the baseline."""
    if contender.total == 0:
        return float("inf")
    return baseline.total / contender.total
