"""Plain-text renderers for paper-style tables and scaling series."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.costmodel import CostModel, ModeledTime
from repro.cluster.metrics import MetricsLog, PhaseKind
from repro.eval.harness import RunResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_series(title: str, results: Iterable[RunResult]) -> str:
    """One strong-scaling series: hosts vs modeled seconds (a figure line)."""
    rows = [
        (r.system, r.hosts, f"{r.time.computation:.3f}", f"{r.time.communication:.3f}", f"{r.total:.3f}")
        for r in results
    ]
    body = format_table(
        ("system", "hosts", "comp (s)", "comm (s)", "total (s)"), rows
    )
    text = f"\n== {title} ==\n{body}"
    print(text)
    return text


def phase_breakdown_rows(
    log: MetricsLog, cost_model: CostModel, threads: int
) -> list[tuple]:
    """Per-(round, PhaseKind) modeled-time aggregation, in execution order.

    Rounds appear in the order they ran; within a round, kinds appear in
    the order their first phase opened - so the table reads like the BSP
    schedule itself.
    """
    order: list[tuple[int, PhaseKind]] = []
    times: dict[tuple[int, PhaseKind], ModeledTime] = {}
    phases: dict[tuple[int, PhaseKind], int] = {}
    events: dict[tuple[int, PhaseKind], int] = {}
    for phase in log.phases:
        bucket = (phase.round, phase.kind)
        if bucket not in times:
            order.append(bucket)
            times[bucket] = ModeledTime(0.0, 0.0)
            phases[bucket] = 0
            events[bucket] = 0
        times[bucket] = times[bucket] + cost_model.phase_time(phase, threads)
        phases[bucket] += 1
        events[bucket] += sum(c.total_events() for c in phase.counters)
    rows = []
    for bucket in order:
        round_index, kind = bucket
        t = times[bucket]
        rows.append(
            (
                round_index,
                kind.value,
                phases[bucket],
                events[bucket],
                f"{t.computation:.4f}",
                f"{t.communication:.4f}",
                f"{t.total:.4f}",
            )
        )
    return rows


def format_phase_breakdown(
    log: MetricsLog, cost_model: CostModel, threads: int
) -> str:
    """The per-round/per-kind breakdown as a monospace table."""
    return format_table(
        ("round", "phase", "count", "events", "comp (s)", "comm (s)", "total (s)"),
        phase_breakdown_rows(log, cost_model, threads),
    )


def speedup(baseline: RunResult, contender: RunResult) -> float:
    """How many times faster the contender is than the baseline."""
    if contender.total == 0:
        return float("inf")
    return baseline.total / contender.total
