"""Run drivers: one call per (system, application, workload, hosts) cell.

Each driver builds a fresh cluster and partition, runs the algorithm,
excludes loading/partitioning from the measured region exactly as the
paper does ("we report the execution time ... excluding graph
loading/partitioning time"), and returns a structured :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.algorithms import (
    bfs,
    boruvka_msf,
    cc_lp,
    cc_sclp,
    cc_sv,
    k_core,
    leiden,
    louvain,
    mis,
    pagerank,
    sssp,
    vertex_cover,
)
from repro.baselines import (
    galois_cc_lp,
    galois_cc_sv,
    galois_leiden,
    galois_louvain,
    galois_mis,
    galois_msf,
    gluon_cc_lp,
    vite_louvain,
)
from repro.cluster import Cluster, ModeledTime
from repro.cluster.cluster import SimulatedOutOfMemory
from repro.cluster.metrics import PhaseKind
from repro.core.variants import RuntimeVariant
from repro.eval.workloads import load_graph
from repro.exec import Executor
from repro.faults import FaultPlan, install_faults
from repro.graph.csr import Graph
from repro.partition import partition
from repro.runtime.engine import NonQuiescenceError

# The paper's partitioning choices (Section 6.1): Cartesian vertex-cut for
# CC / MSF / MIS, edge-cut for LV / LD (Vite only supports edge-cuts).
# Extension apps: K-CORE and VERTEX-COVER need each node's full edge list
# at its master (edge-cut); the traversal suite runs on the vertex-cut.
APP_POLICY = {
    "LV": "oec",
    "LD": "oec",
    "MSF": "cvc",
    "CC-LP": "cvc",
    "CC-SCLP": "cvc",
    "CC-SV": "cvc",
    "MIS": "cvc",
    "BFS": "cvc",
    "SSSP": "cvc",
    "PR": "cvc",
    "K-CORE": "oec",
    "VERTEX-COVER": "oec",
}

APP_WEIGHTED = {"LV": True, "LD": True, "MSF": True, "SSSP": True}

KIMBAP_APPS: dict[str, Callable] = {
    "LV": louvain,
    "LD": leiden,
    "MSF": boruvka_msf,
    "CC-LP": cc_lp,
    "CC-SCLP": cc_sclp,
    "CC-SV": cc_sv,
    "MIS": mis,
    "BFS": bfs,
    "SSSP": sssp,
    "PR": pagerank,
    "K-CORE": k_core,
    "VERTEX-COVER": vertex_cover,
}

GALOIS_APPS: dict[str, Callable] = {
    "LV": galois_louvain,
    "LD": galois_leiden,
    "MSF": galois_msf,
    "CC-LP": galois_cc_lp,
    "CC-SV": galois_cc_sv,
    "MIS": galois_mis,
}

THREADS_PER_HOST = 48  # Stampede2 SKX: 48 threads per host


RESULT_SCHEMA = "repro-run-result/v1"


@dataclass
class RunResult:
    """One measured cell of a paper table or figure.

    ``counters`` are the run's summed event counters (the cost-model
    inputs); ``cluster`` keeps the simulated cluster - and with it the full
    phase log - alive so traces and profiles can be built from the result.

    ``outcome`` is ``"ok"`` for a completed run, ``"oom"`` or
    ``"non-quiescent"`` for the structured failure cells (the paper's OOM
    table entries); ``failure`` then carries the typed details. ``faults``
    is the injector's report when the run executed under a fault plan.
    ``values`` keeps the algorithm's final per-node properties (when the
    run produced them) for equivalence checking; it is never serialized.
    """

    system: str
    app: str
    graph: str
    hosts: int
    time: ModeledTime
    rounds: int
    stats: dict[str, float] = field(default_factory=dict)
    messages: int = 0
    bytes: int = 0
    time_by_kind: dict[PhaseKind, ModeledTime] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    threads: int = THREADS_PER_HOST
    cluster: Cluster | None = field(default=None, repr=False, compare=False)
    outcome: str = "ok"
    failure: dict | None = None
    faults: dict | None = None
    values: dict | None = field(default=None, repr=False, compare=False)
    # Execution engine the run used ("bsp" | "async"). Serialized only when
    # it is not the BSP oracle, so every existing report stays byte-identical.
    engine: str = "bsp"

    @property
    def total(self) -> float:
        return self.time.total

    def row(self) -> tuple:
        return (
            self.system,
            self.app,
            self.graph,
            self.hosts,
            round(self.time.computation, 3),
            round(self.time.communication, 3),
            round(self.total, 3),
        )

    def timeline(self):
        """Modeled per-host timeline of this run (``repro.trace.Timeline``)."""
        if self.cluster is None:
            raise ValueError("run result carries no cluster; cannot build a timeline")
        from repro.trace import build_timeline

        return build_timeline(
            self.cluster.log, self.cluster.cost_model, self.threads
        )

    def to_dict(self) -> dict:
        """Machine-readable form (the ``BENCH_*.json`` schema).

        The ``outcome``/``failure``/``faults`` keys appear only on failed
        or fault-injected runs, so fault-free reports stay byte-identical
        to the pre-fault-layer schema.
        """
        result = {
            "schema": RESULT_SCHEMA,
            "system": self.system,
            "app": self.app,
            "graph": self.graph,
            "hosts": self.hosts,
            "threads": self.threads,
            "comp": self.time.computation,
            "comm": self.time.communication,
            "total": self.total,
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes": self.bytes,
            "counters": dict(self.counters),
            "stats": {key: float(value) for key, value in self.stats.items()},
            "time_by_kind": {
                kind.value: {"comp": t.computation, "comm": t.communication}
                for kind, t in self.time_by_kind.items()
            },
        }
        if self.outcome != "ok":
            result["outcome"] = self.outcome
            result["failure"] = dict(self.failure) if self.failure else None
        if self.faults is not None:
            result["faults"] = self.faults
        if self.engine != "bsp":
            result["engine"] = self.engine
        return result


def _finish(
    system: str,
    app: str,
    graph_name: str,
    hosts: int,
    cluster: Cluster,
    result,
) -> RunResult:
    elapsed, by_kind = cluster.elapsed_all()
    return RunResult(
        system=system,
        app=app,
        graph=graph_name,
        hosts=hosts,
        time=elapsed,
        rounds=result.rounds,
        stats=dict(result.stats),
        messages=cluster.log.total_messages(),
        bytes=cluster.log.total_bytes(),
        time_by_kind=by_kind,
        counters=cluster.log.total_counters().as_dict(),
        threads=cluster.threads_per_host,
        cluster=cluster,
        values=getattr(result, "values", None),
    )


def _failed(
    system: str,
    app: str,
    graph_name: str,
    hosts: int,
    cluster: Cluster,
    outcome: str,
    failure: dict,
    rounds: int = 0,
) -> RunResult:
    """A structured failed-run cell: metrics up to the failure point."""
    elapsed, by_kind = cluster.elapsed_all()
    return RunResult(
        system=system,
        app=app,
        graph=graph_name,
        hosts=hosts,
        time=elapsed,
        rounds=rounds,
        messages=cluster.log.total_messages(),
        bytes=cluster.log.total_bytes(),
        time_by_kind=by_kind,
        counters=cluster.log.total_counters().as_dict(),
        threads=cluster.threads_per_host,
        cluster=cluster,
        outcome=outcome,
        failure=failure,
    )


def _attach_faults(result: RunResult, injector, cluster: Cluster) -> None:
    """Stamp the injector's report - plus priced checkpoint/recovery time -
    onto a run result."""
    report = injector.report()
    by_kind = cluster.elapsed_by_kind()
    zero = ModeledTime(0.0, 0.0)
    report["checkpoint_time"] = by_kind.get(PhaseKind.CHECKPOINT, zero).total
    report["recovery_time"] = by_kind.get(PhaseKind.RECOVERY, zero).total
    result.faults = report


def run_kimbap(
    app: str,
    graph_name: str,
    hosts: int,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    threads: int = THREADS_PER_HOST,
    graph: Graph | None = None,
    pgraph: Any | None = None,
    fault_plan: FaultPlan | None = None,
    memory_limit_slots: int | None = None,
    bulk: bool = False,
    jobs: int = 1,
    chaos_plan: Any | None = None,
    recovery: str = "fail-fast",
    codegen: bool | None = None,
    engine: str = "bsp",
    **kwargs: Any,
) -> RunResult:
    """Run a Kimbap application on the simulated cluster.

    ``pgraph`` optionally supplies a prebuilt partition so callers timing
    the run can exclude partitioning from the measured region, exactly as
    the paper reports execution time; when omitted, the graph is
    partitioned with the app's paper policy (``APP_POLICY``).

    ``bulk`` selects the executor backend (scalar reference vs vectorized
    bulk) for the whole run - the backend is an executor property, not a
    per-algorithm flag, so every application supports it. ``jobs`` fans
    shardable compute phases out to that many OS processes
    (``repro.exec.pool``); it composes with either backend and preserves
    byte-identical results by contract. ``codegen`` controls the
    plan-to-kernel generation stage (``repro.exec.codegen``; None = on
    for the bulk backend); ``codegen=False`` pins the interpreted bulk
    kernels, byte-identical by contract.

    With a ``fault_plan``, the run executes under deterministic fault
    injection (``repro.faults``) and the result carries the structured
    ``faults`` report. Failures the paper reports as table cells -
    simulated OOM and non-quiescence - come back as a ``RunResult`` with
    ``outcome`` set instead of raising.

    ``recovery`` arms the self-healing pool (``"refork"``/``"reshard"``)
    and ``chaos_plan`` (a :class:`repro.faults.chaos.ChaosPlan`) delivers
    real SIGKILL/SIGTERM/OOM kills to workers at chosen sync boundaries -
    a healed run stays byte-identical to an undisturbed ``jobs=1`` run.

    ``engine`` picks the drive loop (``repro.exec.engine``): ``"bsp"``
    (default) is the byte-identity oracle; ``"async"`` schedules
    residual-declared plans (PR, SSSP, CC-LP, BFS) barrier-free with
    priority/delta ordering, verified by value-equivalence instead.
    """
    if graph is None:
        graph = load_graph(graph_name, weighted=APP_WEIGHTED.get(app, False))
    if pgraph is None:
        pgraph = partition(graph, hosts, APP_POLICY[app])
    cluster = Cluster(
        hosts, threads_per_host=threads, memory_limit_slots=memory_limit_slots
    )
    injector = None
    if fault_plan is not None:
        injector = install_faults(cluster, fault_plan)
    executor = Executor(
        cluster,
        bulk=bulk,
        jobs=jobs,
        recovery=recovery,
        chaos=chaos_plan,
        codegen=codegen,
        engine=engine,
    )
    label = "Kimbap" if variant is RuntimeVariant.KIMBAP else f"Kimbap[{variant.label}]"
    try:
        try:
            result = KIMBAP_APPS[app](
                cluster, pgraph, variant=variant, executor=executor, **kwargs
            )
        finally:
            # Reap the worker pool (and its /dev/shm segments) no matter
            # how the run ends; grab the exchange stats first - close()
            # drops the pool.
            parallel_stats = executor.parallel_stats()
            executor.close()
    except SimulatedOutOfMemory as oom:
        run = _failed(
            label,
            app,
            graph_name,
            hosts,
            cluster,
            "oom",
            {
                "error": "SimulatedOutOfMemory",
                "host": oom.host,
                "owner": oom.owner,
                "total_slots": oom.total_slots,
                "limit": oom.limit,
            },
        )
    except NonQuiescenceError as stuck:
        run = _failed(
            label,
            app,
            graph_name,
            hosts,
            cluster,
            "non-quiescent",
            {
                "error": "NonQuiescenceError",
                "loop": stuck.loop,
                "rounds": stuck.rounds,
                "maps": stuck.map_names,
            },
            rounds=stuck.rounds,
        )
    else:
        run = _finish(label, app, graph_name, hosts, cluster, result)
    if injector is not None:
        _attach_faults(run, injector, cluster)
    run.engine = executor.engine.name
    # Side-channel instrumentation only: not a dataclass field, so it never
    # enters to_dict() and cannot perturb the byte-identity contract.
    run.parallel = parallel_stats
    run.async_stats = (
        {
            "updates": executor.engine.last_updates,
            "chunks": executor.engine.last_chunks,
        }
        if executor.engine.name == "async"
        else None
    )
    return run


def run_vite(
    graph_name: str,
    hosts: int,
    threads: int = THREADS_PER_HOST,
    graph: Graph | None = None,
    **kwargs: Any,
) -> RunResult:
    if graph is None:
        graph = load_graph(graph_name, weighted=True)
    pgraph = partition(graph, hosts, "oec")
    cluster = Cluster(hosts, threads_per_host=threads)
    result = vite_louvain(cluster, pgraph, **kwargs)
    return _finish("Vite", "LV", graph_name, hosts, cluster, result)


def run_gluon(
    graph_name: str,
    hosts: int,
    threads: int = THREADS_PER_HOST,
    graph: Graph | None = None,
) -> RunResult:
    if graph is None:
        graph = load_graph(graph_name)
    pgraph = partition(graph, hosts, "cvc")
    cluster = Cluster(hosts, threads_per_host=threads)
    result = gluon_cc_lp(cluster, pgraph)
    return _finish("Gluon", "CC-LP", graph_name, hosts, cluster, result)


def run_galois(
    app: str,
    graph_name: str,
    threads: int = THREADS_PER_HOST,
    graph: Graph | None = None,
) -> RunResult:
    if graph is None:
        graph = load_graph(graph_name, weighted=APP_WEIGHTED.get(app, False))
    cluster = Cluster(1, threads_per_host=threads)
    result = GALOIS_APPS[app](cluster, graph)
    return _finish("Galois", app, graph_name, 1, cluster, result)
