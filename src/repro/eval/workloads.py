"""Workload registry: the Table 1 input-graph analogs.

Each paper graph maps to a synthetic analog ~10^4x smaller that keeps the
structural property the evaluation exploits (see DESIGN.md section 3).
``REPRO_BENCH_SCALE`` scales every analog up or down (integer offset on the
RMAT scale / multiplier on grid rows) so benchmark cost is tunable.

=============  =================  ==========================  =========
paper graph    analog             signature preserved          category
=============  =================  ==========================  =========
road-europe    road_like          high diameter, degree ~4     medium
friendster     powerlaw_like      power-law, few huge hubs     medium
clueweb12      web_like           denser power-law             large
wdc12          web_like_xl        densest, most skewed         large
=============  =================  ==========================  =========
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.graph import generators
from repro.graph.csr import Graph


def bench_scale() -> int:
    """Integer scale offset from the REPRO_BENCH_SCALE env var (default 0)."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "0"))


@dataclass(frozen=True)
class GraphSpec:
    name: str
    paper_name: str
    category: str  # "medium" | "large"
    factory: Callable[[int, bool], Graph]
    host_counts: tuple[int, ...]


def _road(scale: int, weighted: bool) -> Graph:
    rows = max(48 * (2**scale), 8)
    return generators.road_like(rows, 16, seed=7, weighted=weighted)


def _powerlaw(scale: int, weighted: bool) -> Graph:
    return generators.powerlaw_like(max(9 + scale, 5), seed=7, weighted=weighted)


def _web(scale: int, weighted: bool) -> Graph:
    return generators.web_like(max(10 + scale, 5), seed=11, weighted=weighted)


def _web_xl(scale: int, weighted: bool) -> Graph:
    return generators.web_like_xl(max(11 + scale, 5), seed=13, weighted=weighted)


GRAPHS: dict[str, GraphSpec] = {
    "road": GraphSpec(
        "road", "road-europe", "medium", _road, host_counts=(1, 2, 4, 8, 16)
    ),
    "powerlaw": GraphSpec(
        "powerlaw", "friendster", "medium", _powerlaw, host_counts=(1, 2, 4, 8, 16)
    ),
    "web": GraphSpec(
        "web", "clueweb12", "large", _web, host_counts=(32, 64, 128)
    ),
    "web_xl": GraphSpec(
        "web_xl", "wdc12", "large", _web_xl, host_counts=(128, 256)
    ),
}

_cache: dict[tuple[str, bool, int], Graph] = {}


def load_graph(name: str, weighted: bool = False, scale: int | None = None) -> Graph:
    """Build (and memoize) a workload graph at the configured scale."""
    if name not in GRAPHS:
        raise ValueError(f"unknown workload {name!r}; have {sorted(GRAPHS)}")
    scale = bench_scale() if scale is None else scale
    key = (name, weighted, scale)
    if key not in _cache:
        _cache[key] = GRAPHS[name].factory(scale, weighted)
    return _cache[key]


def medium_host_counts() -> tuple[int, ...]:
    return GRAPHS["road"].host_counts


def paper_name(name: str) -> str:
    return GRAPHS[name].paper_name
