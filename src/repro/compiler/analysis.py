"""Operator analysis: key classification, cautiousness, Table 2 kinds.

Every map access key is classified as

* ``active``   - the ParFor's active node itself,
* ``adjacent`` - a destination of one of the active node's edges,
* ``dynamic``  - anything else (typically a value read from another map:
  the trans-vertex case).

Classification flows through simple assignments (``dst = e.dst``) and is
deliberately conservative: a key that *might* be arbitrary is ``dynamic``.
The Section 5.2 optimizations and the Table 2 operator-kind report both
derive from these classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.cfg import build_cfg
from repro.compiler.dominators import immediate_dominators, immediate_post_dominators
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    EdgeDst,
    EdgeWeight,
    Expr,
    ForEdges,
    If,
    MapRead,
    MapReduce,
    MapRequest,
    MapSet,
    Not,
    ParFor,
    ReducerReduce,
    Stmt,
    walk,
)

ACTIVE = "active"
ADJACENT = "adjacent"
DYNAMIC = "dynamic"


class NotCautiousError(ValueError):
    """The operator writes a map it later reads (Section 3.2 requires all
    reads to precede all writes)."""


@dataclass
class AccessInfo:
    """One map access (read or reduce) with its key classification."""

    stmt: Stmt
    map: str
    kind: str


@dataclass
class OperatorAnalysis:
    """Everything the transforms need to know about one operator."""

    reads: list[AccessInfo] = field(default_factory=list)
    reduces: list[AccessInfo] = field(default_factory=list)
    accesses_edges: bool = False
    maps_read: set[str] = field(default_factory=set)
    maps_reduced: list[str] = field(default_factory=list)
    reducers_used: list[str] = field(default_factory=list)

    @property
    def is_adjacent_vertex(self) -> bool:
        """Table 2: adjacent-vertex iff no access key is dynamic."""
        return all(
            access.kind != DYNAMIC for access in self.reads + self.reduces
        )

    @property
    def is_trans_vertex(self) -> bool:
        return not self.is_adjacent_vertex

    @property
    def reads_are_adjacent(self) -> bool:
        """Eligibility for the adjacent-neighbors (pinned mirrors) elision:
        all *reads* are of the active node or its neighbors; writes may
        target any node (Section 5.2, the hook case)."""
        return all(access.kind != DYNAMIC for access in self.reads)

    @property
    def masters_only_eligible(self) -> bool:
        """Eligibility for the master-nodes elision: edges never accessed."""
        return not self.accesses_edges


def _expr_kind(expr: Expr, var_kinds: dict[str, str]) -> str:
    from repro.compiler.ir import Var

    if isinstance(expr, ActiveNode):
        return ACTIVE
    if isinstance(expr, EdgeDst):
        return ADJACENT
    if isinstance(expr, Var):
        return var_kinds.get(expr.name, DYNAMIC)
    return DYNAMIC


def analyze_operator(par_for: ParFor) -> OperatorAnalysis:
    """Analyze one operator body; raises :class:`NotCautiousError` if a map
    is read after being Set within the operator."""
    analysis = OperatorAnalysis()
    var_kinds: dict[str, str] = {}
    set_maps: set[str] = set()

    def visit(body: tuple[Stmt, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                var_kinds[stmt.var] = _expr_kind(stmt.expr, var_kinds)
            elif isinstance(stmt, MapRead):
                if stmt.map in set_maps:
                    raise NotCautiousError(
                        f"map {stmt.map!r} is read after being written; "
                        "operators must be cautious (reads before writes)"
                    )
                kind = _expr_kind(stmt.key, var_kinds)
                analysis.reads.append(AccessInfo(stmt, stmt.map, kind))
                analysis.maps_read.add(stmt.map)
                var_kinds[stmt.var] = DYNAMIC  # a property value, not a position
            elif isinstance(stmt, MapRequest):
                raise ValueError("MapRequest is compiler-internal; not valid in input")
            elif isinstance(stmt, MapReduce):
                kind = _expr_kind(stmt.key, var_kinds)
                analysis.reduces.append(AccessInfo(stmt, stmt.map, kind))
                if stmt.map not in analysis.maps_reduced:
                    analysis.maps_reduced.append(stmt.map)
            elif isinstance(stmt, MapSet):
                set_maps.add(stmt.map)
            elif isinstance(stmt, ReducerReduce):
                if stmt.reducer not in analysis.reducers_used:
                    analysis.reducers_used.append(stmt.reducer)
            elif isinstance(stmt, If):
                visit(stmt.then)
                visit(stmt.orelse)
            elif isinstance(stmt, ForEdges):
                analysis.accesses_edges = True
                visit(stmt.body)

    visit(par_for.body)
    for stmt in walk(par_for.body):
        if isinstance(stmt, (If,)):
            continue
        for expr_field in ("key", "value", "cond", "expr"):
            expr = getattr(stmt, expr_field, None)
            if expr is not None and _mentions_edges(expr):
                analysis.accesses_edges = True
    return analysis


def _mentions_edges(expr: Expr) -> bool:
    if isinstance(expr, (EdgeDst, EdgeWeight)):
        return True
    if isinstance(expr, BinOp):
        return _mentions_edges(expr.left) or _mentions_edges(expr.right)
    if isinstance(expr, Not):
        return _mentions_edges(expr.expr)
    return False


def reads_in_dominance_order(par_for: ParFor) -> list[MapRead]:
    """Map reads ordered so dominators come first (Section 5.1's iteration
    order). For the structured IR, CFG-node creation order realizes this;
    the dominator tree is still computed to assert the invariant."""
    cfg = build_cfg(par_for.body)
    idom = immediate_dominators(cfg)
    del idom  # computed for parity with the paper; order is structural
    ordered: list[MapRead] = []
    for node in range(2, cfg.num_nodes):
        stmt = cfg.stmt_of[node]
        if isinstance(stmt, MapRead) and stmt not in ordered:
            ordered.append(stmt)
    return ordered


def post_dominator_insertion_points(par_for: ParFor) -> dict[int, int]:
    """ipdom of every CFG node: where syncs conceptually go (Section 5.1).

    The structured executor inserts syncs at the end of each phase, which
    for a single-ParFor loop *is* the immediate post-dominator of the
    ParFor; this function exists so tests can verify that equivalence.
    """
    cfg = build_cfg(par_for.body)
    return immediate_post_dominators(cfg)
