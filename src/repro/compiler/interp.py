"""IR interpreter: executes CompiledLoops on the simulated cluster.

The interpreter walks the statement IR per active node, charging the same
metrics as the hand-written kernels: ALU work per evaluated expression,
``edge_iters`` per edge, map reads through the exact same NodePropMap
paths (dense-vector for local masters and pinned mirrors, binary search /
hash probes for requested remotes).
"""

from __future__ import annotations

import operator
from typing import Any, Mapping

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.compiler.compile import CompiledLoop
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    EdgeWeight,
    Expr,
    ForEdges,
    If,
    MapRead,
    MapReduce,
    MapRequest,
    MapSet,
    Not,
    ReducerReduce,
    Stmt,
    Var,
)
from repro.compiler.ir import walk
from repro.core.propmap import NodePropMap
from repro.exec import Executor, Operator, OperatorStep, Plan, ScalarKernel, SyncStep
from repro.partition.base import PartitionedGraph
from repro.runtime.bool_reducer import BoolReducer
from repro.runtime.engine import OperatorContext

_BINOPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    ">": operator.gt,
    "<": operator.lt,
    ">=": operator.ge,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "min": min,
    "max": max,
}


class _Executor:
    """Per-run interpreter state (maps, reducers, external constants)."""

    def __init__(
        self,
        cluster: Cluster,
        pgraph: PartitionedGraph,
        maps: Mapping[str, NodePropMap],
        reducers: Mapping[str, BoolReducer] | None = None,
        extern: Mapping[str, Any] | None = None,
    ) -> None:
        self.cluster = cluster
        self.pgraph = pgraph
        self.maps = dict(maps)
        self.reducers = dict(reducers or {})
        self.extern = dict(extern or {})

    # -- expression evaluation ------------------------------------------------

    def eval(self, expr: Expr, ctx: OperatorContext, env: dict[str, Any]) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.extern:
                return self.extern[expr.name]
            raise NameError(f"unbound variable {expr.name!r}")
        if isinstance(expr, ActiveNode):
            return ctx.node
        if isinstance(expr, EdgeDst):
            return ctx.edge_dst(env[expr.edge_var])
        if isinstance(expr, EdgeWeight):
            return ctx.edge_weight(env[expr.edge_var])
        if isinstance(expr, BinOp):
            ctx.charge(1)
            return _BINOPS[expr.op](
                self.eval(expr.left, ctx, env), self.eval(expr.right, ctx, env)
            )
        if isinstance(expr, Not):
            return not self.eval(expr.expr, ctx, env)
        raise TypeError(f"unknown expression {expr!r}")

    def _read_map(self, stmt: MapRead, ctx: OperatorContext, env: dict[str, Any]) -> Any:
        prop = self.maps[stmt.map]
        # Local-id fast paths mirror the hand-written kernels, so compiled
        # and manual code charge identical read costs.
        if isinstance(stmt.key, ActiveNode):
            if ctx.part.is_master_local(ctx.local) or prop.pinned:
                return prop.read_local(ctx.host, ctx.local)
            return prop.read(ctx.host, ctx.node)
        if isinstance(stmt.key, EdgeDst):
            dst_local = ctx.edge_dst_local(env[stmt.key.edge_var])
            if ctx.part.is_master_local(dst_local) or prop.pinned:
                return prop.read_local(ctx.host, dst_local)
            return prop.read(ctx.host, int(ctx.part.local_to_global[dst_local]))
        return prop.read(ctx.host, self.eval(stmt.key, ctx, env))

    # -- statement execution ---------------------------------------------------

    def run_body(
        self, body: tuple[Stmt, ...], ctx: OperatorContext, env: dict[str, Any]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                env[stmt.var] = self.eval(stmt.expr, ctx, env)
            elif isinstance(stmt, MapRead):
                env[stmt.var] = self._read_map(stmt, ctx, env)
            elif isinstance(stmt, MapRequest):
                self.maps[stmt.map].request(
                    ctx.host, self.eval(stmt.key, ctx, env)
                )
            elif isinstance(stmt, MapReduce):
                self.maps[stmt.map].reduce(
                    ctx.host,
                    ctx.thread,
                    self.eval(stmt.key, ctx, env),
                    self.eval(stmt.value, ctx, env),
                    stmt.op,
                )
            elif isinstance(stmt, MapSet):
                self.maps[stmt.map].set(
                    ctx.host, self.eval(stmt.key, ctx, env), self.eval(stmt.value, ctx, env)
                )
            elif isinstance(stmt, ReducerReduce):
                self.reducers[stmt.reducer].reduce(
                    ctx.host, bool(self.eval(stmt.value, ctx, env))
                )
            elif isinstance(stmt, If):
                if self.eval(stmt.cond, ctx, env):
                    self.run_body(stmt.then, ctx, env)
                else:
                    self.run_body(stmt.orelse, ctx, env)
            elif isinstance(stmt, ForEdges):
                for edge in ctx.edges():
                    env[stmt.edge_var] = edge
                    self.run_body(stmt.body, ctx, env)
            else:  # pragma: no cover - IR is closed
                raise TypeError(f"unknown statement {stmt!r}")


def _body_reads_writes(
    body: tuple[Stmt, ...],
) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]]:
    """Derive ScalarKernel reads/writes metadata by walking the IR."""
    reads: list[str] = []
    writes: list[tuple[str, str]] = []
    for stmt in walk(body):
        if isinstance(stmt, (MapRead, MapRequest)) and stmt.map not in reads:
            reads.append(stmt.map)
        elif isinstance(stmt, MapReduce) and (stmt.map, stmt.op.name) not in writes:
            writes.append((stmt.map, stmt.op.name))
        elif isinstance(stmt, MapSet) and (stmt.map, "set") not in writes:
            writes.append((stmt.map, "set"))
        elif isinstance(stmt, ReducerReduce) and (stmt.reducer, "bool_or") not in writes:
            writes.append((stmt.reducer, "bool_or"))
    return tuple(reads), tuple(writes)


def build_plan(
    loop: CompiledLoop,
    pgraph: PartitionedGraph,
    maps: Mapping[str, NodePropMap],
    reducers: Mapping[str, BoolReducer] | None = None,
    extern: Mapping[str, Any] | None = None,
    once: bool = False,
    max_rounds: int = 100000,
) -> Plan:
    """Lower a compiled loop onto the operator-plan layer.

    Every statement body becomes a :class:`ScalarKernel` operator (the
    interpreter walks the IR per node, so both executor backends run the
    same reference loop); phase structure, sync collectives, and the
    quiescence driver map 1:1 onto plan steps, which is what gives
    compiled programs the same metering/trace/fault semantics as the
    hand-written algorithm plans.
    """
    interp = _Executor(None, pgraph, maps, reducers, extern)

    def kernel_for(par_for_ir) -> ScalarKernel:
        reads, writes = _body_reads_writes(par_for_ir.body)
        return ScalarKernel(
            lambda ctx, body=par_for_ir.body: interp.run_body(body, ctx, {}),
            read_names=reads,
            write_names=writes,
        )

    steps: list = []
    for phase in loop.request_phases:
        steps.append(
            OperatorStep(
                Operator(
                    f"{loop.name}:req:{'+'.join(phase.maps)}",
                    phase.par_for.iterator if phase.par_for.iterator == "masters" else "all",
                    kernel_for(phase.par_for),
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
            )
        )
        for map_name in phase.maps:
            steps.append(SyncStep(maps[map_name], "request"))
    steps.append(
        OperatorStep(
            Operator(
                loop.name,
                loop.body.iterator if loop.body.iterator == "masters" else "all",
                kernel_for(loop.body),
            )
        )
    )
    for map_name in loop.reduce_maps:
        steps.append(SyncStep(maps[map_name], "reduce"))
    for map_name in loop.reduce_maps:
        # No-op unless the map is currently pinned; checked at runtime so
        # composed apps that pin around a multi-operator loop still get
        # their mirrors refreshed after every reduce.
        steps.append(SyncStep(maps[map_name], "broadcast"))
    return Plan(
        name=f"compiled:{loop.name}",
        pgraph=pgraph,
        steps=steps,
        quiesce=tuple(maps[m] for m in loop.quiesce_maps),
        max_rounds=max_rounds,
        once=once,
        loop_label=f"compiled:{loop.name}",
    )


def run_round(
    loop: CompiledLoop,
    cluster: Cluster,
    pgraph: PartitionedGraph,
    maps: Mapping[str, NodePropMap],
    reducers: Mapping[str, BoolReducer] | None = None,
    extern: Mapping[str, Any] | None = None,
    executor: Executor | None = None,
) -> None:
    """Execute one BSP round of a compiled loop (no quiescence handling)."""
    if executor is None:
        executor = Executor(cluster)
    executor.run(build_plan(loop, pgraph, maps, reducers, extern, once=True))


def run_compiled(
    loop: CompiledLoop,
    cluster: Cluster,
    pgraph: PartitionedGraph,
    maps: Mapping[str, NodePropMap],
    reducers: Mapping[str, BoolReducer] | None = None,
    extern: Mapping[str, Any] | None = None,
    manage_pins: bool = True,
    max_rounds: int = 100000,
    executor: Executor | None = None,
) -> int:
    """Run a compiled loop to quiescence; returns the number of BSP rounds.

    Quiescence, round advancement, checkpoint/recovery, and non-quiescence
    handling (``NonQuiescenceError``, a ``RuntimeError`` subclass) all come
    from the shared plan executor.
    """
    if executor is None:
        executor = Executor(cluster)
    if manage_pins:
        for map_name, invariant in loop.pinned.items():
            maps[map_name].pin_mirrors(invariant=invariant)
    rounds = executor.run(
        build_plan(loop, pgraph, maps, reducers, extern, max_rounds=max_rounds)
    )
    if manage_pins:
        for map_name in loop.pinned:
            maps[map_name].unpin_mirrors()
    return rounds
