"""Textual front-end: Figure 4-style source -> the statement IR.

The paper's programs are written in a C++-flavored surface syntax; this
parser accepts the equivalent Kimbap source so programs can live as text:

.. code-block:: none

    while_updated parent {
      parfor src in nodes {
        src_parent = parent.read(src);
        for edge in edges(src) {
          dst_parent = parent.read(edge.dst);
          if (src_parent > dst_parent) {
            work_done.reduce_or(true);
            parent.reduce(src_parent, dst_parent, min);
          }
        }
      }
    }

Grammar (recursive descent, one token of lookahead)::

    program   := 'while_updated' ident (',' ident)* parfor
    parfor    := 'parfor' ident 'in' 'nodes' block
    block     := '{' stmt* '}'
    stmt      := for | if | call ';' | assign ';'
    for       := 'for' ident 'in' 'edges' '(' ident ')' block
    if        := 'if' '(' expr ')' block ('else' block)?
    call      := ident '.' ('reduce'|'set') '(' args ')'
               | ident '.reduce_or' '(' expr ')'
    assign    := ident '=' expr
    expr      := or; the usual precedence ladder down to primary
    primary   := number | 'true' | 'false' | ident ('.read(' expr ')' |
                 '.dst' | '.weight')? | 'min('|'max(' expr ',' expr ')' |
                 '(' expr ')'

The active-node identifier (the parfor variable) parses to
:class:`~repro.compiler.ir.ActiveNode`; ``<edge>.dst`` / ``<edge>.weight``
to the edge expressions. Reduction operator names: ``min``, ``max``,
``sum``, ``overwrite``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.algorithms.common import OVERWRITE
from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    EdgeWeight,
    Expr,
    ForEdges,
    If,
    KimbapWhile,
    MapRead,
    MapReduce,
    MapSet,
    Not,
    ParFor,
    ReducerReduce,
    Stmt,
    Var,
)
from repro.core.reducers import MAX, MIN, SUM

REDUCE_OPS = {"min": MIN, "max": MAX, "sum": SUM, "overwrite": OVERWRITE}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<comment>//[^\n]*)"
    r"|(?P<number>\d+\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>==|!=|>=|<=|[{}();,.=><+\-*/])"
    r")"
)

KEYWORDS = {
    "while_updated", "parfor", "in", "nodes", "for", "edges", "if", "else",
    "true", "false", "and", "or", "not", "min", "max",
}


class ParseError(SyntaxError):
    """Source text does not conform to the Kimbap grammar."""


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "ident" | "op" | "eof"
    text: str
    position: int


def tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            remaining = source[position:].strip()
            if not remaining:
                break
            raise ParseError(f"unexpected character {remaining[0]!r} at {position}")
        position = match.end()
        if match.lastgroup == "comment":
            continue
        if match.lastgroup is None:
            continue
        tokens.append(_Token(match.lastgroup, match.group(match.lastgroup), match.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0
        self.active_var: str | None = None
        self.edge_vars: set[str] = set()

    # -- token helpers ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.advance()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} at {token.position}"
            )
        return token

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident" or token.text in KEYWORDS:
            raise ParseError(
                f"expected an identifier, found {token.text!r} at {token.position}"
            )
        return token.text

    def at(self, text: str) -> bool:
        return self.peek().text == text

    # -- grammar --------------------------------------------------------------

    def parse_program(self, name: str = "loop") -> KimbapWhile:
        self.expect("while_updated")
        maps = [self.expect_ident()]
        while self.at(","):
            self.advance()
            maps.append(self.expect_ident())
        self.expect("{")
        par_for = self.parse_parfor()
        self.expect("}")
        if self.peek().kind != "eof":
            token = self.peek()
            raise ParseError(f"trailing input at {token.position}: {token.text!r}")
        return KimbapWhile(tuple(maps), par_for, name=name)

    def parse_parfor(self) -> ParFor:
        self.expect("parfor")
        self.active_var = self.expect_ident()
        self.expect("in")
        self.expect("nodes")
        return ParFor(self.parse_block())

    def parse_block(self) -> tuple[Stmt, ...]:
        self.expect("{")
        statements: list[Stmt] = []
        while not self.at("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return tuple(statements)

    def parse_statement(self) -> Stmt:
        if self.at("for"):
            return self.parse_for_edges()
        if self.at("if"):
            return self.parse_if()
        name = self.expect_ident()
        if self.at("."):
            self.advance()
            method = self.expect_ident()
            statement = self.parse_call(name, method)
            self.expect(";")
            return statement
        self.expect("=")
        expr = self.parse_expr()
        self.expect(";")
        if isinstance(expr, _ReadCall):
            return MapRead(name, expr.map, expr.key)
        return Assign(name, expr)

    def parse_for_edges(self) -> ForEdges:
        self.expect("for")
        edge_var = self.expect_ident()
        self.expect("in")
        self.expect("edges")
        self.expect("(")
        iterated = self.expect_ident()
        if iterated != self.active_var:
            raise ParseError(
                f"only the active node's edges are accessible, not {iterated!r}"
            )
        self.expect(")")
        self.edge_vars.add(edge_var)
        body = self.parse_block()
        return ForEdges(edge_var, body)

    def parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        condition = self.parse_expr()
        self.expect(")")
        then_block = self.parse_block()
        else_block: tuple[Stmt, ...] = ()
        if self.at("else"):
            self.advance()
            else_block = self.parse_block()
        return If(condition, then_block, else_block)

    def parse_call(self, name: str, method: str) -> Stmt:
        if method == "reduce":
            self.expect("(")
            key = self.parse_expr()
            self.expect(",")
            value = self.parse_expr()
            self.expect(",")
            op_name = self.expect_op_name()
            self.expect(")")
            return MapReduce(name, key, value, REDUCE_OPS[op_name])
        if method == "set":
            self.expect("(")
            key = self.parse_expr()
            self.expect(",")
            value = self.parse_expr()
            self.expect(")")
            return MapSet(name, key, value)
        if method == "reduce_or":
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            return ReducerReduce(name, value)
        raise ParseError(f"unknown statement method .{method}()")

    def expect_op_name(self) -> str:
        token = self.advance()
        if token.text not in REDUCE_OPS:
            raise ParseError(
                f"unknown reduction operator {token.text!r}; "
                f"have {sorted(REDUCE_OPS)}"
            )
        return token.text

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at("or"):
            self.advance()
            left = BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at("and"):
            self.advance()
            left = BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.at("not"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.peek().text in (">", "<", ">=", "<=", "==", "!="):
            op = self.advance().text
            return BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_primary()
        while self.peek().text in ("*", "/"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_primary())
        return left

    def parse_primary(self) -> Expr:
        token = self.advance()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.text == "true":
            return Const(True)
        if token.text == "false":
            return Const(False)
        if token.text in ("min", "max"):
            self.expect("(")
            left = self.parse_expr()
            self.expect(",")
            right = self.parse_expr()
            self.expect(")")
            return BinOp(token.text, left, right)
        if token.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if token.kind == "ident":
            return self.parse_name(token.text)
        raise ParseError(f"unexpected token {token.text!r} at {token.position}")

    def parse_name(self, name: str) -> Expr:
        if self.at("."):
            self.advance()
            attribute = self.expect_ident()
            if attribute == "read":
                self.expect("(")
                key = self.parse_expr()
                self.expect(")")
                return _ReadCall(name, key)
            if attribute == "dst":
                if name not in self.edge_vars:
                    raise ParseError(f"{name!r} is not an edge variable")
                return EdgeDst(name)
            if attribute == "weight":
                if name not in self.edge_vars:
                    raise ParseError(f"{name!r} is not an edge variable")
                return EdgeWeight(name)
            raise ParseError(f"unknown attribute .{attribute}")
        if name == self.active_var:
            return ActiveNode()
        return Var(name)


@dataclass(frozen=True)
class _ReadCall:
    """Intermediate node for ``x = map.read(key)``; only valid as the whole
    right-hand side of an assignment (reads bind a variable)."""

    map: str
    key: Expr


def parse_program(source: str, name: str = "loop") -> KimbapWhile:
    """Parse one KimbapWhile from source text."""
    program = Parser(source).parse_program(name=name)
    _reject_nested_reads(program.par_for.body)
    return program


# ------------------------------------------------------------- unparser


def to_source(program: KimbapWhile, active_var: str = "n") -> str:
    """Render a program back to surface syntax (parse(to_source(p)) == p).

    Only user-level IR is printable; compiler-inserted ``MapRequest``
    statements have no surface form and raise.
    """
    op_names = {op.name: name for name, op in REDUCE_OPS.items()}
    lines: list[str] = [f"while_updated {', '.join(program.maps)} {{"]
    lines.append(f"  parfor {active_var} in nodes {{")

    def expr_text(expr: Expr) -> str:
        if isinstance(expr, Const):
            if expr.value is True:
                return "true"
            if expr.value is False:
                return "false"
            return str(expr.value)
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, ActiveNode):
            return active_var
        if isinstance(expr, EdgeDst):
            return f"{expr.edge_var}.dst"
        if isinstance(expr, EdgeWeight):
            return f"{expr.edge_var}.weight"
        if isinstance(expr, Not):
            return f"not ({expr_text(expr.expr)})"
        if isinstance(expr, BinOp):
            if expr.op in ("min", "max"):
                return f"{expr.op}({expr_text(expr.left)}, {expr_text(expr.right)})"
            return f"({expr_text(expr.left)} {expr.op} {expr_text(expr.right)})"
        raise TypeError(f"unprintable expression {expr!r}")

    def emit(body, depth: int) -> None:
        pad = "  " * depth
        for stmt in body:
            if isinstance(stmt, MapRead):
                lines.append(f"{pad}{stmt.var} = {stmt.map}.read({expr_text(stmt.key)});")
            elif isinstance(stmt, Assign):
                lines.append(f"{pad}{stmt.var} = {expr_text(stmt.expr)};")
            elif isinstance(stmt, MapReduce):
                if stmt.op.name not in op_names:
                    raise ValueError(f"operator {stmt.op.name!r} has no surface name")
                lines.append(
                    f"{pad}{stmt.map}.reduce({expr_text(stmt.key)}, "
                    f"{expr_text(stmt.value)}, {op_names[stmt.op.name]});"
                )
            elif isinstance(stmt, MapSet):
                lines.append(
                    f"{pad}{stmt.map}.set({expr_text(stmt.key)}, {expr_text(stmt.value)});"
                )
            elif isinstance(stmt, ReducerReduce):
                lines.append(f"{pad}{stmt.reducer}.reduce_or({expr_text(stmt.value)});")
            elif isinstance(stmt, If):
                lines.append(f"{pad}if ({expr_text(stmt.cond)}) {{")
                emit(stmt.then, depth + 1)
                if stmt.orelse:
                    lines.append(f"{pad}}} else {{")
                    emit(stmt.orelse, depth + 1)
                lines.append(f"{pad}}}")
            elif isinstance(stmt, ForEdges):
                lines.append(f"{pad}for {stmt.edge_var} in edges({active_var}) {{")
                emit(stmt.body, depth + 1)
                lines.append(f"{pad}}}")
            else:
                raise TypeError(f"unprintable statement {stmt!r}")

    emit(program.par_for.body, 2)
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _reject_nested_reads(body: tuple[Stmt, ...]) -> None:
    from repro.compiler.ir import walk

    for stmt in walk(body):
        for field_name in ("key", "value", "cond", "expr"):
            expr = getattr(stmt, field_name, None)
            if expr is not None and _contains_read(expr):
                raise ParseError(
                    "map.read(...) must be assigned to a variable, not nested "
                    f"inside another expression: {stmt}"
                )


def _contains_read(expr) -> bool:
    if isinstance(expr, _ReadCall):
        return True
    if isinstance(expr, BinOp):
        return _contains_read(expr.left) or _contains_read(expr.right)
    if isinstance(expr, Not):
        return _contains_read(expr.expr)
    return False
