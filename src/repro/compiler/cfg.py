"""Statement-level control-flow graphs (Section 2.3).

Each CFG node is one statement occurrence; ``ENTRY`` and ``EXIT`` are
synthetic. ``If`` statements branch to both arms; ``ForEdges`` headers
branch into the loop body (which loops back) and past the loop (zero
iterations). The structured IR guarantees reducible CFGs, but the
dominator analysis (:mod:`repro.compiler.dominators`) does not rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import ForEdges, If, Stmt

ENTRY = 0
EXIT = 1


@dataclass
class CFG:
    """Control-flow graph over statement occurrences.

    ``stmt_of[n]`` is the statement at node ``n`` (None for ENTRY/EXIT);
    node ids are creation-ordered, so for the structured IR they follow
    program order.
    """

    succ: list[list[int]] = field(default_factory=lambda: [[], []])
    stmt_of: list[Stmt | None] = field(default_factory=lambda: [None, None])

    def add_node(self, stmt: Stmt) -> int:
        self.succ.append([])
        self.stmt_of.append(stmt)
        return len(self.succ) - 1

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succ[src]:
            self.succ[src].append(dst)

    @property
    def num_nodes(self) -> int:
        return len(self.succ)

    def predecessors(self) -> list[list[int]]:
        preds: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for src, dsts in enumerate(self.succ):
            for dst in dsts:
                preds[dst].append(src)
        return preds

    def nodes_of(self, stmt: Stmt) -> list[int]:
        """All occurrences of a statement object (by identity)."""
        return [n for n, s in enumerate(self.stmt_of) if s is stmt]


def build_cfg(body: tuple[Stmt, ...]) -> CFG:
    """Build the CFG of an operator body (ENTRY -> body -> EXIT)."""
    cfg = CFG()
    frontier = _build_block(cfg, body, [ENTRY])
    for node in frontier:
        cfg.add_edge(node, EXIT)
    return cfg


def _build_block(cfg: CFG, body: tuple[Stmt, ...], preds: list[int]) -> list[int]:
    """Wire a statement sequence after ``preds``; returns the exit frontier."""
    frontier = preds
    for stmt in body:
        node = cfg.add_node(stmt)
        for pred in frontier:
            cfg.add_edge(pred, node)
        if isinstance(stmt, If):
            then_frontier = _build_block(cfg, stmt.then, [node])
            else_frontier = _build_block(cfg, stmt.orelse, [node]) if stmt.orelse else [node]
            frontier = then_frontier + else_frontier
        elif isinstance(stmt, ForEdges):
            body_frontier = _build_block(cfg, stmt.body, [node])
            for tail in body_frontier:
                cfg.add_edge(tail, node)  # back edge
            frontier = [node]  # loop exits from the header (0..n iterations)
        else:
            frontier = [node]
    return frontier
