"""The statement IR for vertex-centric operators.

Programs are what a Kimbap user writes (Figure 4): a ``KimbapWhile`` over a
``ParFor`` whose body reads node-property maps, iterates the active node's
edges, and issues reductions. Expressions and statements are immutable
dataclasses so compiler passes can share subtrees freely; ``MapRequest`` is
compiler-inserted and never written by users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.reducers import ReduceOp


# --------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Const:
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ActiveNode:
    """The ParFor induction variable: the active node's global id."""

    def __str__(self) -> str:
        return "node"


@dataclass(frozen=True)
class EdgeDst:
    """Destination node of the edge bound by the enclosing ForEdges."""

    edge_var: str

    def __str__(self) -> str:
        return f"{self.edge_var}.dst"


@dataclass(frozen=True)
class EdgeWeight:
    edge_var: str

    def __str__(self) -> str:
        return f"{self.edge_var}.weight"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / > < >= <= == != and or min max
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not:
    expr: "Expr"

    def __str__(self) -> str:
        return f"(not {self.expr})"


Expr = Union[Const, Var, ActiveNode, EdgeDst, EdgeWeight, BinOp, Not]


def expr_vars(expr: Expr) -> set[str]:
    """Free variable names (including edge vars) used by an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, (EdgeDst, EdgeWeight)):
        return {expr.edge_var}
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, Not):
        return expr_vars(expr.expr)
    return set()


# ---------------------------------------------------------------- statements


@dataclass(frozen=True)
class Assign:
    var: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.var} = {self.expr}"


@dataclass(frozen=True)
class MapRead:
    var: str
    map: str
    key: Expr

    def __str__(self) -> str:
        return f"{self.var} = {self.map}.Read({self.key})"


@dataclass(frozen=True)
class MapRequest:
    """Compiler-inserted: mark ``key`` for the next RequestSync."""

    map: str
    key: Expr

    def __str__(self) -> str:
        return f"{self.map}.Request({self.key})"


@dataclass(frozen=True)
class MapReduce:
    map: str
    key: Expr
    value: Expr
    op: ReduceOp

    def __str__(self) -> str:
        return f"{self.map}.Reduce({self.key}, {self.value}, {self.op.name})"


@dataclass(frozen=True)
class MapSet:
    map: str
    key: Expr
    value: Expr

    def __str__(self) -> str:
        return f"{self.map}.Set({self.key}, {self.value})"


@dataclass(frozen=True)
class ReducerReduce:
    """Reduce into a (distributed) BoolReducer - Figure 4's work_done."""

    reducer: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.reducer}.Reduce({self.value})"


@dataclass(frozen=True)
class If:
    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()

    def __str__(self) -> str:
        return f"if {self.cond}: ..."


@dataclass(frozen=True)
class ForEdges:
    """Iterate the edges of the active node (the only edges accessible)."""

    edge_var: str
    body: tuple["Stmt", ...]

    def __str__(self) -> str:
        return f"for {self.edge_var} in edges(node): ..."


Stmt = Union[Assign, MapRead, MapRequest, MapReduce, MapSet, ReducerReduce, If, ForEdges]

WRITE_STMTS = (MapReduce, MapSet, ReducerReduce)


def stmts(*items: Stmt) -> tuple[Stmt, ...]:
    """Small helper so program definitions read as blocks."""
    return tuple(items)


# ------------------------------------------------------------------ programs


@dataclass(frozen=True)
class ParFor:
    """A parallel loop over nodes. ``iterator`` is "nodes" (all proxies; the
    user-facing form) or "masters" (compiler-restricted, Section 5.2)."""

    body: tuple[Stmt, ...]
    iterator: str = "nodes"

    def __post_init__(self) -> None:
        if self.iterator not in ("nodes", "masters"):
            raise ValueError(f"unknown iterator {self.iterator!r}")


@dataclass(frozen=True)
class KimbapWhile:
    """Figure 3's construct: repeat the ParFor until ``maps`` stop updating."""

    maps: tuple[str, ...]
    par_for: ParFor
    name: str = "loop"


def walk(body: tuple[Stmt, ...]):
    """Yield every statement in a body, depth-first, in program order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk(stmt.then)
            yield from walk(stmt.orelse)
        elif isinstance(stmt, ForEdges):
            yield from walk(stmt.body)
