"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy).

The compiler uses dominance to order map reads, collect the statements a
request ParFor must replicate, and place RequestSync/ReduceSync before the
immediate post-dominator of each ParFor (Section 5.1). Tests cross-check
this implementation against ``networkx.immediate_dominators``.
"""

from __future__ import annotations

from repro.compiler.cfg import CFG, ENTRY, EXIT


def _reverse_postorder(succ: list[list[int]], root: int) -> list[int]:
    seen = [False] * len(succ)
    order: list[int] = []
    stack: list[tuple[int, int]] = [(root, 0)]
    seen[root] = True
    while stack:
        node, child_index = stack[-1]
        if child_index < len(succ[node]):
            stack[-1] = (node, child_index + 1)
            child = succ[node][child_index]
            if not seen[child]:
                seen[child] = True
                stack.append((child, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def _immediate_dominators(succ: list[list[int]], root: int) -> dict[int, int]:
    """CHK iterative algorithm; unreachable nodes are absent from the result."""
    order = _reverse_postorder(succ, root)
    position = {node: index for index, node in enumerate(order)}
    preds: dict[int, list[int]] = {node: [] for node in order}
    for src in order:
        for dst in succ[src]:
            if dst in position:
                preds[dst].append(src)
    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def immediate_dominators(cfg: CFG) -> dict[int, int]:
    """idom of every reachable node (ENTRY maps to itself)."""
    return _immediate_dominators(cfg.succ, ENTRY)


def immediate_post_dominators(cfg: CFG) -> dict[int, int]:
    """ipdom of every node that reaches EXIT (EXIT maps to itself)."""
    reversed_succ: list[list[int]] = [[] for _ in range(cfg.num_nodes)]
    for src, dsts in enumerate(cfg.succ):
        for dst in dsts:
            reversed_succ[dst].append(src)
    return _immediate_dominators(reversed_succ, EXIT)


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """Does ``a`` dominate ``b``? (every node dominates itself)"""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return False
        node = parent


def dominators_of(idom: dict[int, int], node: int) -> list[int]:
    """All dominators of ``node``, nearest first (excluding node itself)."""
    chain = []
    current = node
    while True:
        parent = idom.get(current)
        if parent is None or parent == current:
            break
        chain.append(parent)
        current = parent
    return chain
