"""DSL source programs: what a Kimbap user writes (Figure 4).

These are the shared-memory operator definitions for the algorithms that
are compiled end-to-end (CC-SV, CC-LP, CC-SCLP, MIS). The heavier LV / LD /
MSF applications are hand-written at the level of the compiler's *output*
(Figure 8) in :mod:`repro.algorithms`; their operator classifications for
Table 2 are declared there and spot-checked against this compiler in tests.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    ForEdges,
    If,
    KimbapWhile,
    MapRead,
    MapReduce,
    ParFor,
    ReducerReduce,
    Var,
    stmts,
)
from repro.algorithms.common import OVERWRITE
from repro.core.reducers import MAX, MIN, SUM


def cc_sv_hook() -> KimbapWhile:
    """Figure 4's Hook: min-reduce neighbor parents onto parent(parent)."""
    body = stmts(
        MapRead("src_parent", "parent", ActiveNode()),
        ForEdges(
            "edge",
            stmts(
                MapRead("dst_parent", "parent", EdgeDst("edge")),
                If(
                    BinOp(">", Var("src_parent"), Var("dst_parent")),
                    stmts(
                        ReducerReduce("work_done", Const(True)),
                        MapReduce("parent", Var("src_parent"), Var("dst_parent"), MIN),
                    ),
                ),
            ),
        ),
    )
    return KimbapWhile(("parent",), ParFor(body), name="hook")


def cc_sv_shortcut() -> KimbapWhile:
    """Figure 4's Shortcut: parent <- parent(parent) (pointer jumping)."""
    body = stmts(
        MapRead("parent_value", "parent", ActiveNode()),
        MapRead("grand_parent", "parent", Var("parent_value")),
        If(
            BinOp("!=", Var("parent_value"), Var("grand_parent")),
            stmts(MapReduce("parent", ActiveNode(), Var("grand_parent"), MIN)),
        ),
    )
    return KimbapWhile(("parent",), ParFor(body), name="shortcut")


def cc_lp_program() -> KimbapWhile:
    """Label propagation: push my label to every neighbor."""
    body = stmts(
        MapRead("label_value", "label", ActiveNode()),
        ForEdges(
            "edge",
            stmts(MapReduce("label", EdgeDst("edge"), Var("label_value"), MIN)),
        ),
    )
    return KimbapWhile(("label",), ParFor(body), name="cc_lp")


def cc_sclp_propagate() -> KimbapWhile:
    return KimbapWhile(
        ("label",),
        ParFor(
            stmts(
                MapRead("label_value", "label", ActiveNode()),
                ForEdges(
                    "edge",
                    stmts(
                        MapReduce("label", EdgeDst("edge"), Var("label_value"), MIN)
                    ),
                ),
            )
        ),
        name="sclp_prop",
    )


def cc_sclp_shortcut() -> KimbapWhile:
    return KimbapWhile(
        ("label",),
        ParFor(
            stmts(
                MapRead("label_value", "label", ActiveNode()),
                MapRead("label_of_label", "label", Var("label_value")),
                If(
                    BinOp("!=", Var("label_value"), Var("label_of_label")),
                    stmts(
                        MapReduce("label", ActiveNode(), Var("label_of_label"), MIN)
                    ),
                ),
            )
        ),
        name="sclp_short",
    )


# MIS round operators. Priorities are hash-scrambled ids (a strict total
# order), initialized by host code; ``round`` is an external constant bound
# per round so the blocked map round-stamps itself.

UNDECIDED, IN_SET, OUT = 0, 1, 2


def mis_blocked() -> KimbapWhile:
    body = stmts(
        MapRead("my_state", "state", ActiveNode()),
        If(
            BinOp("==", Var("my_state"), Const(UNDECIDED)),
            stmts(
                MapRead("my_priority", "priority", ActiveNode()),
                ForEdges(
                    "edge",
                    stmts(
                        MapRead("dst_state", "state", EdgeDst("edge")),
                        If(
                            BinOp("==", Var("dst_state"), Const(UNDECIDED)),
                            stmts(
                                MapRead("dst_priority", "priority", EdgeDst("edge")),
                                If(
                                    BinOp(
                                        ">", Var("dst_priority"), Var("my_priority")
                                    ),
                                    stmts(
                                        MapReduce(
                                            "blocked",
                                            ActiveNode(),
                                            Var("round"),
                                            MAX,
                                        )
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return KimbapWhile(("blocked",), ParFor(body), name="mis_blocked")


def mis_select() -> KimbapWhile:
    body = stmts(
        MapRead("my_state", "state", ActiveNode()),
        If(
            BinOp("==", Var("my_state"), Const(UNDECIDED)),
            stmts(
                MapRead("blocked_round", "blocked", ActiveNode()),
                If(
                    BinOp("!=", Var("blocked_round"), Var("round")),
                    stmts(MapReduce("state", ActiveNode(), Const(IN_SET), MAX)),
                ),
            ),
        ),
    )
    return KimbapWhile(("state",), ParFor(body), name="mis_select")


def mis_exclude() -> KimbapWhile:
    body = stmts(
        MapRead("my_state", "state", ActiveNode()),
        If(
            BinOp("==", Var("my_state"), Const(IN_SET)),
            stmts(
                ForEdges(
                    "edge",
                    stmts(MapReduce("state", EdgeDst("edge"), Const(OUT), MAX)),
                )
            ),
        ),
    )
    return KimbapWhile(("state",), ParFor(body), name="mis_exclude")


# PageRank round operators. The outer power iteration (dangling-mass
# redistribution and the L1-delta convergence test) is host code, exactly
# like the hand-written kernel; ``damping`` and ``uniform`` are external
# constants bound per run / per round.


def pr_degree() -> KimbapWhile:
    """Warm-up: SUM-reduce each proxy's local out-degree onto its master."""
    body = stmts(
        Assign("count", Const(0)),
        ForEdges("edge", stmts(Assign("count", BinOp("+", Var("count"), Const(1))))),
        If(
            BinOp(">", Var("count"), Const(0)),
            stmts(MapReduce("degree", ActiveNode(), Var("count"), SUM)),
        ),
    )
    return KimbapWhile(("degree",), ParFor(body), name="pr_degree")


def pr_push() -> KimbapWhile:
    """Push ``damping * rank / degree`` to every neighbor (SUM)."""
    body = stmts(
        MapRead("rank_value", "rank", ActiveNode()),
        MapRead("degree_value", "degree", ActiveNode()),
        If(
            BinOp(">", Var("degree_value"), Const(0)),
            stmts(
                Assign(
                    "share",
                    BinOp(
                        "/",
                        BinOp("*", Var("damping"), Var("rank_value")),
                        Var("degree_value"),
                    ),
                ),
                ForEdges(
                    "edge",
                    stmts(MapReduce("contribution", EdgeDst("edge"), Var("share"), SUM)),
                ),
            ),
        ),
    )
    return KimbapWhile(("contribution",), ParFor(body), name="pr_push")


def pr_rebuild() -> KimbapWhile:
    """Owner rebuild: ``rank = uniform + contribution`` (no edge access)."""
    body = stmts(
        MapRead("contribution_value", "contribution", ActiveNode()),
        MapReduce(
            "rank",
            ActiveNode(),
            BinOp("+", Var("uniform"), Var("contribution_value")),
            OVERWRITE,
        ),
    )
    return KimbapWhile(("rank",), ParFor(body, iterator="masters"), name="pr_rebuild")


ALL_PROGRAMS = {
    "hook": cc_sv_hook,
    "shortcut": cc_sv_shortcut,
    "cc_lp": cc_lp_program,
    "sclp_prop": cc_sclp_propagate,
    "sclp_short": cc_sclp_shortcut,
    "mis_blocked": mis_blocked,
    "mis_select": mis_select,
    "mis_exclude": mis_exclude,
    "pr_degree": pr_degree,
    "pr_push": pr_push,
    "pr_rebuild": pr_rebuild,
}
