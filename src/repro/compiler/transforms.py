"""The split-operator + request transformation (Section 5.1).

For each map read ``R`` that needs a request, the compiler emits a request
ParFor containing copies of the statements that dominate ``R`` - enough to
recompute ``R``'s key - with ``R`` itself replaced by ``Request``. Writes
(reduces) are never replicated: operators are cautious, so no write
dominates a read, and replicating one would double-apply it.

For the structured IR, "the statements dominating R" are exactly the
prefix of R's enclosing block chain: straight-line statements before each
enclosing construct, plus the enclosing If/ForEdges headers themselves
(with the non-taken branches dropped - their contents do not dominate R).
The CFG dominator computation in :mod:`repro.compiler.analysis` exists to
check this equivalence in tests.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Assign,
    ForEdges,
    If,
    MapRead,
    MapReduce,
    MapRequest,
    MapSet,
    ParFor,
    ReducerReduce,
    Stmt,
    expr_vars,
)


def request_slice(
    body: tuple[Stmt, ...], target: MapRead
) -> tuple[tuple[Stmt, ...], bool]:
    """The dominating prefix of ``target`` with the read replaced by Request.

    Returns ``(slice, found)``. Side-effecting statements (reduces, sets)
    are dropped from the copy; If/ForEdges constructs that do not contain
    the target are dropped entirely (their bodies do not dominate it).
    """
    prefix: list[Stmt] = []
    for stmt in body:
        if stmt is target:
            prefix.append(MapRequest(target.map, target.key))
            return tuple(prefix), True
        if isinstance(stmt, If):
            then_slice, found = request_slice(stmt.then, target)
            if found:
                prefix.append(If(stmt.cond, then_slice, ()))
                return tuple(prefix), True
            else_slice, found = request_slice(stmt.orelse, target)
            if found:
                prefix.append(If(stmt.cond, (), else_slice))
                return tuple(prefix), True
            continue  # branch contents do not dominate later statements
        if isinstance(stmt, ForEdges):
            body_slice, found = request_slice(stmt.body, target)
            if found:
                prefix.append(ForEdges(stmt.edge_var, body_slice))
                return tuple(prefix), True
            continue
        if isinstance(stmt, (MapReduce, MapSet, ReducerReduce, MapRequest)):
            continue  # never replicate side effects into request phases
        prefix.append(stmt)  # Assign / MapRead
    return tuple(prefix), False


def prune_request_slice(body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    """Backward def-use pruning of a request slice.

    The paper's rule copies *all* operations dominating the read; most of
    them are dead in the copy (their values feed the operator, not the
    request key). Dropping statements that don't (transitively) feed the
    ``Request`` key or its enclosing conditions is a safe refinement -
    slices have no side effects by construction - and it is what makes
    independent request phases *pure* and therefore coalescible.
    """
    needed: set[str] = set()

    def visit(block: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        kept: list[Stmt] = []
        for stmt in reversed(block):
            if isinstance(stmt, MapRequest):
                needed.update(expr_vars(stmt.key))
                kept.append(stmt)
            elif isinstance(stmt, If):
                then_kept = visit(stmt.then)
                else_kept = visit(stmt.orelse)
                if then_kept or else_kept:
                    needed.update(expr_vars(stmt.cond))
                    kept.append(If(stmt.cond, then_kept, else_kept))
            elif isinstance(stmt, ForEdges):
                body_kept = visit(stmt.body)
                if body_kept:
                    kept.append(ForEdges(stmt.edge_var, body_kept))
                    needed.discard(stmt.edge_var)
            elif isinstance(stmt, (Assign, MapRead)):
                if stmt.var in needed:
                    # the latest definition satisfies the need; its own
                    # operands become needed in turn
                    needed.discard(stmt.var)
                    source = stmt.expr if isinstance(stmt, Assign) else stmt.key
                    needed.update(expr_vars(source))
                    kept.append(stmt)
        return tuple(reversed(kept))

    return visit(body)


def build_request_parfor(
    par_for: ParFor, target: MapRead, iterator: str, prune: bool = False
) -> ParFor:
    """The request ParFor the split transform inserts before the operator."""
    body, found = request_slice(par_for.body, target)
    if not found:
        raise ValueError(f"read {target} not found in operator body")
    if prune:
        body = prune_request_slice(body)
    return ParFor(body, iterator=iterator)
