"""The Kimbap compiler (Section 5).

Vertex-centric operators are written in a small statement IR
(:mod:`repro.compiler.ir`). The compiler builds a statement-level
control-flow graph, computes dominator and post-dominator trees, and then:

* validates that the operator is *cautious* (all reads before all writes),
* splits the operator: every map read of a non-local key gets a preceding
  request ParFor (copies of its dominating statements with the read
  replaced by ``Request``) followed by a ``RequestSync``,
* inserts ``ReduceSync`` (and, with pinned mirrors, ``BroadcastSync``)
  before the immediate post-dominator of each ParFor,
* applies the two Section 5.2 elisions: master-nodes RequestSync elision
  (operators that never touch edges iterate masters only and drop requests
  for provably-local keys) and adjacent-neighbors RequestSync elision
  (operators whose reads are all active-node/neighbor keys pin mirrors and
  broadcast instead of requesting).

The output :class:`~repro.compiler.compile.CompiledLoop` is executed by the
IR interpreter in :mod:`repro.compiler.interp` on the simulated cluster.
Compiling with ``optimize=False`` gives the NO-OPT arm of Figure 12.
"""

from repro.compiler.ir import (
    ActiveNode,
    Assign,
    BinOp,
    Const,
    EdgeDst,
    EdgeWeight,
    ForEdges,
    If,
    KimbapWhile,
    MapRead,
    MapReduce,
    MapRequest,
    MapSet,
    ParFor,
    ReducerReduce,
    Var,
)
from repro.compiler.analysis import OperatorAnalysis, analyze_operator
from repro.compiler.compile import CompiledLoop, compile_program
from repro.compiler.interp import run_compiled
from repro.compiler.parser import ParseError, parse_program, to_source

__all__ = [
    "ActiveNode",
    "Assign",
    "BinOp",
    "Const",
    "EdgeDst",
    "EdgeWeight",
    "ForEdges",
    "If",
    "KimbapWhile",
    "MapRead",
    "MapReduce",
    "MapRequest",
    "MapSet",
    "ParFor",
    "ReducerReduce",
    "Var",
    "OperatorAnalysis",
    "analyze_operator",
    "CompiledLoop",
    "compile_program",
    "run_compiled",
    "ParseError",
    "parse_program",
    "to_source",
]
