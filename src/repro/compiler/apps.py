"""Compiled applications: Figure 4 programs run through the full pipeline.

Each function compiles its DSL operators and drives them exactly like the
paper's generated code (Figure 8): the outer do-while and multi-operator
composition are ordinary host code, each KimbapWhile is a compiled BSP
loop. ``optimize=False`` produces the NO-OPT arms of Figure 12.

These return the same :class:`~repro.algorithms.common.AlgorithmResult` as
the hand-written kernels, and tests assert both paths agree exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import AlgorithmResult
from repro.algorithms.mis import _hash_priority
from repro.cluster.cluster import Cluster
from repro.compiler.compile import compile_program
from repro.compiler.interp import run_compiled, run_round
from repro.compiler.programs import (
    IN_SET,
    UNDECIDED,
    cc_lp_program,
    cc_sclp_propagate,
    cc_sclp_shortcut,
    cc_sv_hook,
    cc_sv_shortcut,
    mis_blocked,
    mis_exclude,
    mis_select,
    pr_degree,
    pr_push,
    pr_rebuild,
)
from repro.core.propmap import NodePropMap
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.bool_reducer import BoolReducer


def compiled_cc_sv(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    optimize: bool = True,
) -> AlgorithmResult:
    """CC-SV exactly as Figure 4 writes it and Figure 8 runs it."""
    hook = compile_program(cc_sv_hook(), optimize=optimize)
    shortcut = compile_program(cc_sv_shortcut(), optimize=optimize)
    parent = NodePropMap(cluster, pgraph, "parent", variant=variant)
    parent.set_initial(lambda node: node)
    work_done = BoolReducer(cluster, "work_done")
    maps = {"parent": parent}
    reducers = {"work_done": work_done}
    total_rounds = 0
    while True:
        work_done.set_all(False)
        total_rounds += run_compiled(hook, cluster, pgraph, maps, reducers)
        work_done.sync()
        total_rounds += run_compiled(shortcut, cluster, pgraph, maps, reducers)
        if not work_done.read():
            break
    return AlgorithmResult(name="CC-SV", values=parent.snapshot(), rounds=total_rounds)


def compiled_cc_lp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    optimize: bool = True,
) -> AlgorithmResult:
    loop = compile_program(cc_lp_program(), optimize=optimize)
    label = NodePropMap(cluster, pgraph, "label", variant=variant)
    label.set_initial(lambda node: node)
    rounds = run_compiled(loop, cluster, pgraph, {"label": label})
    return AlgorithmResult(name="CC-LP", values=label.snapshot(), rounds=rounds)


def compiled_cc_sclp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    optimize: bool = True,
) -> AlgorithmResult:
    propagate = compile_program(cc_sclp_propagate(), optimize=optimize)
    shortcut = compile_program(cc_sclp_shortcut(), optimize=optimize)
    label = NodePropMap(cluster, pgraph, "label", variant=variant)
    label.set_initial(lambda node: node)
    maps = {"label": label}
    # One interleaved quiescence loop over both operators, as in the
    # hand-written kernel: pin once around the whole loop.
    for map_name, invariant in propagate.pinned.items():
        maps[map_name].pin_mirrors(invariant=invariant)
    rounds = 0
    while True:
        label.reset_updated()
        run_round(propagate, cluster, pgraph, maps)
        run_round(shortcut, cluster, pgraph, maps)
        rounds += 1
        if not label.is_updated():
            break
    for map_name in propagate.pinned:
        maps[map_name].unpin_mirrors()
    return AlgorithmResult(name="CC-SCLP", values=label.snapshot(), rounds=rounds)


def compiled_mis(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    optimize: bool = True,
) -> AlgorithmResult:
    """Priority MIS from three compiled operators (blocked/select/exclude)."""
    blocked_loop = compile_program(mis_blocked(), optimize=optimize)
    select_loop = compile_program(mis_select(), optimize=optimize)
    exclude_loop = compile_program(mis_exclude(), optimize=optimize)
    state = NodePropMap(cluster, pgraph, "state", variant=variant)
    priority = NodePropMap(cluster, pgraph, "priority", variant=variant, value_nbytes=16)
    blocked = NodePropMap(cluster, pgraph, "blocked", variant=variant)
    state.set_initial(lambda node: UNDECIDED)
    priority.set_initial(lambda node: (_hash_priority(node), node))
    blocked.set_initial(lambda node: -1)
    maps = {"state": state, "priority": priority, "blocked": blocked}
    pins: dict[str, str] = {}
    for loop in (blocked_loop, select_loop, exclude_loop):
        pins.update(loop.pinned)
    for map_name, invariant in pins.items():
        maps[map_name].pin_mirrors(invariant=invariant)
    rounds = 0
    while True:
        state.reset_updated()
        extern = {"round": rounds}
        run_round(blocked_loop, cluster, pgraph, maps, extern=extern)
        run_round(select_loop, cluster, pgraph, maps, extern=extern)
        run_round(exclude_loop, cluster, pgraph, maps, extern=extern)
        rounds += 1
        if not state.is_updated():
            break
    for map_name in pins:
        maps[map_name].unpin_mirrors()
    values = state.snapshot()
    return AlgorithmResult(
        name="MIS",
        values=values,
        rounds=rounds,
        stats={"set_size": sum(1 for v in values.values() if v == IN_SET)},
    )


def compiled_pagerank(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    optimize: bool = True,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_rounds: int = 100,
) -> AlgorithmResult:
    """PageRank from three compiled operators (degree/push/rebuild).

    The power iteration itself - dangling-mass redistribution and the
    L1-delta convergence test - stays host code, mirroring the hand-written
    kernel's host steps, so both paths compute bitwise-identical ranks.
    """
    degree_loop = compile_program(pr_degree(), optimize=optimize)
    push_loop = compile_program(pr_push(), optimize=optimize)
    rebuild_loop = compile_program(pr_rebuild(), optimize=optimize)
    num_nodes = pgraph.num_nodes
    if num_nodes == 0:
        return AlgorithmResult(name="PR", values={}, rounds=0)
    degree = NodePropMap(cluster, pgraph, "degree", variant=variant)
    rank = NodePropMap(cluster, pgraph, "rank", variant=variant)
    contribution = NodePropMap(cluster, pgraph, "contribution", variant=variant)
    degree.set_initial(lambda node: 0)
    rank.set_initial(lambda node: 1.0 / num_nodes)
    contribution.set_initial(lambda node: 0.0)
    maps = {"degree": degree, "rank": rank, "contribution": contribution}
    run_round(degree_loop, cluster, pgraph, maps)
    degrees = degree.snapshot_array()

    # Pin after the degree warm-up so the push loop's mirrors (rank and the
    # now-final degrees) start from reduced values.
    for map_name, invariant in push_loop.pinned.items():
        maps[map_name].pin_mirrors(invariant=invariant)
    base = (1.0 - damping) / num_nodes
    previous = np.full(num_nodes, 1.0 / num_nodes)
    delta = math.inf
    rounds = 0
    while rounds < max_rounds:
        contribution.reset_values(lambda node: 0.0)
        run_round(push_loop, cluster, pgraph, maps, extern={"damping": damping})
        dangling = sum(previous[degrees == 0].tolist())
        uniform = base + damping * dangling / num_nodes
        run_round(rebuild_loop, cluster, pgraph, maps, extern={"uniform": uniform})
        rounds += 1
        current = rank.snapshot_array()
        delta = sum(np.abs(current - previous).tolist())
        previous = current
        if delta < tolerance:
            break
    for map_name in push_loop.pinned:
        maps[map_name].unpin_mirrors()
    values = rank.snapshot()
    return AlgorithmResult(
        name="PR",
        values=values,
        rounds=rounds,
        stats={"delta": delta, "mass": sum(values.values())},
    )


COMPILED_APPS = {
    "CC-SV": compiled_cc_sv,
    "CC-LP": compiled_cc_lp,
    "CC-SCLP": compiled_cc_sclp,
    "MIS": compiled_mis,
    "PR": compiled_pagerank,
}
