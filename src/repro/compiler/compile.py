"""Compilation driver: KimbapWhile -> CompiledLoop (Figure 8 shape).

``compile_program`` applies, in order:

1. operator analysis + cautiousness validation,
2. master-nodes elision (no edge access -> iterate masters; drop request
   phases whose key is the active node) when optimizing,
3. adjacent-neighbors elision (all reads active/adjacent -> pin mirrors,
   broadcast after reduce, drop all request phases) when optimizing,
4. the split-operator/request transform for every remaining read,
5. sync insertion: a RequestSync after each request ParFor, a ReduceSync
   per reduced map after the main ParFor, BroadcastSync for pinned maps.

With ``optimize=False`` (Figure 12's NO-OPT arm) every read - including
reads of the active node and of adjacent neighbors - goes through a
request ParFor chain, and all node proxies execute the operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis import (
    ACTIVE,
    ADJACENT,
    OperatorAnalysis,
    analyze_operator,
    reads_in_dominance_order,
)
from repro.compiler.ir import KimbapWhile, MapRead, ParFor, walk
from repro.compiler.transforms import build_request_parfor


def coalesce_request_phases(phases: list["RequestPhase"]) -> list["RequestPhase"]:
    """Merge consecutive *pure* request phases into one ParFor + sync wave.

    A pure phase contains no map reads, so its request keys cannot depend
    on an earlier phase's materialized values - running both ParFors in one
    compute phase and syncing both maps afterwards is equivalent and saves
    a full request-compute/request-sync round trip.
    """
    coalesced: list[RequestPhase] = []
    for phase in phases:
        if (
            phase.pure
            and coalesced
            and coalesced[-1].pure
            and coalesced[-1].par_for.iterator == phase.par_for.iterator
        ):
            previous = coalesced[-1]
            merged_maps = previous.maps + tuple(
                m for m in phase.maps if m not in previous.maps
            )
            coalesced[-1] = RequestPhase(
                ParFor(
                    previous.par_for.body + phase.par_for.body,
                    iterator=previous.par_for.iterator,
                ),
                merged_maps,
                pure=True,
            )
        else:
            coalesced.append(phase)
    return coalesced


@dataclass(frozen=True)
class RequestPhase:
    """One request ParFor plus the map(s) whose RequestSync(s) follow it.

    Usually one map; the coalescing optimization merges *pure* request
    ParFors (no reads - their keys don't depend on earlier request waves)
    into a single ParFor with several syncs, saving whole BSP sub-phases.
    """

    par_for: ParFor
    maps: tuple[str, ...]
    pure: bool = False

    @property
    def map(self) -> str:
        """The single map, for the common un-coalesced case."""
        if len(self.maps) != 1:
            raise ValueError(f"phase syncs {len(self.maps)} maps, not one")
        return self.maps[0]


@dataclass
class CompiledLoop:
    """An executable BSP loop: the compiler's output (cf. Figure 8)."""

    name: str
    quiesce_maps: tuple[str, ...]
    iterator: str  # "nodes" or "masters"
    pinned: dict[str, str]  # map -> pin invariant
    request_phases: list[RequestPhase]
    body: ParFor
    reduce_maps: tuple[str, ...]
    broadcast_maps: tuple[str, ...]
    reducers: tuple[str, ...]
    analysis: OperatorAnalysis = field(repr=False, default=None)

    def describe(self) -> str:
        """A Figure 8-style summary of the generated code."""
        lines = [f"KimbapWhile {self.name} over {self.iterator}:"]
        for map_name, invariant in self.pinned.items():
            lines.append(f"  {map_name}.PinMirrors({invariant!r})")
        lines.append("  do:")
        for phase in self.request_phases:
            names = ", ".join(phase.maps)
            lines.append(f"    ParFor({self.iterator}): ... {names}.Request(...)")
            for map_name in phase.maps:
                lines.append(f"    {map_name}.RequestSync()")
        lines.append(f"    ParFor({self.iterator}): <operator>")
        for map_name in self.reduce_maps:
            lines.append(f"    {map_name}.ReduceSync()")
        for map_name in self.broadcast_maps:
            lines.append(f"    {map_name}.BroadcastSync()")
        lines.append(
            "  while " + " or ".join(f"{m}.IsUpdated()" for m in self.quiesce_maps)
        )
        for map_name in self.pinned:
            lines.append(f"  {map_name}.UnpinMirrors()")
        return "\n".join(lines)


def compile_program(program: KimbapWhile, optimize: bool = True) -> CompiledLoop:
    """Compile one KimbapWhile into an executable BSP loop."""
    par_for = program.par_for
    analysis = analyze_operator(par_for)
    reads = reads_in_dominance_order(par_for)

    # Master-nodes elision: operators that never touch edges compute the
    # same updates on every proxy, so restrict to masters (Section 5.2).
    iterator = par_for.iterator
    if optimize and analysis.masters_only_eligible:
        iterator = "masters"

    # Adjacent-neighbors elision: pin the maps whose reads are all to the
    # active node / its neighbors, and broadcast instead of requesting.
    pinned: dict[str, str] = {}
    if optimize and analysis.accesses_edges and analysis.reads_are_adjacent:
        for access in analysis.reads:
            # 'none' feeds every mirror: safe for operators that read the
            # active node on proxies without local out-edges.
            pinned.setdefault(access.map, "none")

    request_phases: list[RequestPhase] = []
    for read in reads:
        if not isinstance(read, MapRead):
            continue
        kind = next(a.kind for a in analysis.reads if a.stmt is read)
        if optimize:
            if kind == ACTIVE and iterator == "masters":
                continue  # provably a local master: request elided
            if read.map in pinned and kind in (ACTIVE, ADJACENT):
                continue  # pinned mirror: fed by broadcast
        request_parfor = build_request_parfor(
            par_for, read, iterator, prune=optimize
        )
        pure = not any(
            isinstance(stmt, MapRead) for stmt in walk(request_parfor.body)
        )
        request_phases.append(
            RequestPhase(request_parfor, (read.map,), pure=pure)
        )
    if optimize:
        request_phases = coalesce_request_phases(request_phases)

    reduce_maps = tuple(analysis.maps_reduced)
    broadcast_maps = tuple(m for m in reduce_maps if m in pinned)
    return CompiledLoop(
        name=program.name,
        quiesce_maps=program.maps,
        iterator=iterator,
        pinned=pinned,
        request_phases=request_phases,
        body=ParFor(par_for.body, iterator=iterator),
        reduce_maps=reduce_maps,
        broadcast_maps=broadcast_maps,
        reducers=tuple(analysis.reducers_used),
        analysis=analysis,
    )
