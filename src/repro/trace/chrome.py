"""Chrome ``trace_event`` JSON exporter (``chrome://tracing`` / Perfetto).

One process represents the simulated cluster, one thread track per host.
Every phase becomes a complete ("X") event on each host's track lasting the
barrier-to-barrier modeled duration; the host's own busy seconds and its
counters ride along in ``args``. Sync phases additionally emit flow events
(``s``/``t``/``f`` with a shared id) tying the participating hosts'
tracks together, making the BSP communication structure visible.

Timestamps are microseconds of *modeled* time, starting at zero.
"""

from __future__ import annotations

import json
from typing import Any

from repro.cluster.metrics import STATISTIC_FIELDS
from repro.trace.timeline import Timeline, TimelineSlice

_US = 1e6  # trace_event timestamps are microseconds

TRACE_PID = 0


def _event_name(s: TimelineSlice) -> str:
    name = s.kind.value
    if s.label:
        name = f"{name}:{s.label}"
    return name


def _slice_event(s: TimelineSlice) -> dict[str, Any]:
    counters = {k: v for k, v in s.counters.as_dict().items() if v}
    args: dict[str, Any] = {
        "round": s.round,
        "operator": s.operator,
        "kind": s.kind.value,
        "busy_s": s.busy,
        "wait_s": s.duration - s.busy,
        "counters": counters,
    }
    if s.fused is not None:
        # The phase ran inside a generated fused kernel: name the
        # constituent steps so profiles stay interpretable after fusion.
        args["fused"] = list(s.fused)
    if s.chunk is not None:
        # Async-engine phases carry their chunk ordinal so the trace shows
        # scheduling order; absent under BSP (keeps those traces identical).
        args["chunk"] = s.chunk
        args["engine"] = "async"
    return {
        "name": _event_name(s),
        "cat": "sync" if s.kind.is_sync else "compute",
        "ph": "X",
        "ts": s.start * _US,
        "dur": s.duration * _US,
        "pid": TRACE_PID,
        "tid": s.host,
        "args": args,
    }


def _flow_events(slices: list[TimelineSlice], flow_id: int) -> list[dict[str, Any]]:
    """Flow start on the busiest sender, steps on other participants, end on
    the busiest receiver - one flow per sync phase."""
    participants = [s for s in slices if s.busy > 0.0]
    if len(participants) < 2:
        return []
    name = _event_name(slices[0])
    first = participants[0]
    last = participants[-1]
    events: list[dict[str, Any]] = []
    for index, s in enumerate(participants):
        if s is first:
            ph = "s"
        elif s is last:
            ph = "f"
        else:
            ph = "t"
        event = {
            "name": f"flow:{name}",
            "cat": "sync-flow",
            "ph": ph,
            "id": flow_id,
            "ts": (s.start + s.busy / 2) * _US,
            "pid": TRACE_PID,
            "tid": s.host,
        }
        if ph == "f":
            event["bp"] = "e"  # bind to the enclosing slice
        events.append(event)
    return events


def to_chrome_trace(timeline: Timeline) -> dict[str, Any]:
    """Render a :class:`Timeline` as a ``trace_event`` JSON object."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "kimbap-sim"},
        }
    ]
    for host in range(timeline.num_hosts):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": host,
                "args": {"name": f"host {host}"},
            }
        )
    by_phase: dict[int, list[TimelineSlice]] = {}
    for s in timeline.slices:
        by_phase.setdefault(s.phase_index, []).append(s)
        events.append(_slice_event(s))
    for phase_index in sorted(by_phase):
        slices = by_phase[phase_index]
        if slices[0].kind.is_sync:
            events.extend(_flow_events(slices, flow_id=phase_index))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro (Kimbap reproduction) modeled timeline",
            "hosts": timeline.num_hosts,
            "threads_per_host": timeline.threads,
            "modeled_total_s": timeline.total,
            "statistic_counters": sorted(STATISTIC_FIELDS),
        },
    }


def write_chrome_trace(path: str, timeline: Timeline) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(timeline), handle, indent=1)
