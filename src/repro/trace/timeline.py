"""Deterministic modeled timeline: when each phase ran on each host.

The simulation has no wall clock; what it has is a :class:`MetricsLog` of
phase records and a :class:`CostModel` that prices each phase. This module
lays the priced phases out on a modeled time axis, BSP-style: every host
enters phase *i* at the same barrier time (the sum of the durations of
phases ``0..i-1``) and the phase lasts as long as its slowest host. A
host's *busy* time inside the phase is its own weighted work, so the gap
``duration - busy`` is exactly the modeled barrier-wait.

By construction, for **every** host the slice durations sum to
``CostModel.time(log).total`` - the invariant the exporter tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel, ModeledTime
from repro.cluster.metrics import Counters, MetricsLog, PhaseKind


@dataclass(frozen=True)
class TimelineSlice:
    """One host's span of one phase on the modeled time axis (seconds)."""

    phase_index: int
    kind: PhaseKind
    label: str
    operator: str
    round: int
    host: int
    start: float
    duration: float  # barrier-to-barrier: identical across hosts of a phase
    busy: float  # this host's own modeled work inside the phase
    counters: Counters
    # Constituent step labels when the phase ran as part of a generated
    # fused kernel (repro.exec.codegen); None for unfused phases.
    fused: tuple[str, ...] | None = None
    # Async-engine chunk ordinal for ASYNC_COMPUTE phases; None under BSP,
    # so BSP traces are unchanged by the engine layer.
    chunk: int | None = None


@dataclass
class Timeline:
    """All slices of a run, plus the totals they must add up to."""

    num_hosts: int
    threads: int
    slices: list[TimelineSlice] = field(default_factory=list)
    total: float = 0.0

    def host_slices(self, host: int) -> list[TimelineSlice]:
        return [s for s in self.slices if s.host == host]

    def per_host_totals(self) -> list[float]:
        """Sum of slice durations per host; every entry equals ``total``."""
        totals = [0.0] * self.num_hosts
        for s in self.slices:
            totals[s.host] += s.duration
        return totals

    def phase_durations(self) -> list[float]:
        """Barrier-to-barrier duration of each phase, in log order."""
        seen: dict[int, float] = {}
        for s in self.slices:
            seen[s.phase_index] = s.duration
        return [seen[i] for i in sorted(seen)]


def build_timeline(
    log: MetricsLog, cost_model: CostModel, threads: int
) -> Timeline:
    """Lay the log's phases out on the modeled time axis, one track per host."""
    timeline = Timeline(num_hosts=log.num_hosts, threads=threads)
    clock = 0.0
    for index, phase in enumerate(log.phases):
        duration = cost_model.phase_time(phase, threads).total
        for host in range(log.num_hosts):
            busy = cost_model.host_phase_time(phase, host, threads).total
            timeline.slices.append(
                TimelineSlice(
                    phase_index=index,
                    kind=phase.kind,
                    label=phase.label,
                    operator=phase.operator,
                    round=phase.round,
                    host=host,
                    start=clock,
                    duration=duration,
                    busy=min(busy, duration),
                    counters=phase.counters[host],
                    fused=getattr(phase, "fused", None),
                    chunk=getattr(phase, "chunk", None),
                )
            )
        clock += duration
    timeline.total = clock
    return timeline


@dataclass(frozen=True)
class PhaseCost:
    """One phase with its modeled price, for profiling (``repro profile``)."""

    phase_index: int
    kind: PhaseKind
    label: str
    operator: str
    round: int
    time: ModeledTime
    breakdown: dict[str, float]  # weighted units per counter kind
    # Constituent step labels when fused into one generated kernel.
    fused: tuple[str, ...] | None = None


def phase_costs(
    log: MetricsLog, cost_model: CostModel, threads: int
) -> list[PhaseCost]:
    """Price every phase and attribute its units to counter kinds."""
    costs: list[PhaseCost] = []
    for index, phase in enumerate(log.phases):
        total = Counters()
        for counters in phase.counters:
            total.add(counters)
        costs.append(
            PhaseCost(
                phase_index=index,
                kind=phase.kind,
                label=phase.label,
                operator=phase.operator,
                round=phase.round,
                time=cost_model.phase_time(phase, threads),
                breakdown=cost_model.units_breakdown(total),
                fused=getattr(phase, "fused", None),
            )
        )
    return costs


def top_phases(
    log: MetricsLog, cost_model: CostModel, threads: int, k: int = 10
) -> list[PhaseCost]:
    """The ``k`` costliest phases by modeled total time, costliest first.

    Ties break deterministically by log order (stable sort), so profiles of
    the same run are always identical.
    """
    costs = phase_costs(log, cost_model, threads)
    return sorted(costs, key=lambda c: -c.time.total)[:k]
