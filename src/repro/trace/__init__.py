"""Observability: modeled timelines, Chrome trace export, phase profiling.

Everything here is *derived* from the event log deterministically - two runs
of the same workload produce byte-identical traces - so traces are safe to
diff across commits as a perf trajectory.
"""

from repro.trace.chrome import to_chrome_trace, write_chrome_trace
from repro.trace.timeline import (
    PhaseCost,
    Timeline,
    TimelineSlice,
    build_timeline,
    phase_costs,
    top_phases,
)

__all__ = [
    "PhaseCost",
    "Timeline",
    "TimelineSlice",
    "build_timeline",
    "phase_costs",
    "to_chrome_trace",
    "top_phases",
    "write_chrome_trace",
]
