"""Host-shard parallel execution: the ``jobs=N`` executor backend.

The paper's whole execution model is BSP: per-host work inside a compute
phase is independent by construction, and hosts only exchange state at
the sync barriers. This module exploits exactly that structure to make
the *simulator's* wall clock scale with real cores while preserving the
byte-identity contract of the serial backends.

Design: **forked replicated state machines with a per-phase effect
exchange.**

* At ``Executor.run(plan)`` with ``jobs > 1`` the coordinator forks
  ``jobs - 1`` worker processes (POSIX ``fork``, copy-on-write). Every
  process - coordinator included - then replays the *identical* plan
  loop: host steps, resets, sync collectives, checkpoint/recovery, and
  fault-injection draws all run everywhere, so each process's replica of
  the cluster state evolves deterministically in lockstep. Fork-time
  inheritance is what makes this possible without pickling kernels: the
  workers share every closure, graph array, and map with the coordinator
  at the fork point, and copy-on-write keeps the read-mostly bulk (CSR
  arrays, store vectors) physically shared.
* Only *shardable compute phases* divide work: each process drives
  ``par_for``/``par_for_bulk`` over its own contiguous host shard. After
  the phase, workers ship per-host **effect bundles** - the pending
  reduction state, request bitsets, duplicate-request logs, the bound
  reduction operator (by name: ``ReduceOp`` closes over lambdas), the
  per-host :class:`~repro.cluster.metrics.Counters`, and the phase's
  message rows - to the coordinator over a pipe. The coordinator merges
  them into its authoritative phase record **in fixed host order** and
  returns each worker the complement, so every process enters the next
  (replayed) sync phase with the complete per-host state. Exported
  state is cumulative since the last reduce-sync, so installs replace
  rather than accumulate - re-installation is idempotent.
* Phases that are *not* shardable (key-value-store variants, kernels
  that mutate host-global state, bodies whose reducers cannot be
  resolved by name) simply run **replicated**: every process executes
  every host, which keeps all replicas identical with no exchange at
  all. Correct first, fast where the declared metadata proves it safe.

The coordinator's metrics log, counters, conflict counts, modeled
seconds, and trace rows therefore evolve exactly as a serial run's
would: the serial backend stays the oracle, and
``tests/test_parallel_equivalence.py`` enforces ``RunResult.to_dict()``
byte-identity across ``jobs`` for all twelve algorithms.

Why not ``multiprocessing.shared_memory`` buffers? Fork-time
copy-on-write already gives zero-copy sharing of every numpy store
array on POSIX, without a second lifetime to manage; only the per-phase
*deltas* cross process boundaries, and those are small, irregular
structures (dicts of pending reductions, bitset indices) for which
pickling over a pipe is the honest encoding. The bundles are the
explicit protocol; the shared memory is implicit in ``fork``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from typing import TYPE_CHECKING, Any, Sequence

from repro.cluster.metrics import PhaseRecord
from repro.core.reducers import NAMED_REDUCE_OPS, ReduceOp
from repro.exec.plan import (
    DegreeReduce,
    EdgePush,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executor import Executor


def fork_available() -> bool:
    """Parallel execution needs POSIX fork (workers inherit closures)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_hosts(num_hosts: int, shards: int) -> list[tuple[int, ...]]:
    """Contiguous balanced host shards, ascending.

    Shard ``s`` owns hosts ``[s*H//N, (s+1)*H//N)`` - the same closed-form
    dealing as the OpenMP-static thread chunks. Concatenating the shards
    in shard order yields ``0..H-1``, which is what lets the coordinator
    merge worker bundles in fixed host order by walking workers in index
    order.
    """
    shards = max(1, min(shards, num_hosts))
    return [
        tuple(range(s * num_hosts // shards, (s + 1) * num_hosts // shards))
        for s in range(shards)
    ]


# --------------------------------------------------------------- plan tables


def _effect_carrier(obj: Any) -> bool:
    return hasattr(obj, "export_compute_effects")


def _map_table(plan: Plan) -> dict[str, Any]:
    """Every effect carrier the plan names, keyed by name (identical on
    all processes: the table is built before the fork, or from the forked
    copy of the same plan object)."""
    table: dict[str, Any] = {}

    def put(obj: Any) -> None:
        if obj is not None and _effect_carrier(obj):
            table[obj.name] = obj

    for step in plan.steps:
        if isinstance(step, OperatorStep):
            kernel = step.operator.kernel
            for attr in ("target", "source", "require_active"):
                put(getattr(kernel, attr, None))
            for extra in getattr(kernel, "extra_effects", ()):
                put(extra)
        else:
            put(getattr(step, "map", None))
    for prop in plan.quiesce:
        put(prop)
    for prop in plan.maps:
        put(prop)
    return table


def _op_table(plan: Plan) -> dict[str, ReduceOp]:
    """Reducers resolvable by name: the canonical registry plus every
    operator object the plan's kernels carry (covers algorithm-local
    custom reducers like Louvain's pair_sum)."""
    ops = dict(NAMED_REDUCE_OPS)
    for step in plan.steps:
        if not isinstance(step, OperatorStep):
            continue
        kernel = step.operator.kernel
        op = getattr(kernel, "op", None)
        if op is not None:
            ops[op.name] = op
        for extra in getattr(kernel, "ops", ()):
            ops[extra.name] = extra
    return ops


def _phase_carriers(
    operator: Operator, by_name: dict[str, Any], ops: dict[str, ReduceOp]
) -> list[Any] | None:
    """The effect carriers of one compute phase, or None when the phase
    must run replicated instead of sharded.

    The declarative kernel forms are shardable by construction (their
    only mutations are host-local reductions into the target). A
    ``ScalarKernel`` is shardable when it declares itself host-local,
    every map it names resolves, and every reducer it writes with is
    resolvable by name across processes. Key-value-store maps are never
    shardable: their reductions hit shared server shards and the network
    immediately.
    """
    kernel = operator.kernel
    if isinstance(kernel, (EdgePush, NodeUpdate, DegreeReduce)):
        carriers = [kernel.target]
    elif isinstance(kernel, ScalarKernel):
        if not kernel.host_local:
            return None
        names: list[str] = []
        for name in kernel.read_names:
            if name not in names:
                names.append(name)
        for name, op_name in kernel.write_names:
            if name not in names:
                names.append(name)
            if op_name not in ops:
                return None
        carriers = []
        for name in names:
            carrier = by_name.get(name)
            if carrier is None:
                return None
            carriers.append(carrier)
        carriers.extend(kernel.extra_effects)
    else:  # pragma: no cover - the kernel union is closed
        return None
    for carrier in carriers:
        variant = getattr(carrier, "variant", None)
        if variant is not None and variant.uses_kvstore:
            return None
    return carriers


# ------------------------------------------------------------- the endpoint


def _send(conn, kind: str, payload: Any) -> None:
    """Explicitly pickled send: highest protocol (numpy arrays go as raw
    buffers), and the coordinator can serialize its phase broadcast once
    and fan the same bytes out to every worker."""
    conn.send_bytes(pickle.dumps((kind, payload), pickle.HIGHEST_PROTOCOL))


def _recv(conn, who: str) -> Any:
    try:
        kind, payload = pickle.loads(conn.recv_bytes())
    except EOFError:
        raise RuntimeError(
            f"parallel execution lost {who} mid-phase (pipe closed); "
            "the processes diverged or the peer crashed"
        ) from None
    if kind == "err":
        raise RuntimeError(f"parallel worker failed:\n{payload}")
    return payload


class HostShardPool:
    """One plan run's process group: coordinator endpoint in the parent,
    worker endpoint (same object, mutated post-fork) in each child."""

    def __init__(self, executor: "Executor", plan: Plan, jobs: int) -> None:
        cluster = executor.cluster
        self.num_hosts = cluster.num_hosts
        self.shards = shard_hosts(self.num_hosts, jobs)
        self.index = 0
        self.shard: Sequence[int] = self.shards[0]
        self.is_worker = False
        self.conn = None
        self.workers: list[tuple[Any, Any]] = []
        by_name = _map_table(plan)
        self._ops = _op_table(plan)
        # Shardability is decided once per plan, before the fork, so every
        # process derives the identical sharded/replicated schedule.
        self._carriers: dict[int, list[Any] | None] = {}
        for step in plan.steps:
            if isinstance(step, OperatorStep):
                self._carriers[id(step.operator)] = _phase_carriers(
                    step.operator, by_name, self._ops
                )

    def has_shardable_phase(self) -> bool:
        return any(c is not None for c in self._carriers.values())

    def fork_workers(self, executor: "Executor", plan: Plan) -> None:
        ctx = multiprocessing.get_context("fork")
        pipes = [ctx.Pipe() for _ in self.shards[1:]]
        for index in range(1, len(self.shards)):
            process = ctx.Process(
                target=_worker_main,
                args=(executor, plan, self, index, pipes),
                daemon=True,
                name=f"repro-host-shard-{index}",
            )
            process.start()
            self.workers.append((process, pipes[index - 1][0]))
        for _, child_end in pipes:
            child_end.close()

    # -- operator-phase execution ------------------------------------------

    def shardable(self, operator: Operator) -> bool:
        return self._carriers.get(id(operator)) is not None

    def run_sharded(self, cluster, driver, pgraph, operator: Operator, body) -> None:
        """Drive one shardable phase over the local shard, then exchange
        effect bundles so every process ends the phase with full state."""
        driver(
            cluster,
            pgraph,
            operator.space,
            body,
            kind=operator.kind,
            label=operator.label,
            hosts=self.shard,
        )
        record = cluster.log.phases[-1]
        carriers = self._carriers[id(operator)]
        if self.is_worker:
            _send(self.conn, "fx", self._export(carriers, self.shard, record))
            merged = _recv(self.conn, "the coordinator")
            for index, payload in enumerate(merged):
                if index != self.index:
                    self._install(carriers, payload, record=None)
            return
        # Coordinator: collect every worker's bundle first, then merge in
        # worker order - shards are contiguous ascending, so worker order
        # IS host order and the merged record is byte-identical to the
        # serial visit. The broadcast back simply forwards the bundles it
        # just received (plus its own shard's export): serialized once,
        # the identical bytes fan out to every worker, and each worker
        # skips its own entry.
        payloads = [self._export(carriers, self.shard, record=None)]
        payloads += [
            _recv(conn, f"worker {index} (pid {process.pid})")
            for index, (process, conn) in enumerate(self.workers, start=1)
        ]
        for payload in payloads[1:]:
            self._install(carriers, payload, record=record)
        blob = pickle.dumps(("mg", payloads), pickle.HIGHEST_PROTOCOL)
        for _, conn in self.workers:
            conn.send_bytes(blob)

    # -- bundles -----------------------------------------------------------

    def _export(
        self, carriers: list[Any], hosts: Sequence[int], record: PhaseRecord | None
    ) -> dict:
        """Effect bundle for ``hosts``: per-carrier per-host state, plus -
        from workers - the shard's counters and the phase's message rows."""
        bundle: dict[str, Any] = {
            "hosts": tuple(hosts),
            "effects": [
                [carrier.export_compute_effects(host) for host in hosts]
                for carrier in carriers
            ],
        }
        if record is not None:
            bundle["counters"] = [record.counters[host] for host in hosts]
            bundle["net"] = (
                list(record.msgs_sent),
                list(record.bytes_sent),
                list(record.msgs_recv),
                list(record.bytes_recv),
            )
        return bundle

    def _install(
        self, carriers: list[Any], bundle: dict, record: PhaseRecord | None
    ) -> None:
        hosts = bundle["hosts"]
        for carrier, per_host in zip(carriers, bundle["effects"]):
            for host, effects in zip(hosts, per_host):
                carrier.install_compute_effects(host, effects, self.resolve_op)
        if record is None or "counters" not in bundle:
            return
        for host, counters in zip(hosts, bundle["counters"]):
            record.counters[host].add(counters)
        msgs_sent, bytes_sent, msgs_recv, bytes_recv = bundle["net"]
        for host in range(self.num_hosts):
            record.msgs_sent[host] += msgs_sent[host]
            record.bytes_sent[host] += bytes_sent[host]
            record.msgs_recv[host] += msgs_recv[host]
            record.bytes_recv[host] += bytes_recv[host]

    def resolve_op(self, map_name: str, op_name: str) -> ReduceOp:
        try:
            return self._ops[op_name]
        except KeyError:
            raise RuntimeError(
                f"reducer {op_name!r} for map {map_name!r} cannot be "
                "resolved across processes; declare the operator via "
                "ScalarKernel(ops=...) so the plan carries a live object"
            ) from None

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Coordinator teardown: closing the pipes unblocks any worker
        still waiting in recv (it sees EOF and exits), then reap."""
        for _, conn in self.workers:
            try:
                conn.close()
            except OSError:  # pragma: no cover - double close is benign
                pass
        for process, _ in self.workers:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung-worker backstop
                process.terminate()
                process.join(timeout=5)
        self.workers = []


def create_pool(executor: "Executor", plan: Plan) -> HostShardPool | None:
    """Build and fork the pool for one plan run, or None when parallelism
    cannot help: a single host, no fork on this platform, or no phase the
    metadata proves shardable (then the serial path is already optimal
    and correct)."""
    jobs = min(executor.jobs, executor.cluster.num_hosts)
    if jobs < 2 or not fork_available():
        return None
    pool = HostShardPool(executor, plan, jobs)
    if not pool.has_shardable_phase():
        return None
    pool.fork_workers(executor, plan)
    return pool


def _worker_main(
    executor: "Executor", plan: Plan, pool: HostShardPool, index: int, pipes
) -> None:
    """Worker entry, running in the forked child only.

    The child inherited the coordinator's entire state copy-on-write, so
    it simply replays the same plan loop with its pool endpoint switched
    to worker mode. Deterministic exceptions (non-quiescence, simulated
    OOM) replay here too; the error bundle only matters when the worker
    diverges or hits a worker-only failure, in which case the coordinator
    surfaces it at the next exchange. ``os._exit`` skips the inherited
    atexit/teardown machinery - this process must not flush the parent's
    buffers or touch its resources on the way out.
    """
    status = 1
    conn = pipes[index - 1][1]
    try:
        for i, (parent_end, child_end) in enumerate(pipes):
            parent_end.close()
            if i != index - 1:
                child_end.close()
        pool.is_worker = True
        pool.index = index
        pool.shard = pool.shards[index]
        pool.conn = conn
        pool.workers = []
        executor._pool = pool
        executor._drive(plan)
        status = 0
    except BaseException:
        try:
            _send(conn, "err", traceback.format_exc()[-8000:])
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(status)


__all__ = [
    "HostShardPool",
    "create_pool",
    "fork_available",
    "shard_hosts",
]
