"""Host-shard parallel execution: the ``jobs=N`` executor backend.

The paper's whole execution model is BSP: per-host work inside a compute
phase is independent by construction, and hosts only exchange state at
the sync barriers. This module exploits exactly that structure to make
the *simulator's* wall clock scale with real cores while preserving the
byte-identity contract of the serial backends.

Design: **persistent forked replicated state machines with a
shared-memory, per-sync-boundary effect exchange.**

* The first ``Executor.run(plan)`` with ``jobs > 1`` forks ``jobs - 1``
  worker processes (POSIX ``fork``, copy-on-write) that live for the
  whole executor, not one plan run. Every process - coordinator
  included - replays the *identical* plan loop: host steps, resets,
  sync collectives, checkpoint/recovery, and fault-injection draws all
  run everywhere, so each process's replica of the cluster state
  evolves deterministically in lockstep. Fork-time inheritance is what
  makes this possible without pickling kernels: workers share every
  closure, graph array, and map with the coordinator at the fork point.
* Runs are framed by an explicit **epoch protocol**: ``begin_run``
  sends a ``run`` token naming a plan from the fork-time registry plus
  an epoch blob that resynchronizes every map the plan declares
  (coordinator-side driver code may have pinned mirrors, reset values,
  or synced reducers between runs); workers install it and ``ack``.
  ``end_run`` collects an ``eor`` token per worker - including after
  exceptions, which abort cleanly and leave the pool warm for the next
  run. A plan the forked workers have never seen cannot ship its
  kernels (closures), so the pool reforks once with the grown registry;
  tolerance-loop drivers that re-run the same plans reuse the warm pool
  with zero forks.
* Only *shardable compute phases* divide work: each process drives
  ``par_for``/``par_for_bulk`` over its own contiguous host shard.
  Effects are **not** exchanged per phase: exports are cumulative since
  the last reduce-sync, so consecutive sharded phases defer into one
  aggregated exchange per sync boundary (any sync collective, host
  step, reset, replicated phase, or round end). One flush ships, per
  worker, a single bundle: the latest per-host effect state of every
  touched carrier, plus the per-phase :class:`Counters` totals and
  message rows as one ``int64`` matrix each.
* The exchange itself is zero-install shared memory: the coordinator
  preallocates one ``multiprocessing.shared_memory`` arena per worker
  (double-buffered) plus a broadcast arena, all created before the fork
  so every process inherits the same mapping. Bundles are encoded with
  pickle protocol 5; numpy payloads (reduction batch arrays, counter
  matrices, GAR value slabs in epoch blobs) travel as raw out-of-band
  buffers written directly into the arena. Pipes carry only fixed-size
  tokens; every process reads every peer's arena directly, so the
  coordinator never re-serializes the fan-out. Oversized bundles fall
  back to the pipe and the next refork grows the arenas.
* The coordinator merges worker bundles **in worker order** - shards
  are contiguous ascending, so worker order IS host order and the
  merged phase records are byte-identical to the serial visit. Phases
  that are not shardable simply run **replicated** on every process.

The coordinator's metrics log, counters, conflict counts, modeled
seconds, and trace rows therefore evolve exactly as a serial run's
would: the serial backend stays the oracle, and
``tests/test_parallel_equivalence.py`` enforces ``RunResult.to_dict()``
byte-identity across ``jobs`` for all twelve algorithms. With a fault
injector installed the pool disables deferral and run reuse (refork per
run) so injected draws and crash points replay exactly as they did
serially.

Segment lifecycle: arenas are created and unlinked only by the
coordinator (``shutdown``), so ``/dev/shm`` holds ``jobs`` segments per
pool generation and zero after ``Executor.close()``; workers exit via
``os._exit`` without touching the resource tracker. An ``atexit`` guard
covers the remaining path: a ``KeyboardInterrupt`` (or any unwound
exception) that reaches interpreter exit before ``Executor.close()``
still reaps the workers and unlinks every segment.

**Self-healing (``Executor(recovery=...)``).** With a recovery policy
other than ``fail-fast`` the coordinator becomes a supervisor: every
token wait polls worker exit codes instead of blocking on the pipe, and
a typed :class:`PoolError` (:class:`WorkerDied`,
:class:`ExchangeTimeout`, :class:`ArenaCorruption`) triggers recovery
*within the run*. Because every process holds the full replicated state
at each round boundary, recovery is refork-all: the coordinator reaps
the whole group, rolls its own state back to the round-start
:class:`~repro.faults.checkpoint.RoundSnapshot` (built on the same
``checkpoint_state``/``restore_state`` machinery as the modeled fault
layer), reconfigures (``refork`` keeps the shard count, ``reshard``
drops one shard and re-deals the dead worker's hosts onto survivors),
and forks replacements that inherit the rolled-back state copy-on-write
and resume the in-flight run at the same completed-round count. When
resharding consumes the last worker the pool degrades to the serial
path, which is the ``jobs=1`` oracle by contract - so a recovered run's
``RunResult.to_dict()`` stays byte-identical to an undisturbed
``jobs=1`` run either way. Arena frames carry a magic/sequence/length
header (plus a CRC32 when the supervisor is on) so a corrupt bundle
raises :class:`ArenaCorruption` into the same recovery path instead of
deserializing garbage. All of it is gated: with ``fail-fast`` (the
default) and no :class:`~repro.faults.chaos.ChaosPlan` the exchange
protocol, token waits, and frame checks are exactly the pre-healing
fast path.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import signal as _signal
import struct
import time
import traceback
import weakref
import zlib
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.cluster.metrics import (
    Counters,
    PhaseRecord,
    add_counter_row,
    counters_to_rows,
)
from repro.core.reducers import NAMED_REDUCE_OPS, ReduceOp
from repro.exec.plan import (
    DegreeReduce,
    EdgePush,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
)
from repro.faults.chaos import deliver as deliver_chaos
from repro.faults.checkpoint import RoundSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executor import Executor

#: Prefix of every shared-memory segment the pool creates; the lifecycle
#: tests scan ``/dev/shm`` for leaks by this prefix.
POOL_SEGMENT_PREFIX = "repro-pool-"

_uid_counter = 0


def _next_uid() -> int:
    global _uid_counter
    _uid_counter += 1
    return _uid_counter


def fork_available() -> bool:
    """Parallel execution needs POSIX fork (workers inherit closures)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_hosts(num_hosts: int, shards: int) -> list[tuple[int, ...]]:
    """Contiguous balanced host shards, ascending.

    Shard ``s`` owns hosts ``[s*H//N, (s+1)*H//N)`` - the same closed-form
    dealing as the OpenMP-static thread chunks. The shard count clamps to
    the host count, so no shard is ever empty. Concatenating the shards
    in shard order yields ``0..H-1``, which is what lets the coordinator
    merge worker bundles in fixed host order by walking workers in index
    order.
    """
    shards = max(1, min(shards, num_hosts))
    return [
        tuple(range(s * num_hosts // shards, (s + 1) * num_hosts // shards))
        for s in range(shards)
    ]


class _RunAborted(Exception):
    """Raised inside a worker when the coordinator aborts the run."""


# ----------------------------------------------------- exception taxonomy


def _rebuild_pool_error(cls, args, state):
    """Unpickle helper: rebuild a PoolError with its context attributes
    (plain ``RuntimeError`` pickling would drop ``worker``/``shard``/
    ``phase``, and the eor path round-trips worker exceptions)."""
    err = cls.__new__(cls)
    RuntimeError.__init__(err, *args)
    err.__dict__.update(state)
    return err


class PoolError(RuntimeError):
    """A failure of the parallel exchange protocol or its substrate.

    Subclasses ``RuntimeError`` so pre-taxonomy callers keep working.
    Every instance carries the failing worker index, its host-shard
    range, and the phase label in flight, both as attributes and
    appended to the message.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int | None = None,
        shard: Sequence[int] | None = None,
        phase: str | None = None,
    ) -> None:
        context = []
        if worker is not None:
            context.append(f"worker {worker}")
        if shard:
            context.append(f"hosts {shard[0]}..{shard[-1]}")
        if phase:
            context.append(f"phase {phase!r}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.worker = worker
        self.shard = tuple(shard) if shard is not None else None
        self.phase = phase

    def __reduce__(self):
        return (_rebuild_pool_error, (type(self), self.args, dict(self.__dict__)))


class WorkerDied(PoolError):
    """A worker process exited (signal, OOM kill, crash) mid-protocol."""


class ExchangeTimeout(PoolError):
    """A live worker sent nothing within the exchange deadline."""


class ArenaCorruption(PoolError):
    """A shared-memory bundle failed frame validation (bad magic,
    sequence mismatch, length overrun, or checksum failure)."""


class ProtocolDivergence(PoolError):
    """The replicated state machines disagreed (wrong token, phase-count
    mismatch). Never healed: replay would diverge the same way."""


#: The errors the self-healing supervisor recovers from. Divergence is
#: excluded on purpose - deterministic replay would reproduce it.
HEALABLE_ERRORS = (WorkerDied, ExchangeTimeout, ArenaCorruption)


class ArenaIntegrityError(RuntimeError):
    """Low-level arena frame validation failure; the pool wraps it into
    :class:`ArenaCorruption` with worker/shard/phase context."""


# ------------------------------------------------- interpreter-exit guard

_POOLS: "weakref.WeakSet[HostShardPool]" = weakref.WeakSet()
_ATEXIT_INSTALLED = False


def _atexit_cleanup() -> None:
    """Reap pools that never saw ``Executor.close()``: a KeyboardInterrupt
    mid-exchange unwinds straight to interpreter exit, and without this
    the ``/dev/shm`` segments (and parked workers) outlive the process.
    Workers never run it - they leave via ``os._exit``."""
    for pool in list(_POOLS):
        if pool.is_worker or pool._owner_pid != os.getpid():
            continue
        try:
            pool.dead = True  # shorten the join grace; we are exiting
            pool.shutdown()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


# --------------------------------------------------------------- plan tables


def _effect_carrier(obj: Any) -> bool:
    return hasattr(obj, "export_compute_effects")


def _map_table(plan: Plan) -> dict[str, Any]:
    """Every effect carrier the plan names, keyed by name (identical on
    all processes: the table is built from the same plan object on the
    coordinator and, via fork inheritance, on every worker)."""
    table: dict[str, Any] = {}

    def put(obj: Any) -> None:
        if obj is not None and _effect_carrier(obj):
            table[obj.name] = obj

    for step in plan.steps:
        if isinstance(step, OperatorStep):
            kernel = step.operator.kernel
            for attr in ("target", "source", "require_active"):
                put(getattr(kernel, attr, None))
            for extra in getattr(kernel, "extra_effects", ()):
                put(extra)
        else:
            put(getattr(step, "map", None))
    for prop in plan.quiesce:
        put(prop)
    for prop in plan.maps:
        put(prop)
    return table


def _op_table(plan: Plan) -> dict[str, ReduceOp]:
    """Reducers resolvable by name: the canonical registry plus every
    operator object the plan's kernels carry (covers algorithm-local
    custom reducers like Louvain's pair_sum)."""
    ops = dict(NAMED_REDUCE_OPS)
    for step in plan.steps:
        if not isinstance(step, OperatorStep):
            continue
        kernel = step.operator.kernel
        op = getattr(kernel, "op", None)
        if op is not None:
            ops[op.name] = op
        for extra in getattr(kernel, "ops", ()):
            ops[extra.name] = extra
    return ops


def _phase_carriers(
    operator: Operator, by_name: dict[str, Any], ops: dict[str, ReduceOp]
) -> list[Any] | None:
    """The effect carriers of one compute phase, or None when the phase
    must run replicated instead of sharded.

    The declarative kernel forms are shardable by construction (their
    only mutations are host-local reductions into the target). A
    ``ScalarKernel`` is shardable when it declares itself host-local,
    every map it names resolves, and every reducer it writes with is
    resolvable by name across processes. Key-value-store maps are never
    shardable: their reductions hit shared server shards and the network
    immediately.
    """
    kernel = operator.kernel
    if isinstance(kernel, (EdgePush, NodeUpdate, DegreeReduce)):
        carriers = [kernel.target]
    elif isinstance(kernel, ScalarKernel):
        if not kernel.host_local:
            return None
        names: list[str] = []
        for name in kernel.read_names:
            if name not in names:
                names.append(name)
        for name, op_name in kernel.write_names:
            if name not in names:
                names.append(name)
            if op_name not in ops:
                return None
        carriers = []
        for name in names:
            carrier = by_name.get(name)
            if carrier is None:
                return None
            carriers.append(carrier)
        carriers.extend(kernel.extra_effects)
    else:  # pragma: no cover - the kernel union is closed
        return None
    for carrier in carriers:
        variant = getattr(carrier, "variant", None)
        if variant is not None and variant.uses_kvstore:
            return None
    return carriers


# --------------------------------------------------- shared-memory transport

_ALIGN = 8


def _pad(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _encode_payload(obj: Any) -> tuple[bytes, list[memoryview]]:
    """Pickle ``obj`` with protocol-5 out-of-band buffers: numpy arrays
    and other buffer-protocol payloads come back raw, to be written into
    a shared arena without a serialization copy."""
    buffers: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    try:
        raws = [buf.raw() for buf in buffers]
    except BufferError:  # pragma: no cover - non-contiguous exotic buffer
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), []
    return meta, raws


# Frame header: magic, crc32, sequence, out-of-band buffer count, meta
# length. Magic/sequence/length bounds are validated on every read; the
# CRC is computed and verified only when the pool's supervisor is on
# (``integrity``), keeping the fail-fast fast path free of the scan.
_FRAME_HEADER = struct.Struct("<IIQQQ")
_ARENA_MAGIC = 0x4B50_4F4C  # "KPOL"


def _encoded_size(meta: bytes, raws: list[memoryview]) -> int:
    return (
        _FRAME_HEADER.size
        + _pad(len(meta))
        + sum(8 + _pad(raw.nbytes) for raw in raws)
    )


def _write_encoded(
    buf: memoryview,
    base: int,
    meta: bytes,
    raws: list[memoryview],
    seq: int = 0,
    check: bool = False,
) -> int:
    crc = 0
    if check:
        crc = zlib.crc32(meta)
        for raw in raws:
            crc = zlib.crc32(raw.cast("B"), crc)
    _FRAME_HEADER.pack_into(buf, base, _ARENA_MAGIC, crc, seq, len(raws), len(meta))
    offset = base + _FRAME_HEADER.size
    buf[offset : offset + len(meta)] = meta
    offset += _pad(len(meta))
    for raw in raws:
        struct.pack_into("<Q", buf, offset, raw.nbytes)
        offset += 8
        buf[offset : offset + raw.nbytes] = raw.cast("B")
        offset += _pad(raw.nbytes)
    return offset - base


def _read_encoded(
    buf: memoryview,
    base: int,
    limit: int,
    expected_seq: int = 0,
    check: bool = False,
) -> Any:
    end = base + limit
    magic, crc, seq, nbuf, meta_len = _FRAME_HEADER.unpack_from(buf, base)
    if magic != _ARENA_MAGIC:
        raise ArenaIntegrityError(f"bad arena frame magic 0x{magic:08x}")
    if seq != expected_seq:
        raise ArenaIntegrityError(
            f"arena frame carries sequence {seq}, expected {expected_seq}"
        )
    offset = base + _FRAME_HEADER.size
    if meta_len > end - offset:
        raise ArenaIntegrityError(
            f"arena frame metadata ({meta_len} bytes) overruns the slot"
        )
    meta = bytes(buf[offset : offset + meta_len])
    offset += _pad(meta_len)
    # Copy the out-of-band buffers out of the arena: installed effect
    # state is retained past this flush, and the slot is rewritten two
    # flushes from now.
    raws: list[bytes] = []
    for _ in range(nbuf):
        if offset + 8 > end:
            raise ArenaIntegrityError("arena frame buffer table overruns the slot")
        (raw_len,) = struct.unpack_from("<Q", buf, offset)
        offset += 8
        if raw_len > end - offset:
            raise ArenaIntegrityError(
                f"arena frame buffer ({raw_len} bytes) overruns the slot"
            )
        raws.append(bytes(buf[offset : offset + raw_len]))
        offset += _pad(raw_len)
    if check:
        actual = zlib.crc32(meta)
        for raw in raws:
            actual = zlib.crc32(raw, actual)
        if actual != crc:
            raise ArenaIntegrityError(
                f"arena frame checksum mismatch (stored 0x{crc:08x}, "
                f"computed 0x{actual:08x})"
            )
    return pickle.loads(meta, buffers=raws)


class _Arena:
    """One coordinator-created shared segment, split into equal slots.

    Created before the fork so every process inherits the same mapping;
    only the coordinator ever unlinks it. Worker arenas use two slots
    (the flush sequence alternates, so a slow reader of flush ``k`` can
    never observe the owner writing flush ``k+1``); the broadcast arena
    needs one (the coordinator only rewrites it after collecting every
    worker's next ``fx`` token, which implies all reads finished).
    """

    def __init__(self, name: str, size: int, slots: int) -> None:
        size = max(_pad(size), slots * 64)
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        self.slots = slots
        self.slot_size = (self.shm.size // slots) & ~(_ALIGN - 1)

    def write(
        self, slot: int, obj: Any, seq: int = 0, check: bool = False
    ) -> tuple[str, Any]:
        """Encode ``obj`` into ``slot``; fall back to in-band pickle bytes
        when it does not fit. Returns the token describing the location.
        ``seq`` stamps the frame header (readers validate it); ``check``
        additionally stores a CRC32 of the payload."""
        meta, raws = _encode_payload(obj)
        size = _encoded_size(meta, raws)
        if size > self.slot_size:
            return ("pipe", pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        _write_encoded(self.shm.buf, slot * self.slot_size, meta, raws, seq, check)
        return ("shm", size)

    def read(
        self, slot: int, via: tuple[str, Any], seq: int = 0, check: bool = False
    ) -> Any:
        kind, payload = via
        if kind == "pipe":
            return pickle.loads(payload)
        return _read_encoded(
            self.shm.buf, slot * self.slot_size, self.slot_size, seq, check
        )

    def destroy(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - lingering view
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _via_size(via: tuple[str, Any]) -> int:
    kind, payload = via
    return len(payload) if kind == "pipe" else int(payload)


# ------------------------------------------------------------- the endpoint


def _send_token(conn, *token: Any) -> None:
    conn.send_bytes(pickle.dumps(token, pickle.HIGHEST_PROTOCOL))


class HostShardPool:
    """The executor's persistent process group: coordinator endpoint in
    the parent, worker endpoint (same object, mutated post-fork) in each
    child. Construction only builds the decision tables; ``begin_run``
    forks (or reuses) the workers."""

    def __init__(self, executor: "Executor", plan: Plan, jobs: int) -> None:
        cluster = executor.cluster
        self.executor = executor
        self.num_hosts = cluster.num_hosts
        self.jobs = max(1, min(int(jobs), self.num_hosts))
        self.shards = shard_hosts(self.num_hosts, self.jobs)
        self.index = 0
        self.shard: Sequence[int] = self.shards[0]
        self.is_worker = False
        self.active = False
        self.dead = False
        self.conn = None
        self.workers: list[tuple[Any, Any]] = []
        # Plan registry: every plan this pool has seen, by object id.
        # Workers inherit the registry at fork time, so a registered plan
        # can be named by key in a ``run`` token; an unregistered plan
        # forces one refork (closures cannot cross a pipe).
        self.registry: dict[int, Plan] = {}
        self._tables: dict[int, dict[int, list[Any] | None]] = {}
        self._names: dict[int, dict[str, Any]] = {}
        self._plan_ops: dict[int, dict[str, ReduceOp]] = {}
        self._forked_keys: set[int] = set()
        self._plan_key = id(plan)
        self.register_plan(plan)
        # Exchange state.
        self._pending: list[tuple[list[Any], PhaseRecord]] = []
        self._eor_seen: set[int] = set()
        self._seq = 0
        self._run_seq = 0
        self.defer = True
        # Shared segments + instrumentation.
        self._arenas: list[_Arena] = []
        self._bcast: _Arena | None = None
        self._arena_bytes_needed = 0
        self.bytes_exchanged = 0
        self.segments_peak = 0
        self.forks = 0
        self.warm_runs = 0
        # Self-healing supervisor (ISSUE 7). policy/chaos come from the
        # executor; _watch gates the non-blocking token waits and
        # integrity the arena CRCs, so the fail-fast default keeps the
        # exact pre-healing fast path (zero overhead, zero report diffs).
        self.policy = getattr(executor, "recovery", "fail-fast")
        self.chaos = getattr(executor, "chaos", None)
        self.healing = self.policy != "fail-fast"
        self._watch = self.healing or self.chaos is not None
        self.integrity = self._watch
        self.exchange_timeout = 120.0
        # Sync-boundary ordinal, counted identically on every process and
        # never rolled back by recovery (replacement workers inherit the
        # coordinator's value), which is what makes a ChaosPlan event
        # fire exactly once with no fired-set to synchronize.
        self.boundaries_seen = 0
        self.diagnostics: list[str] = []
        self.deaths_detected = 0
        self.heals = 0
        self.reforks = 0
        self.reshards = 0
        self._heal_attempts = 0
        self._resume: tuple[int, int] | None = None
        self._guard_depth = 0
        self._owner_pid = os.getpid()
        _POOLS.add(self)
        global _ATEXIT_INSTALLED
        if not _ATEXIT_INSTALLED:
            atexit.register(_atexit_cleanup)
            _ATEXIT_INSTALLED = True

    # -- plan registry -----------------------------------------------------

    def register_plan(self, plan: Plan) -> None:
        key = id(plan)
        if key in self.registry:
            return
        self.registry[key] = plan
        by_name = _map_table(plan)
        ops = _op_table(plan)
        self._names[key] = by_name
        self._plan_ops[key] = ops
        table: dict[int, list[Any] | None] = {}
        for step in plan.steps:
            if isinstance(step, OperatorStep):
                table[id(step.operator)] = _phase_carriers(
                    step.operator, by_name, ops
                )
        # The key-value-store (RuntimeVariant.MC) invariant: kv-backed
        # phases and their sync collectives run REPLICATED on every
        # process, never sharded. KvCas reductions apply immediately
        # against shared server shards - conflict draws and the kv
        # network accounting depend on the global operation order, which
        # host-sharding would change - and MC's reduce_sync refetches
        # every property through the kv servers (mutating shared server
        # state), while its broadcast_sync is a structural no-op (no GAR
        # mirrors to push). So there is no broadcast side to shard, and
        # the reduce side must stay serial for byte-identity: replicated
        # replay IS the correctness strategy, enforced here so a future
        # carrier-table change cannot silently shard a kv phase.
        for carriers in table.values():
            if carriers is None:
                continue
            for carrier in carriers:
                variant = getattr(carrier, "variant", None)
                if variant is not None and variant.uses_kvstore:
                    raise AssertionError(
                        f"kvstore-backed map {carrier.name!r} in a "
                        "shardable phase: MC collectives must stay serial"
                    )
        self._tables[key] = table

    def has_shardable_phase(self, plan: Plan | None = None) -> bool:
        key = self._plan_key if plan is None else id(plan)
        return any(c is not None for c in self._tables[key].values())

    def shardable(self, operator: Operator) -> bool:
        return self._tables[self._plan_key].get(id(operator)) is not None

    def resolve_op(self, map_name: str, op_name: str) -> ReduceOp:
        op = self._plan_ops[self._plan_key].get(op_name)
        if op is None:
            # A map can cross plans (cc_sv's parent map in hook and
            # shortcut): fall back to any registered plan's table.
            for table in self._plan_ops.values():
                if op_name in table:
                    op = table[op_name]
                    break
        if op is None:
            raise RuntimeError(
                f"reducer {op_name!r} for map {map_name!r} cannot be "
                "resolved across processes; declare the operator via "
                "ScalarKernel(ops=...) so the plan carries a live object"
            )
        return op

    # -- lifecycle: fork ---------------------------------------------------

    def _arena_size(self, plan: Plan) -> int:
        # Generous default: the biggest bundles are epoch blobs and bulk
        # reduction batches, both O(local nodes) numeric arrays. Grow past
        # any pipe-fallback size a previous generation observed.
        total_local = sum(part.num_local for part in plan.pgraph.parts)
        estimate = max(1 << 20, 48 * total_local + (1 << 16))
        return _pad(max(estimate, 2 * self._arena_bytes_needed))

    def fork_workers(self, plan: Plan | None = None) -> None:
        """Create the shared arenas and fork one worker per extra shard.

        If forking worker ``k`` fails midway, the already-started workers
        are reaped and the segments unlinked before the error propagates -
        a partial pool must not leak children or ``/dev/shm`` segments.
        """
        if plan is None:
            plan = self.registry[self._plan_key]
        ctx = multiprocessing.get_context("fork")
        size = self._arena_size(plan)
        uid = f"{os.getpid()}-{_next_uid()}"
        self._bcast = _Arena(f"{POOL_SEGMENT_PREFIX}{uid}-b", size, slots=1)
        self._arenas = [
            _Arena(f"{POOL_SEGMENT_PREFIX}{uid}-w{i}", size, slots=2)
            for i in range(1, len(self.shards))
        ]
        self.segments_peak = max(self.segments_peak, 1 + len(self._arenas))
        pipes = [ctx.Pipe() for _ in self.shards[1:]]
        try:
            for index in range(1, len(self.shards)):
                process = self._make_process(ctx, index, pipes)
                process.start()
                self.workers.append((process, pipes[index - 1][0]))
        except BaseException:
            for process, _ in self.workers:
                process.terminate()
            for process, _ in self.workers:
                process.join(timeout=2)
                if process.is_alive():  # pragma: no cover - stuck child
                    process.kill()
                    process.join(timeout=2)
            self.workers = []
            for parent_end, child_end in pipes:
                for end in (parent_end, child_end):
                    try:
                        end.close()
                    except OSError:  # pragma: no cover
                        pass
            self._destroy_segments()
            raise
        for _, child_end in pipes:
            child_end.close()
        self.forks += 1
        self._forked_keys = set(self.registry)
        self.dead = False

    def _make_process(self, ctx, index: int, pipes):
        """One worker process (overridable seam: the fork-failure tests
        inject a factory that fails partway through the group). A heal
        in flight (``_resume`` set) forks resume-mode workers that rejoin
        the interrupted run instead of parking for a ``run`` token."""
        if self._resume is not None:
            return ctx.Process(
                target=_worker_resume_main,
                args=(self.executor, self, index, pipes, self._resume),
                daemon=True,
                name=f"repro-host-shard-{index}",
            )
        return ctx.Process(
            target=_worker_main,
            args=(self.executor, self, index, pipes),
            daemon=True,
            name=f"repro-host-shard-{index}",
        )

    def _destroy_segments(self) -> None:
        for arena in self._arenas:
            arena.destroy()
        self._arenas = []
        if self._bcast is not None:
            self._bcast.destroy()
            self._bcast = None

    # -- lifecycle: runs ---------------------------------------------------

    def begin_run(self, plan: Plan) -> bool:
        """Coordinator run entry. Returns False when this plan has no
        shardable phase (the caller runs it serially; idle workers keep
        waiting for the next ``run`` token)."""
        key = id(plan)
        if key not in self.registry:
            self.register_plan(plan)
        self._plan_key = key
        if not self.has_shardable_phase(plan):
            return False
        if len(self.shards) < 2:
            # Reshard recovery consumed every worker in an earlier run:
            # the pool stays degraded to the serial (jobs=1) path.
            return False
        reusable = self.executor.cluster.faults is None
        warm = bool(self.workers) and not self.dead and reusable
        warm = warm and key in self._forked_keys
        if not warm:
            if self.workers or self.dead:
                self.shutdown()
            self.fork_workers(plan)
        else:
            self.warm_runs += 1
        self._run_seq += 1
        self._seq = 0
        self._pending = []
        self._eor_seen = set()
        self._heal_attempts = 0
        self.active = True
        # Deterministic fault injection draws per phase and per send; the
        # deferred exchange would reorder neither, but keeping the exact
        # per-phase flush cadence of the serial replay makes crash points
        # trivially identical, so deferral is disabled under injection.
        self.defer = reusable
        try:
            self._start_workers(warm, plan, key)
        except HEALABLE_ERRORS as err:
            if not self.healing:
                raise
            # A worker died parked between runs (or mid-ack): replace the
            # whole group cold - the fresh fork inherits the coordinator's
            # current state, so no epoch blob is needed - and retry once.
            self.deaths_detected += 1
            self.note_diagnostic("begin_run", err)
            self.shutdown()
            self.fork_workers(plan)
            self.active = True
            self._start_workers(False, plan, key)
        return True

    def _start_workers(self, warm: bool, plan: Plan, key: int) -> None:
        epoch_via = None
        if warm:
            assert self._bcast is not None
            blob = self._export_epoch(plan)
            epoch_via = self._bcast.write(
                0, blob, seq=self._run_seq, check=self.integrity
            )
            self.bytes_exchanged += _via_size(epoch_via)
            if epoch_via[0] == "pipe":
                self.note_arena_shortfall(len(epoch_via[1]))
        for index, (process, conn) in enumerate(self.workers, start=1):
            self._send_to_worker(
                index, process, conn, "run", key, self._run_seq, epoch_via
            )
        # Wait for every ack before touching any state: a worker still
        # installing the epoch blob must not race the first flush's
        # broadcast-arena write (or the run's first phase).
        for index, (process, conn) in enumerate(self.workers, start=1):
            token = self._recv_token(conn, index, process)
            if token[0] != "ack" or token[1] != self._run_seq:
                self.dead = True
                raise ProtocolDivergence(
                    f"parallel worker {index} answered {token[0]!r} instead "
                    "of acknowledging the run epoch; the processes diverged",
                    worker=index,
                    shard=self._shard_of(index),
                )

    def end_run(self, failed: bool) -> None:
        """Coordinator run exit: collect one ``eor`` per worker (aborting
        the run first if the coordinator failed), leaving the pool warm."""
        self.active = False
        self._pending = []
        if not self.workers:
            return
        if failed and not self.dead:
            for index, (_, conn) in enumerate(self.workers, start=1):
                try:
                    _send_token(conn, "abort")
                except OSError as err:  # pragma: no cover - worker gone
                    self.dead = True
                    self.note_diagnostic(f"end_run abort to worker {index}", err)
        for index, (process, conn) in enumerate(self.workers, start=1):
            if index in self._eor_seen:
                continue
            try:
                self._await_eor(conn, index, process, timeout=60)
            except (WorkerDied, ExchangeTimeout, ProtocolDivergence) as err:
                # Only the typed peer-failure family is tolerated here (the
                # old bare ``except RuntimeError`` swallowed real shutdown
                # bugs), and every instance leaves a diagnostic.
                self.dead = True
                self.note_diagnostic(f"end_run eor from worker {index}", err)
                if isinstance(err, WorkerDied):
                    self.deaths_detected += 1
                if not failed and not self.healing:
                    raise
                # After a failed run the coordinator's error wins; with
                # healing the run's data is already complete (the death is
                # past the final boundary) and the next begin_run reforks.
        if self.dead:
            self.shutdown()

    def _await_eor(self, conn, index: int, process, timeout: float) -> None:
        while True:
            if not conn.poll(timeout):
                raise ExchangeTimeout(
                    f"parallel worker {index} (pid {process.pid}) did not "
                    f"reach end-of-run within {timeout:.0f}s; the processes "
                    "diverged",
                    worker=index,
                    shard=self._shard_of(index),
                    phase=self._phase_label(),
                )
            token = self._recv_token(conn, index, process)
            if token[0] == "eor":
                self._eor_seen.add(index)
                return
            # Stray fx/ack tokens from an aborted exchange: drain them.

    def note_diagnostic(self, context: str, err: BaseException) -> None:
        self.diagnostics.append(f"{context}: {type(err).__name__}: {err}")

    def _shard_of(self, index: int) -> tuple[int, ...] | None:
        return tuple(self.shards[index]) if index < len(self.shards) else None

    def _phase_label(self) -> str | None:
        record = getattr(self.executor.cluster, "_current", None)
        return (record.label or record.operator) if record is not None else None

    # -- operator-phase execution ------------------------------------------

    def run_sharded(self, cluster, driver, pgraph, operator: Operator, body) -> None:
        """Drive one shardable phase over the local shard and defer its
        effects into the pending aggregate (flushed at the next sync
        boundary, or immediately under fault injection)."""
        driver(
            cluster,
            pgraph,
            operator.space,
            body,
            kind=operator.kind,
            label=operator.label,
            hosts=self.shard,
        )
        carriers = self._tables[self._plan_key][id(operator)]
        self._pending.append((carriers, cluster.log.phases[-1]))
        if not self.defer:
            self.flush()

    def defer_fused(self, operators: Sequence[Operator], records) -> None:
        """Queue a fused compute group's effects (repro.exec.codegen):
        one ``(carriers, record)`` pair per constituent, in step order -
        exactly the pending entries the same phases would have appended
        through :meth:`run_sharded` individually, so the exchange bundle
        layout (and therefore the merged run) is unchanged by fusion.

        Fusion is compiled out under fault injection (where ``defer`` is
        False), so the deferred path is the only one a fused group takes;
        the flush fallback keeps the invariant anyway.
        """
        table = self._tables[self._plan_key]
        for operator, record in zip(operators, records):
            self._pending.append((table[id(operator)], record))
        if not self.defer:  # pragma: no cover - fusion implies defer
            self.flush()

    def flush(self) -> None:
        """The aggregated exchange: one bundle per process for everything
        deferred since the last sync boundary. Replay determinism makes
        every process compute the same pending set, so the no-op case is
        symmetric and the collective stays aligned without a barrier.
        """
        if not self._pending:
            return
        self._chaos_tick()
        pending, self._pending = self._pending, []
        carriers: list[Any] = []
        seen: set[int] = set()
        for phase_carriers, _ in pending:
            for carrier in phase_carriers:
                if id(carrier) not in seen:
                    seen.add(id(carrier))
                    carriers.append(carrier)
        slot = self._seq % 2
        self._seq += 1
        if self.is_worker:
            self._flush_worker(carriers, pending, slot)
        else:
            self._flush_coordinator(carriers, pending, slot)

    def _export_bundle(self, carriers: list[Any], pending) -> dict[str, Any]:
        bundle: dict[str, Any] = {
            "effects": [
                [carrier.export_compute_effects(host) for host in self.shard]
                for carrier in carriers
            ],
        }
        if self.is_worker:
            bundle["counters"] = np.stack(
                [
                    counters_to_rows([record.counters[h] for h in self.shard])
                    for _, record in pending
                ]
            )
            bundle["net"] = np.array(
                [
                    [
                        record.msgs_sent,
                        record.bytes_sent,
                        record.msgs_recv,
                        record.bytes_recv,
                    ]
                    for _, record in pending
                ],
                dtype=np.int64,
            )
        return bundle

    def _install_effects(
        self, carriers: list[Any], shard: Sequence[int], bundle: dict
    ) -> None:
        for carrier, per_host in zip(carriers, bundle["effects"]):
            for host, effects in zip(shard, per_host):
                carrier.install_compute_effects(host, effects, self.resolve_op)

    def _chaos_tick(self) -> None:
        """Count this sync boundary; deliver any chaos event aimed here.

        Only ticks when the supervisor is watching (healing or chaos), so
        the fail-fast default never touches the counter. The doomed
        worker kills *itself* before writing its bundle - a real death
        the coordinator must detect, not a modeled one."""
        if not self._watch:
            return
        self.boundaries_seen += 1
        chaos = self.chaos
        if chaos is None or not self.is_worker:
            return
        for event in chaos.events:
            if event.boundary == self.boundaries_seen and event.worker == self.index:
                deliver_chaos(event)

    def _read_peer(self, arena: _Arena, slot: int, via, writer: int, seq: int):
        """Read a peer's bundle with frame validation; corruption becomes
        a typed :class:`ArenaCorruption` (healable) instead of garbage."""
        try:
            return arena.read(slot, via, seq=seq, check=self.integrity)
        except (ArenaIntegrityError, pickle.UnpicklingError) as err:
            self.dead = True
            who = "the coordinator" if writer == 0 else f"worker {writer}"
            raise ArenaCorruption(
                f"shared-memory bundle from {who} failed validation: {err}",
                worker=writer,
                shard=self._shard_of(writer),
                phase=self._phase_label(),
            ) from err

    def _send_to_worker(self, index: int, process, conn, *token: Any) -> None:
        """Coordinator-side send; a broken pipe means the worker died
        (previously an uncaught OSError) and surfaces as WorkerDied."""
        try:
            _send_token(conn, *token)
        except OSError:
            raise self._death_error(f"worker {index}", process, index) from None

    def _flush_worker(self, carriers, pending, slot: int) -> None:
        arena = self._arenas[self.index - 1]
        via = arena.write(
            slot,
            self._export_bundle(carriers, pending),
            seq=self._seq,
            check=self.integrity,
        )
        self.bytes_exchanged += _via_size(via)
        _send_token(self.conn, "fx", self._seq, via)
        token = self._recv_token(self.conn, 0, None)
        if token[0] == "abort":
            raise _RunAborted()
        if token[0] != "go":  # pragma: no cover - protocol violation
            raise ProtocolDivergence(
                f"expected go token, got {token[0]!r}", worker=self.index
            )
        vias = token[2]
        assert self._bcast is not None
        for index in range(len(self.shards)):
            if index == self.index:
                continue
            if index == 0:
                bundle = self._read_peer(self._bcast, 0, vias[0], 0, self._seq)
            else:
                bundle = self._read_peer(
                    self._arenas[index - 1], slot, vias[index], index, self._seq
                )
            self._install_effects(carriers, self.shards[index], bundle)

    def _flush_coordinator(self, carriers, pending, slot: int) -> None:
        vias: list[Any] = [None] * len(self.shards)
        for index, (process, conn) in enumerate(self.workers, start=1):
            token = self._recv_token(conn, index, process)
            if token[0] == "eor":
                # The worker's replay of this run raised before reaching
                # this exchange; surface its (deterministic) error here.
                self._eor_seen.add(index)
                raise self._worker_run_error(index, process, token[2])
            if token[0] != "fx" or token[1] != self._seq:
                self.dead = True
                raise ProtocolDivergence(
                    f"parallel worker {index} sent {token[0]!r} out of "
                    "phase; the processes diverged",
                    worker=index,
                    shard=self._shard_of(index),
                    phase=self._phase_label(),
                )
            vias[index] = token[2]
            self.bytes_exchanged += _via_size(token[2])
            if token[2][0] == "pipe":
                self.note_arena_shortfall(len(token[2][1]))
            bundle = self._read_peer(
                self._arenas[index - 1], slot, token[2], index, self._seq
            )
            self._merge_worker_bundle(index, carriers, pending, bundle)
        assert self._bcast is not None
        own = self._export_bundle(carriers, pending)
        vias[0] = self._bcast.write(0, own, seq=self._seq, check=self.integrity)
        self.bytes_exchanged += _via_size(vias[0])
        if vias[0][0] == "pipe":
            self.note_arena_shortfall(len(vias[0][1]))
        for index, (process, conn) in enumerate(self.workers, start=1):
            self._send_to_worker(index, process, conn, "go", self._seq, vias)

    def exchange_shards(
        self, payload: Any, record: PhaseRecord | None = None
    ) -> list[Any]:
        """Synchronous all-gather inside an active run: every process
        contributes ``payload`` and receives the list indexed by shard.

        This is what the sharded sync collectives
        (``NodePropMap._sgr_reduce_sharded`` / ``_broadcast_sharded``)
        build on: the call rides the same arena slots, sequence counter,
        and fx/go tokens as :meth:`flush`, so replay determinism keeps the
        group aligned with no extra barrier. With ``record`` (a still-open
        phase), each worker also exports the record's full counter matrix
        and traffic rows and the coordinator folds them in - valid because
        each unit of the phase's work is charged by exactly one process
        and the record is exchanged exactly once per phase.
        """
        self._chaos_tick()
        slot = self._seq % 2
        self._seq += 1
        bundle: dict[str, Any] = {"payload": payload}
        out: list[Any] = [None] * len(self.shards)
        out[self.index] = payload
        assert self._bcast is not None
        if self.is_worker:
            if record is not None:
                bundle["counters"] = counters_to_rows(record.counters)
                bundle["net"] = np.array(
                    [
                        record.msgs_sent,
                        record.bytes_sent,
                        record.msgs_recv,
                        record.bytes_recv,
                    ],
                    dtype=np.int64,
                )
            arena = self._arenas[self.index - 1]
            via = arena.write(slot, bundle, seq=self._seq, check=self.integrity)
            self.bytes_exchanged += _via_size(via)
            _send_token(self.conn, "fx", self._seq, via)
            token = self._recv_token(self.conn, 0, None)
            if token[0] == "abort":
                raise _RunAborted()
            if token[0] != "go":  # pragma: no cover - protocol violation
                raise ProtocolDivergence(
                    f"expected go token, got {token[0]!r}", worker=self.index
                )
            vias = token[2]
            for index in range(len(self.shards)):
                if index == self.index:
                    continue
                if index == 0:
                    peer = self._read_peer(self._bcast, 0, vias[0], 0, self._seq)
                else:
                    peer = self._read_peer(
                        self._arenas[index - 1], slot, vias[index], index, self._seq
                    )
                out[index] = peer["payload"]
            return out
        vias = [None] * len(self.shards)
        for index, (process, conn) in enumerate(self.workers, start=1):
            token = self._recv_token(conn, index, process)
            if token[0] == "eor":
                self._eor_seen.add(index)
                raise self._worker_run_error(index, process, token[2])
            if token[0] != "fx" or token[1] != self._seq:
                self.dead = True
                raise ProtocolDivergence(
                    f"parallel worker {index} sent {token[0]!r} out of "
                    "phase; the processes diverged",
                    worker=index,
                    shard=self._shard_of(index),
                    phase=self._phase_label(),
                )
            vias[index] = token[2]
            self.bytes_exchanged += _via_size(token[2])
            if token[2][0] == "pipe":
                self.note_arena_shortfall(len(token[2][1]))
            peer = self._read_peer(
                self._arenas[index - 1], slot, token[2], index, self._seq
            )
            out[index] = peer["payload"]
            if record is not None:
                for host in range(self.num_hosts):
                    add_counter_row(record.counters[host], peer["counters"][host])
                rows = peer["net"]
                for host in range(self.num_hosts):
                    record.msgs_sent[host] += int(rows[0, host])
                    record.bytes_sent[host] += int(rows[1, host])
                    record.msgs_recv[host] += int(rows[2, host])
                    record.bytes_recv[host] += int(rows[3, host])
        vias[0] = self._bcast.write(
            0, {"payload": payload}, seq=self._seq, check=self.integrity
        )
        self.bytes_exchanged += _via_size(vias[0])
        if vias[0][0] == "pipe":
            self.note_arena_shortfall(len(vias[0][1]))
        for index, (process, conn) in enumerate(self.workers, start=1):
            self._send_to_worker(index, process, conn, "go", self._seq, vias)
        return out

    def _merge_worker_bundle(
        self, index: int, carriers, pending, bundle: dict
    ) -> None:
        """Fold one worker's aggregate into the coordinator's records, in
        worker order = host order, keeping the log byte-identical to the
        serial visit."""
        shard = self.shards[index]
        counters = bundle["counters"]
        net = bundle["net"]
        if len(counters) != len(pending):  # pragma: no cover - divergence
            self.dead = True
            raise ProtocolDivergence(
                f"parallel worker {index} aggregated {len(counters)} phases "
                f"against the coordinator's {len(pending)}; the processes "
                "diverged",
                worker=index,
                shard=self._shard_of(index),
                phase=self._phase_label(),
            )
        for p, (_, record) in enumerate(pending):
            for j, host in enumerate(shard):
                add_counter_row(record.counters[host], counters[p, j])
            rows = net[p]
            for host in range(self.num_hosts):
                record.msgs_sent[host] += int(rows[0, host])
                record.bytes_sent[host] += int(rows[1, host])
                record.msgs_recv[host] += int(rows[2, host])
                record.bytes_recv[host] += int(rows[3, host])
        self._install_effects(carriers, shard, bundle)

    # -- epoch state -------------------------------------------------------

    def _export_epoch(self, plan: Plan) -> dict[str, Any]:
        """Everything the plan's carriers hold, snapshotted for workers:
        between runs only the coordinator executes driver code (mirror
        pinning, value resets, reducer syncs), so a warm run starts by
        replacing worker state wholesale."""
        table = self._names[id(plan)]
        blob: dict[str, Any] = {}
        for name in sorted(table):
            carrier = table[name]
            if hasattr(carrier, "export_epoch_state"):
                blob[name] = ("epoch", carrier.export_epoch_state())
            else:
                blob[name] = (
                    "fx",
                    [
                        carrier.export_compute_effects(host)
                        for host in range(self.num_hosts)
                    ],
                )
        return blob

    def _install_epoch(self, plan: Plan, blob: dict[str, Any]) -> None:
        table = self._names[id(plan)]
        for name, (kind, state) in blob.items():
            carrier = table[name]
            if kind == "epoch":
                carrier.install_epoch_state(state, self.resolve_op)
            else:
                for host, effects in enumerate(state):
                    carrier.install_compute_effects(host, effects, self.resolve_op)

    # -- worker-side run framing -------------------------------------------

    def start_run_worker(self, plan_key: int, run_seq: int, epoch_via) -> None:
        self._plan_key = plan_key
        self._run_seq = run_seq
        self._seq = 0
        self._pending = []
        self.active = True
        self.defer = self.executor.cluster.faults is None
        if epoch_via is not None:
            assert self._bcast is not None
            blob = self._read_peer(self._bcast, 0, epoch_via, 0, run_seq)
            self._install_epoch(self.registry[plan_key], blob)

    # -- tokens and failure surfacing --------------------------------------

    def _recv_token(self, conn, index: int, process) -> tuple:
        who = "the coordinator" if self.is_worker else f"worker {index}"
        if self._watch and not self.is_worker and process is not None:
            self._watch_peer(conn, index, process)
        try:
            token = pickle.loads(conn.recv_bytes())
        except EOFError:
            raise self._death_error(who, process, index) from None
        if token[0] == "err":
            self.dead = True
            raise ProtocolDivergence(
                f"parallel worker failed:\n{token[1]}",
                worker=index if not self.is_worker else None,
            )
        return token

    def _watch_peer(self, conn, index: int, process) -> None:
        """The supervisor's token wait: poll the pipe AND the worker's
        exit code instead of blocking, so a SIGKILLed worker surfaces as
        :class:`WorkerDied` within ~50ms (and a hung-but-alive worker as
        :class:`ExchangeTimeout`) rather than stalling the run. Only
        reached when healing or chaos is on; the fail-fast default keeps
        the plain blocking recv."""
        deadline = time.monotonic() + self.exchange_timeout
        while not conn.poll(0.05):
            if not process.is_alive():
                if conn.poll(0):
                    # The worker sent its token just before dying; drain
                    # it - the death will surface at the next wait.
                    return
                raise self._death_error(f"worker {index}", process, index)
            if time.monotonic() >= deadline:
                self.dead = True
                raise ExchangeTimeout(
                    f"parallel worker {index} (pid {process.pid}) sent "
                    f"nothing for {self.exchange_timeout:.0f}s; the worker "
                    "hung or the processes diverged",
                    worker=index,
                    shard=self._shard_of(index),
                    phase=self._phase_label(),
                )

    def _death_error(self, who: str, process, index: int | None = None):
        """A dead peer surfaces its exit code and signal, not just "pipe
        closed", as a typed (healable) :class:`WorkerDied`."""
        self.dead = True
        detail = ""
        if process is not None:
            process.join(timeout=2)
            code = process.exitcode
            if code is None:  # pragma: no cover - still running, hung pipe
                detail = "; the worker process is still alive (hung pipe)"
            elif code < 0:
                try:
                    name = _signal.Signals(-code).name
                except ValueError:  # pragma: no cover - unknown signal
                    name = f"signal {-code}"
                detail = f" (pid {process.pid}, killed by {name})"
            else:
                detail = f" (pid {process.pid}, exit code {code})"
        return WorkerDied(
            f"parallel execution lost {who} mid-phase (pipe closed{detail}); "
            "the processes diverged or the peer crashed",
            worker=index,
            shard=self._shard_of(index) if index is not None else None,
            phase=self._phase_label(),
        )

    def _worker_run_error(self, index: int, process, err) -> BaseException:
        kind, exc_blob, text = err
        if exc_blob is not None:
            try:
                exc = pickle.loads(exc_blob)
            except Exception:  # pragma: no cover - unpicklable exception
                exc = None
            if isinstance(exc, BaseException):
                # Deterministic replay errors (simulated OOM on a worker's
                # shard host, non-quiescence) re-raise as themselves so the
                # harness records the same structured outcome as jobs=1;
                # a worker-detected ArenaCorruption re-raises healable.
                return exc
        return ProtocolDivergence(
            f"parallel worker {index} (pid {process.pid}) failed "
            f"mid-run ({kind}):\n{text}",
            worker=index,
            shard=self._shard_of(index),
        )

    def note_arena_shortfall(self, nbytes: int) -> None:
        self._arena_bytes_needed = max(self._arena_bytes_needed, nbytes)

    # -- self-healing recovery ---------------------------------------------

    def _plan_carriers(self, plan: Plan) -> list[Any]:
        table = self._names[id(plan)]
        return [table[name] for name in sorted(table)]

    def snapshot_round(self, plan: Plan) -> RoundSnapshot:
        """Capture the coordinator's round-start state (taken once per
        guarded run, refreshed by the executor at each round boundary)."""
        snap = RoundSnapshot.capture(
            self.executor.cluster, self._plan_carriers(plan), plan
        )
        snap.seq = self._seq
        return snap

    def _restore_round(self, plan: Plan, snapshot: RoundSnapshot) -> None:
        snapshot.restore(
            self.executor.cluster, self._plan_carriers(plan), plan, self.resolve_op
        )
        self._pending = []
        self._seq = snapshot.seq

    def heal(self, err: BaseException, plan: Plan, snapshot: RoundSnapshot) -> None:
        """Recover from a healable failure mid-run: reap the whole group,
        roll the coordinator back to the round-start snapshot, reconfigure
        per policy, and re-fork - the replacements inherit the rolled-back
        state copy-on-write and resume the run at the same completed-round
        count. ``reshard`` drops one shard (the dead worker's hosts re-deal
        onto survivors); losing the last worker degrades the pool to the
        serial path, which IS the ``jobs=1`` oracle.
        """
        self.deaths_detected += 1
        self.note_diagnostic(f"heal ({self.policy})", err)
        self._heal_attempts += 1
        if self._heal_attempts > max(4, 2 * self.jobs):
            raise err
        self.dead = True
        self.shutdown()
        self._restore_round(plan, snapshot)
        if self.policy == "reshard":
            self.jobs = max(1, self.jobs - 1)
            self.reshards += 1
        else:
            self.reforks += 1
        self.shards = shard_hosts(self.num_hosts, self.jobs)
        self.index = 0
        self.shard = self.shards[0]
        self._eor_seen = set()
        if len(self.shards) < 2:
            # Degraded to one shard: finish this run (and all later ones)
            # on the serial path. active stays False.
            self.heals += 1
            return
        self._resume = (id(plan), self.executor.cluster.loop_rounds)
        try:
            self.fork_workers(plan)
        finally:
            self._resume = None
        self.active = True
        self.heals += 1

    # -- lifecycle: teardown -----------------------------------------------

    def shutdown(self) -> None:
        """Coordinator teardown: closing the pipes unblocks any worker
        still waiting in recv (it sees EOF and exits). After a failure the
        graceful window is ~2s before escalating to terminate; the old
        30-second join stall is gone.
        """
        workers, self.workers = self.workers, []
        for _, conn in workers:
            try:
                conn.close()
            except OSError:  # pragma: no cover - double close is benign
                pass
        grace = 2 if self.dead else 10
        for process, _ in workers:
            process.join(timeout=grace)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
                if process.is_alive():  # pragma: no cover - stuck child
                    process.kill()
                    process.join(timeout=2)
        self._destroy_segments()
        self.active = False

    def stats(self) -> dict[str, int]:
        return {
            "bytes_exchanged": int(self.bytes_exchanged),
            "segments_peak": int(self.segments_peak),
            "forks": int(self.forks),
            "warm_runs": int(self.warm_runs),
            "boundaries": int(self.boundaries_seen),
            "deaths_detected": int(self.deaths_detected),
            "heals": int(self.heals),
            "reforks": int(self.reforks),
            "reshards": int(self.reshards),
            "diagnostics": len(self.diagnostics),
        }


def create_pool(executor: "Executor", plan: Plan) -> HostShardPool | None:
    """Build (but do not fork) the pool, or None when parallelism cannot
    help right now: a single host, no fork on this platform, or no phase
    of this plan the metadata proves shardable (then the serial path is
    already optimal and correct; a later plan may still create the pool).
    """
    jobs = min(executor.jobs, executor.cluster.num_hosts)
    if jobs < 2 or not fork_available():
        return None
    pool = HostShardPool(executor, plan, jobs)
    # Effective shard count clamps to the host count: every shard owns at
    # least one host, so no worker ever idle-spins the protocol.
    assert all(pool.shards), "host shards must be non-empty"
    if not pool.has_shardable_phase(plan):
        return None
    return pool


def _pickle_or_none(exc: BaseException) -> bytes | None:
    try:
        blob = pickle.dumps(exc, pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)
    except Exception:
        return None
    return blob


def _worker_setup(pool: HostShardPool, index: int, pipes):
    """Post-fork endpoint switch: close foreign pipe ends and mutate the
    inherited pool object into the worker-``index`` endpoint."""
    conn = pipes[index - 1][1]
    for i, (parent_end, child_end) in enumerate(pipes):
        parent_end.close()
        if i != index - 1:
            child_end.close()
    pool.is_worker = True
    pool.index = index
    pool.shard = pool.shards[index]
    pool.conn = conn
    pool.workers = []
    pool.dead = False
    return conn


def _worker_drive(
    executor: "Executor",
    pool: HostShardPool,
    plan_key: int,
    resume_rounds: int | None = None,
):
    """Replay one run (or, on heal, the tail of one from round
    ``resume_rounds``); deterministic exceptions become the eor error
    triple instead of killing the worker."""
    err = None
    try:
        executor._drive(pool.registry[plan_key], resume_rounds=resume_rounds)
    except _RunAborted:
        err = ("aborted", None, "")
    except Exception as exc:
        err = (
            type(exc).__name__,
            _pickle_or_none(exc),
            traceback.format_exc()[-8000:],
        )
    finally:
        pool._pending = []
        pool.active = False
    return err


def _worker_loop(executor: "Executor", pool: HostShardPool, conn) -> int:
    """Park for ``run`` tokens, replay each named plan, repeat. Returns
    the worker's exit status (0 = clean EOF/shutdown)."""
    while True:
        try:
            token = pickle.loads(conn.recv_bytes())
        except EOFError:
            return 0
        kind = token[0]
        if kind == "shutdown":
            return 0
        if kind == "abort":
            # Stale abort from a run that already ended here.
            continue
        if kind != "run":  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected token {kind!r} between runs")
        _, plan_key, run_seq, epoch_via = token
        pool.start_run_worker(plan_key, run_seq, epoch_via)
        _send_token(conn, "ack", run_seq)
        err = _worker_drive(executor, pool, plan_key)
        try:
            _send_token(conn, "eor", run_seq, err)
        except OSError:  # pragma: no cover - coordinator gone
            return 1


def _worker_main(
    executor: "Executor", pool: HostShardPool, index: int, pipes
) -> None:
    """Worker entry, running in the forked child only.

    The child inherited the coordinator's entire state copy-on-write, so
    it waits for ``run`` tokens and replays the named plan with its pool
    endpoint switched to worker mode, then parks for the next run.
    Deterministic exceptions (non-quiescence, simulated OOM) replay here
    too; they are reported in the ``eor`` token and the worker stays
    warm - the next run's epoch blob resynchronizes its state.
    ``os._exit`` skips the inherited atexit/teardown machinery - this
    process must not flush the parent's buffers, unlink the parent's
    shared segments, or touch its resources on the way out.
    """
    status = 1
    conn = pipes[index - 1][1]
    try:
        conn = _worker_setup(pool, index, pipes)
        executor._pool = pool
        status = _worker_loop(executor, pool, conn)
    except BaseException:
        try:
            _send_token(conn, "err", traceback.format_exc()[-8000:])
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(status)


def _worker_resume_main(
    executor: "Executor",
    pool: HostShardPool,
    index: int,
    pipes,
    resume: tuple[int, int],
) -> None:
    """Worker entry for a heal-time re-fork: the child inherited the
    coordinator's *rolled-back* round-start state, so instead of parking
    it immediately rejoins the interrupted run at the same completed-round
    count, sends its ``eor``, then parks like any warm worker."""
    status = 1
    conn = pipes[index - 1][1]
    try:
        conn = _worker_setup(pool, index, pipes)
        executor._pool = pool
        plan_key, resume_rounds = resume
        pool.active = True
        err = _worker_drive(executor, pool, plan_key, resume_rounds=resume_rounds)
        _send_token(conn, "eor", pool._run_seq, err)
        status = _worker_loop(executor, pool, conn)
    except BaseException:
        try:
            _send_token(conn, "err", traceback.format_exc()[-8000:])
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(status)


__all__ = [
    "ArenaCorruption",
    "ArenaIntegrityError",
    "ExchangeTimeout",
    "HEALABLE_ERRORS",
    "HostShardPool",
    "POOL_SEGMENT_PREFIX",
    "PoolError",
    "ProtocolDivergence",
    "WorkerDied",
    "create_pool",
    "fork_available",
    "shard_hosts",
]
