"""Plan-to-kernel code generation: the compiled per-round execution path.

Given a :class:`~repro.exec.plan.Plan` and a concrete ``(cluster,
backend)`` binding, :func:`compile_plan` lowers the plan's step walk into
a :class:`CompiledPlan` - a flat list of prebound entries the executor
replays each round with no per-round ``isinstance`` dispatch, no per-round
kernel-closure construction, and (on the bulk backend) *specialized*
kernels whose static inputs are assembled exactly once:

* **Dispatch caching** - every step's backend decision (``par_for`` vs
  ``par_for_bulk``, scalar vs bulk kernel body, reset/host callables) is
  made at compile time, once per ``(plan, executor)`` binding.
* **Specialization** - a statically analyzable bulk kernel (an
  :class:`~repro.exec.plan.EdgePush` with no activity/value/edge filter, a
  :class:`~repro.exec.plan.NodeUpdate`, a
  :class:`~repro.exec.plan.DegreeReduce`) is compiled per host into a
  straight-line numpy runner over *preassembled* CSR slices: the degree
  filter, edge expansion (``source_pos``/``edge_ids``), thread dealing,
  destination gather, weights, and constant pushes are computed once and
  frozen; each round only reads the live property values, applies the
  baked transform, and reduces. Charge constants (``charge_per_source *
  |sel|``, ``charge_per_edge * |edges|``, thread boundaries) are baked at
  generation time. The per-round work drops from the full O(E) expansion
  pipeline to one gather + one reduce.
* **Frontier specialization** - an EdgePush whose dynamic parts are
  *declarative filter specs* (an activity map, a
  :class:`~repro.exec.plan.CmpFilter` value filter, a
  :class:`~repro.exec.plan.DstCmpFilter` edge filter) compiles into a
  :class:`PreparedFrontierPush`: the same frozen static decomposition,
  plus a per-round frontier gather intersected with the frozen CSR
  expansion through a density-switched dense-mask / sparse-gather path
  (``FRONTIER_DENSE_SWITCH``), with the filters compiled to numpy masks
  instead of per-node Python calls. Opaque callable filters keep the
  kernel interpreted (the legal fallback).
* **Fusion** - maximal runs of *adjacent* specialized operator steps with
  compatible reads/writes metadata (no later step reads a map an earlier
  step writes; no key-value-store carriers) fuse into one
  :class:`FusedGroup` that executes all constituents per host in a single
  pass. Every constituent keeps its own :class:`PhaseRecord` (opened
  up-front in step order via :meth:`Cluster.fused_phases`), so counters,
  traffic, modeled seconds, and trace rows stay byte-identical to the
  unfused walk; the records carry the group's labels in
  ``PhaseRecord.fused`` so profiles remain interpretable.

The byte-identity contract is the same one the bulk backend honors
against the scalar oracle: a compiled run's ``RunResult.to_dict()`` -
counters, conflicts, modeled seconds, trace rows - matches the
interpreted bulk path exactly (``tests/test_codegen_equivalence.py``).
Composition rules mirror the ``jobs=N`` pool gating (PR 6): fusion is
disabled when a fault injector is installed (its ``on_phase_start`` hook
needs the serial per-phase cadence) or when a memory limit is set (an OOM
can surface on a different host under the fused per-host interleave);
specialization alone stays on everywhere because it preserves the exact
per-host event sequence.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.reducers import SUM
from repro.exec.plan import (
    CmpFilter,
    DegreeReduce,
    DstCmpFilter,
    EdgePush,
    HostStep,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ResetStep,
    ScalarKernel,
    SyncStep,
    apply_value_filter,
)
from repro.runtime.engine import _iteration_set, par_for, par_for_bulk

# Direction-optimization-style density switch for compiled frontier
# pushes: with fewer than 1/FRONTIER_DENSE_SWITCH of a host's candidate
# sources surviving the filters, the per-source sparse gather beats
# masking the full precomputed expansion; at or above it, the dense mask
# (one boolean repeat over the frozen CSR expansion) wins. Both paths
# produce identical index arrays, so the switch is unobservable in the
# byte-identity contract - the chosen path is recorded per host in the
# phase trace (``PhaseRecord.frontier``).
FRONTIER_DENSE_SWITCH = 4

# Rounds a reduce-fold plan's path must qualify before the plan is built.
# Building a plan costs one stable sort (or unique) over the host's full
# frozen expansion - profitable only when many later rounds replay it.
# Short runs (power-law SSSP converges in a handful of rounds) never
# reach the threshold and keep the generic per-round fold; long frontier
# runs (road SSSP/BFS, hundreds of rounds) cross it early and amortize
# the build many times over. Purely a scheduling choice: every route
# folds byte-identically, so the switch is unobservable in results.
FOLD_PLAN_WARMUP = 4

# Compiled-entry tags (repro.exec.executor.run_round's closed dispatch set):
# a compute phase, a fused compute group, a sync collective, and a prebound
# zero-argument callable (reset / host steps).
ENTRY_OPERATOR = 0
ENTRY_FUSED = 1
ENTRY_SYNC = 2
ENTRY_EXEC = 3


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark a precomputed array immutable: specialized kernels hand the
    same array objects to ``reduce_bulk`` every round, so accidental
    in-place mutation downstream must fail loudly, not corrupt a run."""
    array.flags.writeable = False
    return array


# ------------------------------------------------------- specialized kernels


class _SpecializedKernel:
    """A bulk kernel compiled per host on first visit, then replayed.

    Subclasses build one zero-argument runner closure per host over the
    host's static arrays; ``run_host`` is called inside an open phase with
    ``node_iters`` already charged (by :func:`run_hosted` or a
    :class:`FusedGroup`), exactly like an interpreted bulk body.
    """

    def __init__(self, kernel: Any, space: str) -> None:
        self.kernel = kernel
        self.space = space
        self._runners: dict[int, Callable[[], None]] = {}

    def run_host(self, cluster: Cluster, part: Any, host: int) -> None:
        runner = self._runners.get(host)
        if runner is None:
            runner = self._build(cluster, part, host)
            self._runners[host] = runner
        runner()

    def _build(self, cluster: Cluster, part: Any, host: int):
        raise NotImplementedError


def _noop() -> None:
    return None


class SpecializedEdgePush(_SpecializedKernel):
    """A filter-free EdgePush with its whole static pipeline preassembled.

    Mirrors ``Executor._edge_push_bulk`` aggregate-for-aggregate: the
    degree selection, per-source/per-edge charges, ``edge_iters`` total,
    thread dealing, destination gather, and weight vector are a pure
    function of the partition, so they are computed once; per round only
    the source read, the transform, and the value gather + reduce run.
    """

    def _build(self, cluster: Cluster, part: Any, host: int):
        k = self.kernel
        total = len(_iteration_set(part, self.space))
        indptr = part.indptr
        local_ids = np.arange(total, dtype=np.int64)
        degrees = indptr[local_ids + 1] - indptr[local_ids]
        if k.skip_zero_degree:
            sel = np.flatnonzero(degrees > 0)
            if sel.size == 0:
                return _noop
        else:
            sel = local_ids
        if sel.size == 0:
            return _noop
        charge_src = int(k.charge_per_source * sel.size)
        node_sel = _freeze(part.local_to_global[sel])
        # The edge expansion of BulkOperatorContext.expand_edges, computed
        # once; its edge_iters charge is baked as ``edge_total``.
        starts = indptr[sel]
        counts = indptr[sel + 1] - starts
        edge_total = int(counts.sum())
        charge_edge = int(k.charge_per_edge * edge_total)
        if edge_total:
            source_pos = np.repeat(np.arange(sel.size, dtype=np.int64), counts)
            offsets = np.cumsum(counts) - counts
            edge_ids = (
                np.arange(edge_total, dtype=np.int64)
                - np.repeat(offsets, counts)
                + np.repeat(starts, counts)
            )
            threads_sel = _freeze(cluster.threads_of(total)[sel][source_pos])
            dst = _freeze(part.local_to_global[part.indices[edge_ids]])
            source_pos = _freeze(source_pos)
            prepared = k.target.prepare_reduce_bulk(host, threads_sel, dst)
        else:
            source_pos = threads_sel = dst = prepared = None
        weights = None
        if k.with_weight == "add" and edge_total:
            if k.unit_weights or part.weights is None:
                weights = np.ones(edge_total, dtype=np.float64)
            else:
                weights = part.weights[edge_ids]
            weights = _freeze(np.asarray(weights))
        const_pushes = None
        if k.const_value is not None and edge_total:
            const_pushes = np.full(edge_total, k.const_value)
            if weights is not None:
                const_pushes = const_pushes + weights
            const_pushes = _freeze(const_pushes)
        sel = _freeze(sel)
        source, target, op, transform = k.source, k.target, k.op, k.transform

        def run() -> None:
            counters = cluster.counters(host)
            if charge_src:
                counters.local_ops += charge_src
            values = None
            if source is not None:
                values = source.read_local_bulk(host, sel)
                if transform is not None:
                    values = np.asarray(transform(values, node_sel))
            counters.edge_iters += edge_total
            if charge_edge:
                counters.local_ops += charge_edge
            if edge_total == 0:
                return
            if const_pushes is not None:
                pushes = const_pushes
            else:
                pushes = values[source_pos]
                if weights is not None:
                    pushes = pushes + weights
            if prepared is not None:
                target.reduce_bulk_prepared(host, prepared, pushes, op)
            else:
                target.reduce_bulk(host, threads_sel, dst, pushes, op)

        return run


class PreparedFrontierPush(_SpecializedKernel):
    """A frontier/filtered EdgePush with the static decomposition frozen
    and the per-round filters compiled to numpy masks.

    The partition-derived pipeline - degree selection, CSR expansion
    (``source_pos``/destinations/threads/weights), charge constants - is
    exactly :class:`SpecializedEdgePush`'s and is computed once per host.
    What cannot be frozen is the *selection*: the active set changes
    every round, and declarative value/edge filters
    (:class:`~repro.exec.plan.CmpFilter`,
    :class:`~repro.exec.plan.DstCmpFilter`) depend on live values. Each
    round the kernel gathers the frontier once (``np.flatnonzero`` over
    the map's cached activity-mask snapshot), shrinks it with the
    compiled value mask, and intersects the surviving sources with the
    frozen expansion through one of two paths chosen by frontier
    density (``FRONTIER_DENSE_SWITCH``):

    * **dense** - scatter the surviving sources into a boolean mask over
      the candidate list, ``np.repeat`` it across the frozen expansion,
      and ``np.flatnonzero``: O(candidate edges), no per-source work.
    * **sparse** - rebuild edge indices for just the surviving sources
      from the frozen per-source offsets: O(frontier edges).

    Both produce the same ascending index array into the frozen
    expansion, so counters, read/reduce accounting, and folded values
    stay byte-identical to ``Executor._edge_push_bulk`` (the interpreted
    reference) whichever path runs; the choice is recorded per host in
    ``PhaseRecord.frontier`` for trace inspection.
    """

    def _build(self, cluster: Cluster, part: Any, host: int):
        k = self.kernel
        total = len(_iteration_set(part, self.space))
        indptr = part.indptr
        local_ids = np.arange(total, dtype=np.int64)
        degrees = indptr[local_ids + 1] - indptr[local_ids]
        sel = np.flatnonzero(degrees > 0) if k.skip_zero_degree else local_ids
        if sel.size == 0:
            return _noop
        charge_src = int(k.charge_per_source * sel.size)
        node_sel = _freeze(part.local_to_global[sel])
        starts = indptr[sel]
        counts = indptr[sel + 1] - starts
        edge_total = int(counts.sum())
        # The full expansion over every candidate source, frozen; rounds
        # index into it instead of re-deriving it. (All arrays may be
        # empty when skip_zero_degree=False leaves only 0-degree nodes.)
        source_pos_full = np.repeat(np.arange(sel.size, dtype=np.int64), counts)
        offsets = _freeze(np.cumsum(counts) - counts)
        edge_ids_full = (
            np.arange(edge_total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        threads_full = _freeze(cluster.threads_of(total)[sel][source_pos_full])
        dst_full = _freeze(part.local_to_global[part.indices[edge_ids_full]])
        src_full = (
            _freeze(node_sel[source_pos_full]) if k.edge_filter is not None else None
        )
        weights_full = None
        if k.with_weight == "add":
            if k.unit_weights or part.weights is None:
                weights_full = np.ones(edge_total, dtype=np.float64)
            else:
                weights_full = np.asarray(part.weights[edge_ids_full])
            weights_full = _freeze(weights_full)
        const_full = None
        if k.const_value is not None:
            const_full = _freeze(np.full(edge_total, k.const_value))
        counts = _freeze(counts)
        all_pos = _freeze(np.arange(sel.size, dtype=np.int64))
        all_edges = _freeze(np.arange(edge_total, dtype=np.int64))
        source_pos_full = _freeze(source_pos_full)
        sel = _freeze(sel)
        num_candidates = sel.size
        require_active = k.require_active
        source, target, op = k.source, k.target, k.op
        # Reduce-fold plans over the frozen expansion: the full-batch plan
        # serves full-frontier rounds outright; the subset plan folds any
        # ascending subset without the per-round composite sort. Both are
        # None for strategies with no prepared path (generic reduce_bulk
        # then runs, still byte-identical) and built lazily only after
        # ``FOLD_PLAN_WARMUP`` qualifying rounds, so sparse-frontier and
        # short runs never pay the one-time sort of the full expansion.
        fold_plans: dict[str, Any] = {}
        fold_qualified: dict[str, int] = {"full": 0, "subset": 0}

        def fold_plan(kind: str) -> Any:
            if kind in fold_plans:
                return fold_plans[kind]
            fold_qualified[kind] += 1
            if fold_qualified[kind] <= FOLD_PLAN_WARMUP:
                return None
            prepare = (
                k.target.prepare_reduce_bulk
                if kind == "full"
                else k.target.prepare_reduce_bulk_subsets
            )
            fold_plans[kind] = prepare(host, threads_full, dst_full)
            return fold_plans[kind]
        value_filter, transform, edge_filter = (
            k.value_filter,
            k.transform,
            k.edge_filter,
        )
        charge_per_edge = k.charge_per_edge

        def mark(path: str) -> None:
            record = cluster._current
            if record is not None:
                if record.frontier is None:
                    record.frontier = {}
                record.frontier[host] = path

        def run() -> None:
            counters = cluster.counters(host)
            if charge_src:
                counters.local_ops += charge_src
            # Frontier gather: one uncharged activity probe over the
            # frozen candidate list (the map caches the round's mask).
            sel_pos = all_pos
            if require_active is not None:
                keep = require_active.is_active_bulk(host, node_sel)
                sel_pos = np.flatnonzero(keep)
                if sel_pos.size == 0:
                    mark("empty")
                    return
            values = None
            if source is not None:
                values = source.read_local_bulk(host, sel[sel_pos])
                if value_filter is not None:
                    keep_v = np.asarray(
                        apply_value_filter(value_filter, values, node_sel[sel_pos])
                    )
                    sel_pos = sel_pos[keep_v]
                    values = values[keep_v]
                    if sel_pos.size == 0:
                        mark("empty")
                        return
                if transform is not None:
                    values = np.asarray(transform(values, node_sel[sel_pos]))
            counts_k = counts[sel_pos]
            n_edges = int(counts_k.sum())
            counters.edge_iters += n_edges
            if charge_per_edge:
                counters.local_ops += charge_per_edge * n_edges
            if n_edges == 0:
                mark("empty")
                return
            # Intersect the frontier with the frozen expansion; all
            # paths yield the same ascending index array into it.
            if sel_pos.size == num_candidates:
                path = "dense"
                idx = all_edges
                source_pos = source_pos_full
            elif sel_pos.size * FRONTIER_DENSE_SWITCH >= num_candidates:
                path = "dense"
                keep_sources = np.zeros(num_candidates, dtype=bool)
                keep_sources[sel_pos] = True
                idx = np.flatnonzero(np.repeat(keep_sources, counts))
                source_pos = None
            else:
                path = "sparse"
                starts_k = offsets[sel_pos]
                idx = (
                    np.arange(n_edges, dtype=np.int64)
                    - np.repeat(np.cumsum(counts_k) - counts_k, counts_k)
                    + np.repeat(starts_k, counts_k)
                )
                source_pos = None
            if const_full is not None:
                pushes = const_full[idx]
            else:
                if source_pos is None:
                    source_pos = np.repeat(
                        np.arange(sel_pos.size, dtype=np.int64), counts_k
                    )
                pushes = values[source_pos]
            if edge_filter is not None:
                keep_e = np.asarray(edge_filter(src_full[idx], dst_full[idx]))
                if not np.all(keep_e):
                    pushes = pushes[keep_e]
                    idx = idx[keep_e]
                    if idx.size == 0:
                        mark(path)
                        return
            if weights_full is not None:
                pushes = pushes + weights_full[idx]
            # Reduce-path switch (same contract as the gather's): every
            # route folds byte-identically, so the cheapest one runs.
            # Full rounds replay the fully-static fold plan; every other
            # round folds through the subset plan's precomputed ranks -
            # O(frontier log frontier), no composite rebuild. Warmup
            # rounds (and strategies with no prepared path) take the
            # generic fold below.
            if idx.size == edge_total:
                plan = ("full", fold_plan("full"))
            else:
                plan = ("subset", fold_plan("subset"))
            if plan is None or plan[1] is None:
                target.reduce_bulk(
                    host, threads_full[idx], dst_full[idx], pushes, op
                )
            elif plan[0] == "full":
                target.reduce_bulk_prepared(host, plan[1], pushes, op)
            else:
                target.reduce_bulk_subset(host, plan[1], idx, pushes, op)
            mark(path)

        return run


class SpecializedNodeUpdate(_SpecializedKernel):
    """A NodeUpdate with node ids, thread dealing, and the per-node charge
    baked; per round only the value callable and the reduce run."""

    def _build(self, cluster: Cluster, part: Any, host: int):
        k = self.kernel
        total = len(_iteration_set(part, self.space))
        charge_node = int(k.charge_per_node * total)
        if total == 0:
            return _noop
        node_ids = part.local_to_global[:total]
        threads = cluster.threads_of(total)
        value, target, op = k.value, k.target, k.op
        prepared = target.prepare_reduce_bulk(host, threads, node_ids)

        def run() -> None:
            if charge_node:
                cluster.counters(host).local_ops += charge_node
            values = np.asarray(value(node_ids))
            if prepared is not None:
                target.reduce_bulk_prepared(host, prepared, values, op)
            else:
                target.reduce_bulk(host, threads, node_ids, values, op)

        return run


class SpecializedDegreeReduce(_SpecializedKernel):
    """A DegreeReduce is fully static: degrees never change, so the whole
    selection and value vector is precomputed and only the reduce runs."""

    def _build(self, cluster: Cluster, part: Any, host: int):
        k = self.kernel
        total = len(_iteration_set(part, self.space))
        local_ids = np.arange(total, dtype=np.int64)
        indptr = part.indptr
        degs = indptr[local_ids + 1] - indptr[local_ids]
        sel = np.flatnonzero(degs > 0)
        if sel.size == 0:
            return _noop
        threads_sel = _freeze(cluster.threads_of(total)[sel])
        node_sel = _freeze(part.local_to_global[sel])
        degs_sel = _freeze(degs[sel])
        target = k.target
        prepared = target.prepare_reduce_bulk(host, threads_sel, node_sel)

        def run() -> None:
            if prepared is not None:
                target.reduce_bulk_prepared(host, prepared, degs_sel, SUM)
            else:
                target.reduce_bulk(host, threads_sel, node_sel, degs_sel, SUM)

        return run


def run_hosted(
    cluster: Cluster,
    pgraph: Any,
    mode: str,
    body: _SpecializedKernel,
    kind: Any,
    label: str = "",
    hosts: Any | None = None,
) -> None:
    """The specialized-kernel driver: ``par_for_bulk``'s phase/accounting
    shell without the per-round context construction. Signature-compatible
    with the pool's ``run_sharded`` driver slot (``hosts`` restricts the
    visit to a shard)."""
    operator = label or type(body).__name__
    with cluster.phase(kind, label=label, operator=operator):
        for host in range(cluster.num_hosts) if hosts is None else hosts:
            part = pgraph.parts[host]
            total = len(_iteration_set(part, mode))
            cluster.counters(host).node_iters += total
            body.run_host(cluster, part, host)


# ----------------------------------------------------------- compiled steps


class CompiledOperator:
    """One compute phase with its backend dispatch decided at compile time:
    the driver (``par_for`` / ``par_for_bulk`` / :func:`run_hosted`) and
    the bound kernel body, reused every round."""

    __slots__ = ("operator", "driver", "body", "specialized")

    def __init__(self, operator: Operator, driver, body, specialized: bool) -> None:
        self.operator = operator
        self.driver = driver
        self.body = body
        self.specialized = specialized


class FusedGroup:
    """Adjacent specialized compute phases generated into one kernel.

    Executes all constituents per host in a single pass. Each constituent
    keeps its own phase record (opened up-front in step order), so the
    metrics log is byte-identical to the unfused walk: per-host work is
    independent inside a BSP phase, reductions are per-host state, and no
    constituent reads a map another constituent writes (the fusion
    compatibility rule), so the per-host interleave is unobservable.

    Under ``jobs=N`` the group runs over the local host shard when *every*
    constituent is shardable (the records then queue into the pool's
    pending exchange in step order, see ``HostShardPool.defer_fused``);
    otherwise the whole group runs replicated after a flush, mirroring the
    single-operator fallback.
    """

    __slots__ = ("ops", "labels", "specs")

    def __init__(self, ops: list[CompiledOperator]) -> None:
        self.ops = ops
        self.labels = tuple(c.operator.label for c in ops)
        self.specs = tuple(
            (c.operator.kind, c.operator.label) for c in ops
        )

    def run(self, executor, pgraph) -> None:
        cluster = executor.cluster
        pool = executor._pool
        sharded = False
        hosts = range(cluster.num_hosts)
        if pool is not None and pool.active:
            if all(pool.shardable(c.operator) for c in self.ops):
                sharded = True
                hosts = pool.shard
            else:
                pool.flush()
        with cluster.fused_phases(self.specs, fused=self.labels) as records:
            for host in hosts:
                part = pgraph.parts[host]
                for compiled, record in zip(self.ops, records):
                    cluster.activate_phase(record)
                    total = len(_iteration_set(part, compiled.operator.space))
                    record.counters[host].node_iters += total
                    compiled.body.run_host(cluster, part, host)
        if sharded:
            pool.defer_fused([c.operator for c in self.ops], records)


class CompiledPlan:
    """A plan lowered to a flat entry list the executor replays per round."""

    __slots__ = ("plan", "entries", "fused_groups")

    def __init__(self, plan: Plan, entries: list[tuple]) -> None:
        self.plan = plan
        self.entries = entries
        self.fused_groups = [
            entry[1] for entry in entries if entry[0] == ENTRY_FUSED
        ]


# ----------------------------------------------------------------- compiler


def _static_push(kernel: EdgePush) -> bool:
    """Fully static: the push's whole control flow is a pure function of
    the partition (no activity/value/edge filters at all)."""
    return (
        kernel.require_active is None
        and kernel.value_filter is None
        and kernel.edge_filter is None
    )


def _declarative_filters(kernel: EdgePush) -> bool:
    """Every filter the push carries is a declarative spec the generator
    can compile to a numpy mask (activity maps always qualify; opaque
    callables never do - they keep the kernel interpreted)."""
    vf, ef = kernel.value_filter, kernel.edge_filter
    return (vf is None or isinstance(vf, CmpFilter)) and (
        ef is None or isinstance(ef, DstCmpFilter)
    )


def _specializable(kernel: Any) -> bool:
    """Static analyzability: either the kernel's whole control flow is a
    pure function of the partition, or its dynamic parts are declarative
    filter specs the generator compiles to masks
    (:class:`PreparedFrontierPush`)."""
    if isinstance(kernel, EdgePush):
        return _static_push(kernel) or _declarative_filters(kernel)
    return isinstance(kernel, (NodeUpdate, DegreeReduce))


def _kernel_carriers(kernel: Any) -> list[Any]:
    carriers = [kernel.target]
    for name in ("source", "require_active"):
        extra = getattr(kernel, name, None)
        if extra is not None:
            carriers.append(extra)
    return carriers


def _fusable(operator: Operator) -> bool:
    """Fusion eligibility: specialized forms only, and never a map backed
    by the key-value store - KvCas reductions apply immediately against
    shared server shards whose contention draws depend on the cross-host
    execution order fusion changes."""
    kernel = operator.kernel
    if not _specializable(kernel):
        return False
    return not any(
        getattr(c, "variant", None) is not None and c.variant.uses_kvstore
        for c in _kernel_carriers(kernel)
    )


def _rw_compatible(group: list[Operator], nxt: Operator) -> bool:
    """``nxt`` may join ``group`` iff it reads nothing any member writes:
    pending reductions are invisible until sync anyway, but the metadata
    check keeps fusion decisions explainable from the plan alone."""
    reads = set(nxt.kernel.reads())
    for member in group:
        if any(name in reads for name, _ in member.kernel.writes()):
            return False
    return True


def fusion_enabled(executor) -> bool:
    """Fusion gating, mirroring the PR 6 pool pattern: the fault injector
    needs its per-phase serial cadence, and a memory limit could surface
    an OOM on a different host under the fused interleave."""
    return (
        executor.bulk
        and executor.codegen
        and executor.cluster.faults is None
        and executor.cluster.memory_limit_slots is None
    )


_SPECIALIZED_FORMS = {
    EdgePush: SpecializedEdgePush,
    NodeUpdate: SpecializedNodeUpdate,
    DegreeReduce: SpecializedDegreeReduce,
}


def _compile_operator(executor, operator: Operator) -> CompiledOperator:
    kernel = operator.kernel
    if isinstance(kernel, ScalarKernel):
        # Reference-loop semantics on both backends (executor module doc).
        return CompiledOperator(operator, par_for, kernel.body, False)
    if executor.bulk and executor.codegen and _specializable(kernel):
        if isinstance(kernel, EdgePush) and not _static_push(kernel):
            body: _SpecializedKernel = PreparedFrontierPush(kernel, operator.space)
        else:
            body = _SPECIALIZED_FORMS[type(kernel)](kernel, operator.space)
        return CompiledOperator(operator, run_hosted, body, True)
    if isinstance(kernel, EdgePush):
        body = (
            executor._edge_push_bulk(kernel)
            if executor.bulk
            else executor._edge_push_scalar(kernel)
        )
    elif isinstance(kernel, NodeUpdate):
        body = (
            executor._node_update_bulk(kernel)
            if executor.bulk
            else executor._node_update_scalar(kernel)
        )
    elif isinstance(kernel, DegreeReduce):
        body = (
            executor._degree_reduce_bulk(kernel)
            if executor.bulk
            else executor._degree_reduce_scalar(kernel)
        )
    else:  # pragma: no cover - the kernel union is closed
        raise TypeError(f"unknown kernel form {kernel!r}")
    return CompiledOperator(
        operator, par_for_bulk if executor.bulk else par_for, body, False
    )


def _compile_reset(executor, step: ResetStep) -> Callable[[], None]:
    if step.elementwise:
        return lambda: step.map.reset_values(step.values)
    if executor.bulk:
        bulk_values = lambda nodes: np.asarray(step.values(nodes))  # noqa: E731
        return lambda: step.map.reset_values_bulk(bulk_values)
    from repro.exec.executor import _elementwise

    elementwise = _elementwise(step.values)
    return lambda: step.map.reset_values(elementwise)


def compile_plan(executor, plan: Plan) -> CompiledPlan:
    """Lower one plan for one executor binding into a :class:`CompiledPlan`."""
    fuse = fusion_enabled(executor)
    entries: list[tuple] = []
    steps = list(plan.steps)
    index = 0
    while index < len(steps):
        step = steps[index]
        if isinstance(step, OperatorStep):
            group = [step.operator]
            end = index + 1
            if fuse and _fusable(step.operator):
                while (
                    end < len(steps)
                    and isinstance(steps[end], OperatorStep)
                    and _fusable(steps[end].operator)
                    and _rw_compatible(group, steps[end].operator)
                ):
                    group.append(steps[end].operator)
                    end += 1
            compiled = [_compile_operator(executor, op) for op in group]
            if len(compiled) > 1:
                entries.append((ENTRY_FUSED, FusedGroup(compiled)))
            else:
                entries.append((ENTRY_OPERATOR, compiled[0]))
            index = end
            continue
        if isinstance(step, SyncStep):
            entries.append((ENTRY_SYNC, step))
        elif isinstance(step, ResetStep):
            entries.append((ENTRY_EXEC, _compile_reset(executor, step)))
        elif isinstance(step, HostStep):
            entries.append((ENTRY_EXEC, step.fn))
        else:  # pragma: no cover - the step union is closed
            raise TypeError(f"unknown plan step {step!r}")
        index += 1
    return CompiledPlan(plan, entries)


__all__ = [
    "ENTRY_OPERATOR",
    "ENTRY_FUSED",
    "ENTRY_SYNC",
    "ENTRY_EXEC",
    "FRONTIER_DENSE_SWITCH",
    "CompiledOperator",
    "CompiledPlan",
    "FusedGroup",
    "PreparedFrontierPush",
    "SpecializedDegreeReduce",
    "SpecializedEdgePush",
    "SpecializedNodeUpdate",
    "compile_plan",
    "fusion_enabled",
    "run_hosted",
]
