"""Operator plans: the declarative algorithm specification layer.

A plan describes one BSP round of an algorithm as data - a sequence of
steps (operators, sync collectives, map resets, host-side scalar code)
plus the loop/convergence driver - so a single
:class:`repro.exec.executor.Executor` can run it on either the scalar
reference backend (``par_for``) or the vectorized bulk backend
(``par_for_bulk`` + ``reduce_bulk``) with byte-identical metrics.

Operator bodies come in four *kernel forms*:

* :class:`EdgePush` - the adjacent-vertex push: each active source sends
  a value along its out-edges into a target map under a reducer. This is
  the fully declarative form (the executor owns both the scalar loop and
  the vectorized interpretation).
* :class:`NodeUpdate` - a per-node recompute reduced onto the node itself
  (e.g. PageRank's rebuild).
* :class:`DegreeReduce` - the shared warm-up that SUM-reduces each host's
  local out-degree share onto the node (PR / MIS global degrees).
* :class:`ScalarKernel` - an opaque per-node body with declared
  reads/writes metadata. Both backends execute it as the same scalar
  reference loop (like the MC runtime variant, which degrades to the
  scalar path by design), so byte-identity is structural; only kernels
  worth vectorizing need one of the array forms above.
"""

from __future__ import annotations

import math
import operator as _operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence, Union

import numpy as np

from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM, ReduceOp
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import OperatorContext

PLAN_SCHEMA = "repro-exec-plan/v1.2"


# ------------------------------------------------------------- filter specs
#
# Declarative predicates for EdgePush. A plain callable remains a legal
# value/edge filter, but it is opaque: the plan cannot serialize it
# (``repro plan --json`` reports a refusal) and the code generator cannot
# specialize the kernel around it (the push runs interpreted). The spec
# forms below are data - an operator name plus operands - so they
# serialize under schema v1.2 and compile to numpy masks
# (repro.exec.codegen.PreparedFrontierPush). Each spec is itself callable
# with the legacy filter signature, so the scalar oracle, the interpreted
# bulk backend, and the async engine run the exact same predicate without
# knowing it is declarative.

_CMP_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "eq": _operator.eq,
    "ne": _operator.ne,
    "lt": _operator.lt,
    "le": _operator.le,
    "gt": _operator.gt,
    "ge": _operator.ge,
}


def _const_json(value: Any) -> Any:
    """A filter constant in JSON-portable form (inf/nan become strings)."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


def _array_json(array: Any) -> dict:
    """Shape-level description of a per-node operand array (the values
    themselves are graph-sized; the plan records provenance, not data)."""
    arr = np.asarray(array)
    return {"len": int(arr.shape[0]), "dtype": str(arr.dtype)}


@dataclass(frozen=True)
class ActiveFilter:
    """Declarative activity filter: keep sources whose ``map`` copy
    changed last round (the data-driven frontier). ``EdgePush``
    normalizes this to its ``require_active`` map, so downstream layers
    (reads metadata, pool carriers, both interpreters) see the map they
    always did; declaring the spec documents intent and keeps algorithm
    code fully declarative."""

    map: NodePropMap

    def summary(self) -> dict:
        return {"kind": "active", "map": self.map.name}


@dataclass(frozen=True)
class CmpFilter:
    """Declarative value filter: ``values OP const`` or, with ``other``
    (an array indexed by global node id), ``values OP other[nodes]``.

    Callable with the legacy ``value_filter(values)`` signature (numpy
    semantics, scalars included); the ``other`` form needs the node ids,
    which both interpreters provide via :func:`apply_value_filter`.
    """

    op: str
    const: Any = None
    other: Any = None  # per-node operand array (global node id indexed)

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(
                f"unknown comparison {self.op!r}; use one of {sorted(_CMP_OPS)}"
            )
        if (self.const is None) == (self.other is None):
            raise ValueError("CmpFilter takes exactly one of const= or other=")

    @property
    def needs_nodes(self) -> bool:
        return self.other is not None

    def __call__(self, values: Any, nodes: Any = None) -> Any:
        if self.other is not None:
            if nodes is None:
                raise TypeError(
                    "CmpFilter(other=...) needs the node ids; call via "
                    "apply_value_filter"
                )
            return _CMP_OPS[self.op](values, self.other[nodes])
        return _CMP_OPS[self.op](values, self.const)

    def summary(self) -> dict:
        out: dict = {"kind": "cmp", "op": self.op}
        if self.other is not None:
            out["other"] = _array_json(self.other)
        else:
            out["const"] = _const_json(self.const)
        return out


@dataclass(frozen=True)
class DstCmpFilter:
    """Declarative edge filter over a per-node operand array: keep edges
    with ``array[src] OP array[dst]`` (or ``array[dst] OP const`` when
    ``const`` is given). Callable with the legacy ``edge_filter(src,
    dst)`` signature; array-style like every plan callable."""

    op: str
    array: Any  # per-node operand array (global node id indexed)
    const: Any = None

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(
                f"unknown comparison {self.op!r}; use one of {sorted(_CMP_OPS)}"
            )

    def __call__(self, src: Any, dst: Any) -> Any:
        if self.const is not None:
            return _CMP_OPS[self.op](self.array[dst], self.const)
        return _CMP_OPS[self.op](self.array[src], self.array[dst])

    def summary(self) -> dict:
        out: dict = {
            "kind": "dst-cmp",
            "op": self.op,
            "array": _array_json(self.array),
        }
        if self.const is not None:
            out["const"] = _const_json(self.const)
        return out


def filter_summary(fn: Any) -> dict:
    """Machine-readable form of one filter: the spec's own summary, or
    the schema v1.2 refusal record for an opaque callable (still a legal
    filter - the kernel just runs interpreted and the plan says why)."""
    if isinstance(fn, (CmpFilter, DstCmpFilter)):
        return fn.summary()
    name = getattr(fn, "__qualname__", None) or type(fn).__name__
    return {
        "kind": "opaque",
        "callable": name,
        "message": (
            "opaque callable filters are not serializable and keep the "
            "kernel interpreted; declare CmpFilter/DstCmpFilter for codegen"
        ),
    }


def apply_value_filter(vf: Callable, values: Any, nodes: Any) -> Any:
    """Evaluate a value filter, passing the node ids only to specs that
    compare against a per-node operand (plain callables keep their
    one-argument contract)."""
    if getattr(vf, "needs_nodes", False):
        return vf(values, nodes)
    return vf(values)


# ------------------------------------------------------- residual contracts


@dataclass(frozen=True)
class ResidualDecl:
    """How an :class:`EdgePush` kernel's updates translate to residuals.

    The declaration is what makes a plan eligible for the asynchronous
    priority/delta engine (:class:`repro.exec.engine.AsyncEngine`): it
    tells the engine how much "unprocessed change" a node carries, so the
    scheduler can process highest-residual nodes first without any round
    barrier. BSP execution ignores it entirely.

    ``mode``:

    * ``"monotone"`` - the push target improves monotonically under the
      kernel's reducer (SSSP's MIN distances, CC-LP's MIN labels). A
      node's residual is the size of its last improvement; processing a
      node relaxes its out-edges exactly as the kernel describes.
    * ``"accumulate"`` - delta-style mass propagation (PageRank): each
      node holds a residual of un-pushed mass; processing moves the
      residual into ``value`` and pushes ``transform(residual, node)``
      along the out-edges. ``init_value``/``init_residual`` give the
      starting arrays; ``dangling="uniform"`` redistributes
      ``dangling_scale * residual`` of zero-out-degree nodes uniformly.

    ``tolerance`` is the accumulate-mode stop threshold: the engine stops
    once the total remaining residual mass falls below it.
    """

    mode: str  # "monotone" | "accumulate"
    tolerance: float = 1e-9
    value: NodePropMap | None = None  # accumulate: the map holding results
    dangling: str | None = None  # accumulate: None | "uniform"
    dangling_scale: float = 1.0
    init_value: Callable[[Any], Any] | None = None  # nodes -> values
    init_residual: Callable[[Any], Any] | None = None  # nodes -> residuals

    def __post_init__(self) -> None:
        if self.mode not in ("monotone", "accumulate"):
            raise ValueError(f"unknown residual mode {self.mode!r}")
        if self.mode == "accumulate" and (
            self.value is None
            or self.init_value is None
            or self.init_residual is None
        ):
            raise ValueError(
                "accumulate residuals need value, init_value and init_residual"
            )

    def summary(self) -> dict:
        """Machine-readable form (rides ``operator_summary``)."""
        out: dict = {"mode": self.mode, "tolerance": self.tolerance}
        if self.value is not None:
            out["value"] = self.value.name
        if self.dangling is not None:
            out["dangling"] = self.dangling
            out["dangling_scale"] = self.dangling_scale
        return out


# ------------------------------------------------------------- kernel forms


@dataclass
class EdgePush:
    """Push a per-source value along every out-edge into ``target``.

    The canonical pipeline (fixed so both backends meter identically):
    degree filter -> ``charge_per_source`` -> activity filter -> source
    read -> ``value_filter`` -> ``transform`` -> edge expansion (charges
    ``edge_iters`` plus ``charge_per_edge``) -> ``edge_filter`` -> weight
    combine -> reduce. All callables are written array-style (numpy
    semantics); the executor derives the per-node scalar form.

    Filters come in two strengths. Declarative specs -
    :class:`ActiveFilter` (normalized into ``require_active``),
    :class:`CmpFilter` for ``value_filter``, :class:`DstCmpFilter` for
    ``edge_filter`` - serialize in the plan schema and let the code
    generator compile the push into a frontier-aware kernel
    (``repro.exec.codegen.PreparedFrontierPush``). Plain callables stay
    legal but opaque: the kernel runs interpreted and ``repro plan``
    reports why.
    """

    target: NodePropMap
    op: ReduceOp
    source: NodePropMap | None = None
    require_active: NodePropMap | ActiveFilter | None = None
    skip_zero_degree: bool = True
    charge_per_source: int = 0
    charge_per_edge: int = 0
    value_filter: Callable[[Any], Any] | None = None
    transform: Callable[[Any, Any], Any] | None = None  # (values, nodes)
    const_value: Any = None
    with_weight: str | None = None  # None | "add" (value + edge weight)
    unit_weights: bool = False
    edge_filter: Callable[[Any, Any], Any] | None = None  # (src, dst) nodes
    # Residual/delta declaration for the asynchronous engine; None means
    # the kernel is only eligible for BSP execution.
    residual: ResidualDecl | None = None

    def __post_init__(self) -> None:
        # ActiveFilter is declarative sugar over the require_active map:
        # normalize here so every downstream layer (reads metadata, pool
        # carriers, both interpreters, codegen) handles one form.
        if isinstance(self.require_active, ActiveFilter):
            self.require_active = self.require_active.map

    @property
    def form(self) -> str:
        return "edge-push"

    def reads(self) -> tuple[str, ...]:
        names = []
        if self.require_active is not None:
            names.append(self.require_active.name)
        if self.source is not None and self.source.name not in names:
            names.append(self.source.name)
        return tuple(names)

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, self.op.name),)


@dataclass
class NodeUpdate:
    """Reduce ``value(node_ids)`` onto each iterated node itself."""

    target: NodePropMap
    op: ReduceOp
    value: Callable[[Any], Any]  # array of global node ids -> values
    charge_per_node: int = 0
    read_names: tuple[str, ...] = ()

    @property
    def form(self) -> str:
        return "node-update"

    def reads(self) -> tuple[str, ...]:
        return self.read_names

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, self.op.name),)


@dataclass
class DegreeReduce:
    """SUM-reduce each host's local out-degree share onto the node."""

    target: NodePropMap

    @property
    def form(self) -> str:
        return "degree-reduce"

    def reads(self) -> tuple[str, ...]:
        return ()

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, SUM.name),)


@dataclass
class ScalarKernel:
    """An opaque per-node body run as the scalar reference loop on both
    backends. ``read_names``/``write_names`` declare the maps touched so
    plans stay introspectable (``repro plan``) even for opaque bodies.

    Three further declarations exist for the host-shard execution layer
    (``repro.exec.pool``), which fans compute phases out to worker
    processes and must know everything a body can mutate:

    * ``ops`` - non-canonical ``ReduceOp`` instances the body reduces
      with (canonical named reducers resolve automatically). Operators
      ship by name between processes and need a live object per name; a
      body whose declared write reducers cannot all be resolved runs
      replicated on every process instead of sharded - still correct,
      just not sped up.
    * ``extra_effects`` - effect carriers beyond the named maps whose
      per-host state the body mutates (e.g. a ``BoolReducer``'s host
      flags). Anything exposing ``export_compute_effects(host)`` /
      ``install_compute_effects(host, effects, resolve_op)`` qualifies.
    * ``host_local`` - set False when the body mutates host-global state
      that is *not* per-host addressable (appends to a result set, bumps
      a shared counter). Such phases run replicated on every process
      (identical state evolution everywhere) instead of sharded.
    """

    body: Callable[[OperatorContext], None]
    read_names: tuple[str, ...] = ()
    write_names: tuple[tuple[str, str], ...] = ()
    ops: tuple[ReduceOp, ...] = ()
    extra_effects: tuple[Any, ...] = ()
    host_local: bool = True

    @property
    def form(self) -> str:
        return "scalar"

    def reads(self) -> tuple[str, ...]:
        return self.read_names

    def writes(self) -> tuple[tuple[str, str], ...]:
        return self.write_names


Kernel = Union[EdgePush, NodeUpdate, DegreeReduce, ScalarKernel]


# ------------------------------------------------------------------- steps


@dataclass
class Operator:
    """One compute phase: a kernel over an iteration space, with a label
    (the trace/profile operator attribution) and a BSP phase kind."""

    label: str
    space: str  # "masters" | "all"
    kernel: Kernel
    kind: PhaseKind = PhaseKind.REDUCE_COMPUTE


@dataclass
class OperatorStep:
    operator: Operator


@dataclass
class SyncStep:
    """A sync collective on one map: "request", "reduce", or "broadcast"
    (broadcast is a no-op unless the map is pinned, as at the map layer)."""

    map: NodePropMap
    action: str

    def __post_init__(self) -> None:
        if self.action not in ("request", "reduce", "broadcast"):
            raise ValueError(f"unknown sync action {self.action!r}")


@dataclass
class ResetStep:
    """Reset a map's values (and its per-loop reducer binding) each round.

    ``values`` is array-style over global node ids unless ``elementwise``
    (then it is per-node, used verbatim by both backends - required for
    non-numeric values like tuples).
    """

    map: NodePropMap
    values: Callable[[Any], Any]
    elementwise: bool = False


@dataclass
class HostStep:
    """Host-side scalar code between phases (dangling mass, deltas, ...)."""

    label: str
    fn: Callable[[], None]


Step = Union[OperatorStep, SyncStep, ResetStep, HostStep]


# -------------------------------------------------------------------- plans


@dataclass
class Plan:
    """An algorithm loop (or one-shot phase group) as data.

    ``steps`` is one BSP round. The executor drives the loop through
    ``run_recoverable_loop``: quiescence over ``quiesce`` maps and/or a
    custom ``converged`` predicate, checkpoint/recovery over ``maps``
    (defaults to ``quiesce``), optional ``extra_snapshot``/``extra_restore``
    for loop-private host state. ``once`` plans execute their steps exactly
    one time (warm-ups, per-round phase groups of host-driven loops).
    """

    name: str
    pgraph: PartitionedGraph
    steps: Sequence[Step]
    quiesce: Sequence[NodePropMap] = ()
    converged: Callable[[], bool] | None = None
    maps: Sequence[NodePropMap] = ()
    max_rounds: int = 100000
    advance_rounds: bool = True
    once: bool = False
    raise_on_max_rounds: bool = True
    loop_label: str = "KimbapWhile"
    extra_snapshot: Callable[[], object] | None = None
    extra_restore: Callable[[object], None] | None = None


# ------------------------------------------------------------- introspection


def operator_summary(operator: Operator) -> dict:
    """Machine-readable description of one operator (for ``repro plan``)."""
    kernel = operator.kernel
    summary = {
        "label": operator.label,
        "space": operator.space,
        "kind": operator.kind.value,
        "form": kernel.form,
        "reads": list(kernel.reads()),
        "writes": [
            {"map": name, "reducer": reducer} for name, reducer in kernel.writes()
        ],
    }
    residual = getattr(kernel, "residual", None)
    if residual is not None:
        # Schema v1.1: async-engine eligibility is inspectable per kernel.
        summary["residual"] = residual.summary()
    if isinstance(kernel, EdgePush):
        # Schema v1.2: filter predicates are inspectable per kernel -
        # declarative specs serialize in full, opaque callables get a
        # refusal record naming the callable and the consequence.
        filters: dict = {}
        if kernel.require_active is not None:
            filters["active"] = {
                "kind": "active",
                "map": kernel.require_active.name,
            }
        if kernel.value_filter is not None:
            filters["value"] = filter_summary(kernel.value_filter)
        if kernel.edge_filter is not None:
            filters["edge"] = filter_summary(kernel.edge_filter)
        if filters:
            summary["filters"] = filters
    return summary


def _step_summary(step: Step) -> dict:
    if isinstance(step, OperatorStep):
        return {"step": "operator", **operator_summary(step.operator)}
    if isinstance(step, SyncStep):
        return {"step": "sync", "map": step.map.name, "action": step.action}
    if isinstance(step, ResetStep):
        return {"step": "reset", "map": step.map.name}
    return {"step": "host", "label": step.label}


def plan_summary(plan: Plan) -> dict:
    """Machine-readable description of a whole plan."""
    if plan.once:
        condition = "once"
    elif plan.quiesce and plan.converged is not None:
        condition = "quiescence+custom"
    elif plan.quiesce:
        condition = "quiescence"
    else:
        condition = "custom"
    summary = {
        "name": plan.name,
        "loop": condition,
        "steps": [_step_summary(step) for step in plan.steps],
    }
    if not plan.once:
        summary["quiesce"] = [prop.name for prop in plan.quiesce]
        summary["max_rounds"] = plan.max_rounds
        summary["advance_rounds"] = plan.advance_rounds
    return summary


def format_plan_summary(summary: dict) -> str:
    """Render one plan summary as indented text (the ``repro plan`` view)."""
    lines = [f"plan {summary['name']} [{summary['loop']}]"]
    if summary.get("quiesce"):
        lines.append(f"  quiesce: {', '.join(summary['quiesce'])}")
    for step in summary["steps"]:
        if step["step"] == "operator":
            writes = ", ".join(
                f"{write['map']}<-{write['reducer']}" for write in step["writes"]
            )
            reads = ", ".join(step["reads"]) or "-"
            lines.append(
                f"  operator {step['label']} ({step['form']}, {step['space']}, "
                f"{step['kind']}) reads: {reads} writes: {writes or '-'}"
            )
        elif step["step"] == "sync":
            lines.append(f"  sync {step['action']} {step['map']}")
        elif step["step"] == "reset":
            lines.append(f"  reset {step['map']}")
        else:
            lines.append(f"  host {step['label']}")
    return "\n".join(lines)


__all__ = [
    "PLAN_SCHEMA",
    "ResidualDecl",
    "ActiveFilter",
    "CmpFilter",
    "DstCmpFilter",
    "apply_value_filter",
    "filter_summary",
    "EdgePush",
    "NodeUpdate",
    "DegreeReduce",
    "ScalarKernel",
    "Kernel",
    "Operator",
    "OperatorStep",
    "SyncStep",
    "ResetStep",
    "HostStep",
    "Step",
    "Plan",
    "operator_summary",
    "plan_summary",
    "format_plan_summary",
]
