"""Operator plans: the declarative algorithm specification layer.

A plan describes one BSP round of an algorithm as data - a sequence of
steps (operators, sync collectives, map resets, host-side scalar code)
plus the loop/convergence driver - so a single
:class:`repro.exec.executor.Executor` can run it on either the scalar
reference backend (``par_for``) or the vectorized bulk backend
(``par_for_bulk`` + ``reduce_bulk``) with byte-identical metrics.

Operator bodies come in four *kernel forms*:

* :class:`EdgePush` - the adjacent-vertex push: each active source sends
  a value along its out-edges into a target map under a reducer. This is
  the fully declarative form (the executor owns both the scalar loop and
  the vectorized interpretation).
* :class:`NodeUpdate` - a per-node recompute reduced onto the node itself
  (e.g. PageRank's rebuild).
* :class:`DegreeReduce` - the shared warm-up that SUM-reduces each host's
  local out-degree share onto the node (PR / MIS global degrees).
* :class:`ScalarKernel` - an opaque per-node body with declared
  reads/writes metadata. Both backends execute it as the same scalar
  reference loop (like the MC runtime variant, which degrades to the
  scalar path by design), so byte-identity is structural; only kernels
  worth vectorizing need one of the array forms above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence, Union

from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM, ReduceOp
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import OperatorContext

PLAN_SCHEMA = "repro-exec-plan/v1.1"


# ------------------------------------------------------- residual contracts


@dataclass(frozen=True)
class ResidualDecl:
    """How an :class:`EdgePush` kernel's updates translate to residuals.

    The declaration is what makes a plan eligible for the asynchronous
    priority/delta engine (:class:`repro.exec.engine.AsyncEngine`): it
    tells the engine how much "unprocessed change" a node carries, so the
    scheduler can process highest-residual nodes first without any round
    barrier. BSP execution ignores it entirely.

    ``mode``:

    * ``"monotone"`` - the push target improves monotonically under the
      kernel's reducer (SSSP's MIN distances, CC-LP's MIN labels). A
      node's residual is the size of its last improvement; processing a
      node relaxes its out-edges exactly as the kernel describes.
    * ``"accumulate"`` - delta-style mass propagation (PageRank): each
      node holds a residual of un-pushed mass; processing moves the
      residual into ``value`` and pushes ``transform(residual, node)``
      along the out-edges. ``init_value``/``init_residual`` give the
      starting arrays; ``dangling="uniform"`` redistributes
      ``dangling_scale * residual`` of zero-out-degree nodes uniformly.

    ``tolerance`` is the accumulate-mode stop threshold: the engine stops
    once the total remaining residual mass falls below it.
    """

    mode: str  # "monotone" | "accumulate"
    tolerance: float = 1e-9
    value: NodePropMap | None = None  # accumulate: the map holding results
    dangling: str | None = None  # accumulate: None | "uniform"
    dangling_scale: float = 1.0
    init_value: Callable[[Any], Any] | None = None  # nodes -> values
    init_residual: Callable[[Any], Any] | None = None  # nodes -> residuals

    def __post_init__(self) -> None:
        if self.mode not in ("monotone", "accumulate"):
            raise ValueError(f"unknown residual mode {self.mode!r}")
        if self.mode == "accumulate" and (
            self.value is None
            or self.init_value is None
            or self.init_residual is None
        ):
            raise ValueError(
                "accumulate residuals need value, init_value and init_residual"
            )

    def summary(self) -> dict:
        """Machine-readable form (rides ``operator_summary``)."""
        out: dict = {"mode": self.mode, "tolerance": self.tolerance}
        if self.value is not None:
            out["value"] = self.value.name
        if self.dangling is not None:
            out["dangling"] = self.dangling
            out["dangling_scale"] = self.dangling_scale
        return out


# ------------------------------------------------------------- kernel forms


@dataclass
class EdgePush:
    """Push a per-source value along every out-edge into ``target``.

    The canonical pipeline (fixed so both backends meter identically):
    degree filter -> ``charge_per_source`` -> activity filter -> source
    read -> ``value_filter`` -> ``transform`` -> edge expansion (charges
    ``edge_iters`` plus ``charge_per_edge``) -> ``edge_filter`` -> weight
    combine -> reduce. All callables are written array-style (numpy
    semantics); the executor derives the per-node scalar form.
    """

    target: NodePropMap
    op: ReduceOp
    source: NodePropMap | None = None
    require_active: NodePropMap | None = None
    skip_zero_degree: bool = True
    charge_per_source: int = 0
    charge_per_edge: int = 0
    value_filter: Callable[[Any], Any] | None = None
    transform: Callable[[Any, Any], Any] | None = None  # (values, nodes)
    const_value: Any = None
    with_weight: str | None = None  # None | "add" (value + edge weight)
    unit_weights: bool = False
    edge_filter: Callable[[Any, Any], Any] | None = None  # (src, dst) nodes
    # Residual/delta declaration for the asynchronous engine; None means
    # the kernel is only eligible for BSP execution.
    residual: ResidualDecl | None = None

    @property
    def form(self) -> str:
        return "edge-push"

    def reads(self) -> tuple[str, ...]:
        names = []
        if self.require_active is not None:
            names.append(self.require_active.name)
        if self.source is not None and self.source.name not in names:
            names.append(self.source.name)
        return tuple(names)

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, self.op.name),)


@dataclass
class NodeUpdate:
    """Reduce ``value(node_ids)`` onto each iterated node itself."""

    target: NodePropMap
    op: ReduceOp
    value: Callable[[Any], Any]  # array of global node ids -> values
    charge_per_node: int = 0
    read_names: tuple[str, ...] = ()

    @property
    def form(self) -> str:
        return "node-update"

    def reads(self) -> tuple[str, ...]:
        return self.read_names

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, self.op.name),)


@dataclass
class DegreeReduce:
    """SUM-reduce each host's local out-degree share onto the node."""

    target: NodePropMap

    @property
    def form(self) -> str:
        return "degree-reduce"

    def reads(self) -> tuple[str, ...]:
        return ()

    def writes(self) -> tuple[tuple[str, str], ...]:
        return ((self.target.name, SUM.name),)


@dataclass
class ScalarKernel:
    """An opaque per-node body run as the scalar reference loop on both
    backends. ``read_names``/``write_names`` declare the maps touched so
    plans stay introspectable (``repro plan``) even for opaque bodies.

    Three further declarations exist for the host-shard execution layer
    (``repro.exec.pool``), which fans compute phases out to worker
    processes and must know everything a body can mutate:

    * ``ops`` - non-canonical ``ReduceOp`` instances the body reduces
      with (canonical named reducers resolve automatically). Operators
      ship by name between processes and need a live object per name; a
      body whose declared write reducers cannot all be resolved runs
      replicated on every process instead of sharded - still correct,
      just not sped up.
    * ``extra_effects`` - effect carriers beyond the named maps whose
      per-host state the body mutates (e.g. a ``BoolReducer``'s host
      flags). Anything exposing ``export_compute_effects(host)`` /
      ``install_compute_effects(host, effects, resolve_op)`` qualifies.
    * ``host_local`` - set False when the body mutates host-global state
      that is *not* per-host addressable (appends to a result set, bumps
      a shared counter). Such phases run replicated on every process
      (identical state evolution everywhere) instead of sharded.
    """

    body: Callable[[OperatorContext], None]
    read_names: tuple[str, ...] = ()
    write_names: tuple[tuple[str, str], ...] = ()
    ops: tuple[ReduceOp, ...] = ()
    extra_effects: tuple[Any, ...] = ()
    host_local: bool = True

    @property
    def form(self) -> str:
        return "scalar"

    def reads(self) -> tuple[str, ...]:
        return self.read_names

    def writes(self) -> tuple[tuple[str, str], ...]:
        return self.write_names


Kernel = Union[EdgePush, NodeUpdate, DegreeReduce, ScalarKernel]


# ------------------------------------------------------------------- steps


@dataclass
class Operator:
    """One compute phase: a kernel over an iteration space, with a label
    (the trace/profile operator attribution) and a BSP phase kind."""

    label: str
    space: str  # "masters" | "all"
    kernel: Kernel
    kind: PhaseKind = PhaseKind.REDUCE_COMPUTE


@dataclass
class OperatorStep:
    operator: Operator


@dataclass
class SyncStep:
    """A sync collective on one map: "request", "reduce", or "broadcast"
    (broadcast is a no-op unless the map is pinned, as at the map layer)."""

    map: NodePropMap
    action: str

    def __post_init__(self) -> None:
        if self.action not in ("request", "reduce", "broadcast"):
            raise ValueError(f"unknown sync action {self.action!r}")


@dataclass
class ResetStep:
    """Reset a map's values (and its per-loop reducer binding) each round.

    ``values`` is array-style over global node ids unless ``elementwise``
    (then it is per-node, used verbatim by both backends - required for
    non-numeric values like tuples).
    """

    map: NodePropMap
    values: Callable[[Any], Any]
    elementwise: bool = False


@dataclass
class HostStep:
    """Host-side scalar code between phases (dangling mass, deltas, ...)."""

    label: str
    fn: Callable[[], None]


Step = Union[OperatorStep, SyncStep, ResetStep, HostStep]


# -------------------------------------------------------------------- plans


@dataclass
class Plan:
    """An algorithm loop (or one-shot phase group) as data.

    ``steps`` is one BSP round. The executor drives the loop through
    ``run_recoverable_loop``: quiescence over ``quiesce`` maps and/or a
    custom ``converged`` predicate, checkpoint/recovery over ``maps``
    (defaults to ``quiesce``), optional ``extra_snapshot``/``extra_restore``
    for loop-private host state. ``once`` plans execute their steps exactly
    one time (warm-ups, per-round phase groups of host-driven loops).
    """

    name: str
    pgraph: PartitionedGraph
    steps: Sequence[Step]
    quiesce: Sequence[NodePropMap] = ()
    converged: Callable[[], bool] | None = None
    maps: Sequence[NodePropMap] = ()
    max_rounds: int = 100000
    advance_rounds: bool = True
    once: bool = False
    raise_on_max_rounds: bool = True
    loop_label: str = "KimbapWhile"
    extra_snapshot: Callable[[], object] | None = None
    extra_restore: Callable[[object], None] | None = None


# ------------------------------------------------------------- introspection


def operator_summary(operator: Operator) -> dict:
    """Machine-readable description of one operator (for ``repro plan``)."""
    kernel = operator.kernel
    summary = {
        "label": operator.label,
        "space": operator.space,
        "kind": operator.kind.value,
        "form": kernel.form,
        "reads": list(kernel.reads()),
        "writes": [
            {"map": name, "reducer": reducer} for name, reducer in kernel.writes()
        ],
    }
    residual = getattr(kernel, "residual", None)
    if residual is not None:
        # Schema v1.1: async-engine eligibility is inspectable per kernel.
        summary["residual"] = residual.summary()
    return summary


def _step_summary(step: Step) -> dict:
    if isinstance(step, OperatorStep):
        return {"step": "operator", **operator_summary(step.operator)}
    if isinstance(step, SyncStep):
        return {"step": "sync", "map": step.map.name, "action": step.action}
    if isinstance(step, ResetStep):
        return {"step": "reset", "map": step.map.name}
    return {"step": "host", "label": step.label}


def plan_summary(plan: Plan) -> dict:
    """Machine-readable description of a whole plan."""
    if plan.once:
        condition = "once"
    elif plan.quiesce and plan.converged is not None:
        condition = "quiescence+custom"
    elif plan.quiesce:
        condition = "quiescence"
    else:
        condition = "custom"
    summary = {
        "name": plan.name,
        "loop": condition,
        "steps": [_step_summary(step) for step in plan.steps],
    }
    if not plan.once:
        summary["quiesce"] = [prop.name for prop in plan.quiesce]
        summary["max_rounds"] = plan.max_rounds
        summary["advance_rounds"] = plan.advance_rounds
    return summary


def format_plan_summary(summary: dict) -> str:
    """Render one plan summary as indented text (the ``repro plan`` view)."""
    lines = [f"plan {summary['name']} [{summary['loop']}]"]
    if summary.get("quiesce"):
        lines.append(f"  quiesce: {', '.join(summary['quiesce'])}")
    for step in summary["steps"]:
        if step["step"] == "operator":
            writes = ", ".join(
                f"{write['map']}<-{write['reducer']}" for write in step["writes"]
            )
            reads = ", ".join(step["reads"]) or "-"
            lines.append(
                f"  operator {step['label']} ({step['form']}, {step['space']}, "
                f"{step['kind']}) reads: {reads} writes: {writes or '-'}"
            )
        elif step["step"] == "sync":
            lines.append(f"  sync {step['action']} {step['map']}")
        elif step["step"] == "reset":
            lines.append(f"  reset {step['map']}")
        else:
            lines.append(f"  host {step['label']}")
    return "\n".join(lines)


__all__ = [
    "PLAN_SCHEMA",
    "ResidualDecl",
    "EdgePush",
    "NodeUpdate",
    "DegreeReduce",
    "ScalarKernel",
    "Kernel",
    "Operator",
    "OperatorStep",
    "SyncStep",
    "ResetStep",
    "HostStep",
    "Step",
    "Plan",
    "operator_summary",
    "plan_summary",
    "format_plan_summary",
]
