"""repro.exec: the unified operator-plan execution layer.

Algorithms are written once as declarative :class:`Plan` objects
(operator specs + a loop/convergence driver); a single :class:`Executor`
dispatches each plan to the scalar reference backend or the vectorized
bulk backend with byte-identical metrics, and hosts the shared
checkpoint/recovery and trace/profile wiring. The code generation stage
(:mod:`repro.exec.codegen`) lowers each plan to a flat list of prebound,
specialized (and where legal, fused) kernels the per-round loop replays.
"""

from repro.exec.codegen import (
    CompiledOperator,
    CompiledPlan,
    FusedGroup,
    PreparedFrontierPush,
    compile_plan,
    fusion_enabled,
)
from repro.exec.engine import (
    ENGINES,
    AsyncEngine,
    BSPEngine,
    Engine,
    UnsupportedPlanError,
    make_engine,
)
from repro.exec.executor import Executor
from repro.exec.plan import (
    PLAN_SCHEMA,
    ActiveFilter,
    CmpFilter,
    apply_value_filter,
    DegreeReduce,
    DstCmpFilter,
    EdgePush,
    HostStep,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ResetStep,
    ResidualDecl,
    ScalarKernel,
    SyncStep,
    filter_summary,
    format_plan_summary,
    operator_summary,
    plan_summary,
)

__all__ = [
    "CompiledOperator",
    "CompiledPlan",
    "Executor",
    "FusedGroup",
    "PreparedFrontierPush",
    "compile_plan",
    "fusion_enabled",
    "ENGINES",
    "AsyncEngine",
    "BSPEngine",
    "Engine",
    "UnsupportedPlanError",
    "make_engine",
    "PLAN_SCHEMA",
    "ResidualDecl",
    "ActiveFilter",
    "CmpFilter",
    "apply_value_filter",
    "DstCmpFilter",
    "filter_summary",
    "DegreeReduce",
    "EdgePush",
    "HostStep",
    "NodeUpdate",
    "Operator",
    "OperatorStep",
    "Plan",
    "ResetStep",
    "ScalarKernel",
    "SyncStep",
    "format_plan_summary",
    "operator_summary",
    "plan_summary",
]
