"""repro.exec: the unified operator-plan execution layer.

Algorithms are written once as declarative :class:`Plan` objects
(operator specs + a loop/convergence driver); a single :class:`Executor`
dispatches each plan to the scalar reference backend or the vectorized
bulk backend with byte-identical metrics, and hosts the shared
checkpoint/recovery and trace/profile wiring.
"""

from repro.exec.executor import Executor
from repro.exec.plan import (
    PLAN_SCHEMA,
    DegreeReduce,
    EdgePush,
    HostStep,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ResetStep,
    ScalarKernel,
    SyncStep,
    format_plan_summary,
    operator_summary,
    plan_summary,
)

__all__ = [
    "Executor",
    "PLAN_SCHEMA",
    "DegreeReduce",
    "EdgePush",
    "HostStep",
    "NodeUpdate",
    "Operator",
    "OperatorStep",
    "Plan",
    "ResetStep",
    "ScalarKernel",
    "SyncStep",
    "format_plan_summary",
    "operator_summary",
    "plan_summary",
]
