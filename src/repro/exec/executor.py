"""The plan executor: one algorithm spec, three execution backends.

``Executor`` runs :class:`repro.exec.plan.Plan` objects. Construction
picks the backend: ``bulk=False`` executes operator kernels with the
scalar reference ``par_for`` loops, ``bulk=True`` with the vectorized
``par_for_bulk`` array kernels. Both interpretations of each declarative
kernel form live here, side by side, and follow the same canonical
metering pipeline, so an algorithm expressed once as a plan is
byte-identical across backends (counters, conflicts, modeled seconds,
values) - the contract ``tests/test_bulk_equivalence.py`` enforces for
all twelve algorithms.

``jobs=N`` composes with either kernel backend: each plan run forks
``N - 1`` worker processes that replay the same plan loop over disjoint
host shards and exchange per-phase effect bundles with the coordinator
(see :mod:`repro.exec.pool`), merged in fixed host order so the run
stays byte-identical to ``jobs=1`` - the contract
``tests/test_parallel_equivalence.py`` enforces.

:class:`~repro.exec.plan.ScalarKernel` bodies run as the same scalar
loop on both backends (the way the MC runtime variant degrades to the
scalar path by design): byte-identity is structural, and such kernels
opt into vectorization by being rewritten as one of the array forms.

The drive loop itself lives in the engine layer (:mod:`repro.exec.engine`):
``engine="bsp"`` (the default and the byte-identity oracle) runs the
bulk-synchronous round loop through ``repro.faults.run_recoverable_loop``,
so every plan - not just PageRank's tolerance loop - gets
checkpoint/recovery when a fault injector is installed, and
round/operator trace attribution for free. Without an injector the
driver is exactly the legacy loop (zero overhead). ``engine="async"``
schedules residual-declared plans with the barrier-free priority/delta
scheduler instead; its results are value-equivalent (not byte-identical)
to the BSP oracle.

Each ``run`` executes through a compiled form of the plan
(:mod:`repro.exec.codegen`): the per-step backend dispatch - scalar vs
bulk driver, kernel-closure construction, reset binding - is decided
once per ``(plan, executor)`` binding and cached, and the per-round loop
replays a flat list of prebound entries instead of re-walking the step
list with ``isinstance`` checks. On the bulk backend, ``codegen=True``
(the default for ``bulk=True``) additionally specializes statically
analyzable kernels into preassembled numpy runners and fuses adjacent
compatible compute phases; ``codegen=False`` pins the interpreted bulk
bodies, which is the honest baseline the codegen benchmarks compare
against.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM
from repro.exec.codegen import (
    ENTRY_FUSED,
    ENTRY_OPERATOR,
    ENTRY_SYNC,
    CompiledOperator,
    CompiledPlan,
    compile_plan,
    fusion_enabled,
)
from repro.exec.engine import BSPEngine, Engine, make_engine
from repro.exec.plan import (
    DegreeReduce,
    EdgePush,
    NodeUpdate,
    Plan,
    apply_value_filter,
)
from repro.exec.pool import HostShardPool, create_pool
from repro.runtime.engine import (
    BulkOperatorContext,
    OperatorContext,
)


def _scalar(value: Any) -> Any:
    """Strip numpy wrappers so the scalar backend stores the same plain
    Python scalars the hand-written reference kernels did."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    return value


def _elementwise(values: Callable[[np.ndarray], Any]) -> Callable[[int], Any]:
    """Derive the per-node form of an array-style value function."""

    def one(node: int) -> Any:
        return _scalar(np.asarray(values(np.asarray([node], dtype=np.int64)))[0])

    return one


class Executor:
    """Dispatches operator plans to the scalar or bulk backend."""

    def __init__(
        self,
        cluster: Cluster,
        bulk: bool = False,
        observer: Callable[[Plan], None] | None = None,
        jobs: int = 1,
        recovery: str = "fail-fast",
        chaos: Any | None = None,
        codegen: bool | None = None,
        engine: str | Engine = "bsp",
        engine_options: dict[str, Any] | None = None,
    ) -> None:
        self.cluster = cluster
        self.bulk = bool(bulk)
        # Plan-to-kernel code generation (repro.exec.codegen): None means
        # "on wherever it can apply", i.e. with the bulk backend (the
        # scalar backend is the reference oracle and never specializes).
        # codegen=False pins the interpreted bulk kernel bodies - the
        # baseline the codegen speedup benchmarks measure against.
        self.codegen = self.bulk if codegen is None else bool(codegen)
        # Compiled plans, keyed by plan id and revalidated against the
        # plan object and the fusion gate (a fault injector installed
        # between runs must recompile fusion away).
        self._compiled_plans: dict[int, tuple[Plan, bool, CompiledPlan]] = {}
        self.observer = observer
        # jobs > 1 fans shardable compute phases out to jobs processes
        # (coordinator included); merge order keeps results byte-identical.
        self.jobs = max(1, int(jobs))
        # Self-healing knobs (see repro.exec.pool): "refork" replaces a
        # dead worker with a fresh fork of the rolled-back coordinator,
        # "reshard" re-deals the dead worker's hosts onto survivors, and
        # "fail-fast" (the default) keeps the legacy raise-through path.
        # ``chaos`` is a repro.faults.chaos.ChaosPlan delivering real
        # kills to workers at chosen sync boundaries.
        if recovery not in ("fail-fast", "refork", "reshard"):
            raise ValueError(
                f"unknown recovery policy {recovery!r}; "
                "use 'fail-fast', 'refork', or 'reshard'"
            )
        self.recovery = recovery
        self.chaos = chaos
        self._pool: HostShardPool | None = None
        # The drive loop lives in the engine layer (repro.exec.engine);
        # "bsp" is the byte-identity oracle, "async" the barrier-free
        # priority/delta scheduler. Pool workers always replay the BSP
        # loop (see _drive), so the async engine excludes jobs>1.
        self._bsp_engine = BSPEngine(self)
        if isinstance(engine, Engine):
            self.engine = engine
        else:
            self.engine = make_engine(self, engine, **(engine_options or {}))
        if self.engine.name != "bsp" and self.jobs > 1:
            raise ValueError(
                f"engine {self.engine.name!r} does not compose with jobs="
                f"{self.jobs}; host-shard parallelism replays the BSP loop"
            )

    # ------------------------------------------------------ map lifecycle

    def init_map(
        self,
        prop: NodePropMap,
        values: Callable[[np.ndarray], np.ndarray] | None = None,
        *,
        elementwise: Callable[[int], Any] | None = None,
    ) -> None:
        """Backend-dispatched ``set_initial``: array-style ``values`` uses
        the bulk path under ``bulk=True``; ``elementwise`` initializers
        (needed for non-numeric values) run identically on both backends."""
        if elementwise is not None:
            prop.set_initial(elementwise)
        elif self.bulk:
            prop.set_initial_bulk(lambda nodes: np.asarray(values(nodes)))
        else:
            prop.set_initial(_elementwise(values))

    # -------------------------------------------------------- loop driver

    def run(self, plan: Plan) -> int:
        """Execute a plan; returns completed rounds (0 for ``once`` plans).

        The engine owns the drive loop (round/chunk scheduling,
        convergence, quiesce, checkpoint hooks); the executor stays the
        kernel-dispatch surface the engine calls back into."""
        if self.observer is not None:
            self.observer(plan)
        return self.engine.run(plan)

    def _ensure_pool(self, plan: Plan):
        """The executor-lifetime pool (or None while parallelism cannot
        apply: ``jobs=1``, no fork, or no plan so far with a shardable
        phase - a later plan may still create it)."""
        if self.jobs <= 1 or self._pool is not None:
            return self._pool
        self._pool = create_pool(self, plan)
        return self._pool

    def close(self) -> None:
        """Reap the worker pool and release its shared-memory segments.

        Idempotent; harness and tests call it (or rely on ``__del__``)
        once the run is over. Worker processes never call it - they exit
        via ``os._exit`` without touching shared segments.
        """
        pool = self._pool
        if pool is not None and not pool.is_worker:
            self._pool = None
            pool.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def parallel_stats(self) -> dict[str, int] | None:
        """Exchange instrumentation of the parallel backend (None when no
        pool ever forked): bytes exchanged, peak live shared segments,
        forks, and warm (fork-free) run reuses."""
        return None if self._pool is None else self._pool.stats()

    def _drive(self, plan: Plan, resume_rounds: int | None = None) -> int:
        """The BSP plan loop, replayed identically by every process of a
        parallel run (the pool endpoint decides shard vs replicated work
        per phase inside :meth:`_run_compiled_operator`). Pool workers call
        this directly - worker replay and heal-time resume
        (``resume_rounds``) are BSP-loop concepts, so this always drives
        through the BSP engine regardless of the selected engine."""
        return self._bsp_engine.drive(plan, resume_rounds=resume_rounds)

    def compiled(self, plan: Plan) -> CompiledPlan:
        """The cached compiled form of ``plan`` for this binding.

        Recompiles when the cache slot holds a different plan object
        (id reuse after GC) or when the fusion gate flipped since the
        plan was compiled (e.g. ``install_faults`` between runs).
        """
        fuse = fusion_enabled(self)
        key = id(plan)
        cached = self._compiled_plans.get(key)
        if cached is not None and cached[0] is plan and cached[1] == fuse:
            return cached[2]
        compiled = compile_plan(self, plan)
        self._compiled_plans[key] = (plan, fuse, compiled)
        return compiled

    def run_round(self, plan: Plan) -> None:
        """One pass over the plan's compiled entries (one BSP round).

        Any non-compute entry is a sync boundary for the parallel pool:
        deferred sharded-phase effects must be exchanged before a sync
        collective, reset, or host step reads them, and again at the end
        of the round (quiescence flags, checkpoints, and between-round
        callbacks read the merged state).
        """
        pool = self._pool
        for tag, payload in self.compiled(plan).entries:
            if tag == ENTRY_OPERATOR:
                self._run_compiled_operator(plan.pgraph, payload)
                continue
            if tag == ENTRY_FUSED:
                payload.run(self, plan.pgraph)
                continue
            if pool is not None and pool.active:
                pool.flush()
            if tag == ENTRY_SYNC:
                # The sync collectives themselves shard across the pool
                # (owner-host dealing; see NodePropMap._sgr_reduce_sharded
                # and _broadcast_sharded) - without this the replicated
                # reduce/broadcast dominates the bulk run's wall clock and
                # caps jobs=N speedup well below 2x. Gated off under fault
                # injection (defer=False) so per-send fault draws replay in
                # the exact serial order.
                sync_pool = (
                    pool if pool is not None and pool.active and pool.defer else None
                )
                if payload.action == "request":
                    payload.map.request_sync()
                elif payload.action == "reduce":
                    payload.map.reduce_sync(pool=sync_pool)
                else:
                    payload.map.broadcast_sync(pool=sync_pool)
            else:  # ENTRY_EXEC: a prebound reset or host callable
                payload()
        if pool is not None and pool.active:
            pool.flush()

    # --------------------------------------------------- kernel dispatch

    def _run_compiled_operator(self, pgraph, compiled: CompiledOperator) -> None:
        operator = compiled.operator
        pool = self._pool
        if pool is not None and pool.active:
            if pool.shardable(operator):
                pool.run_sharded(
                    self.cluster, compiled.driver, pgraph, operator, compiled.body
                )
                return
            # A replicated phase reads whatever state the sharded phases
            # before it produced (request dedup against foreign bitsets,
            # pending reductions): exchange the deferred effects first.
            pool.flush()
        # Serial run, or a phase the plan metadata cannot prove shardable:
        # every process executes every host (replicated - state stays
        # identical across the group with no exchange).
        compiled.driver(
            self.cluster,
            pgraph,
            operator.space,
            compiled.body,
            kind=operator.kind,
            label=operator.label,
        )

    # ----------------------------------------------- EdgePush, both forms

    def _edge_push_scalar(self, k: EdgePush) -> Callable[[OperatorContext], None]:
        def body(ctx: OperatorContext) -> None:
            if k.skip_zero_degree and ctx.part.degree(ctx.local) == 0:
                return
            if k.charge_per_source:
                ctx.charge(k.charge_per_source)
            if k.require_active is not None and not k.require_active.is_active(
                ctx.host, ctx.node
            ):
                return
            value = None
            if k.source is not None:
                value = k.source.read_local(ctx.host, ctx.local)
                if k.value_filter is not None and not bool(
                    apply_value_filter(k.value_filter, value, ctx.node)
                ):
                    return
            if k.const_value is not None:
                push = k.const_value
            elif k.transform is not None:
                push = _scalar(k.transform(value, ctx.node))
            else:
                push = value
            for edge in ctx.edges():
                if k.charge_per_edge:
                    ctx.charge(k.charge_per_edge)
                dst = ctx.edge_dst(edge)
                if k.edge_filter is not None and not bool(
                    k.edge_filter(ctx.node, dst)
                ):
                    continue
                message = push
                if k.with_weight == "add":
                    weight = 1.0 if k.unit_weights else ctx.edge_weight(edge)
                    message = push + weight
                k.target.reduce(ctx.host, ctx.thread, dst, message, k.op)

        return body

    def _edge_push_bulk(self, k: EdgePush) -> Callable[[BulkOperatorContext], None]:
        def body(ctx: BulkOperatorContext) -> None:
            sel = np.arange(ctx.local_ids.size, dtype=np.int64)
            # The node-id view is hoisted once and shrunk alongside sel,
            # so the activity/value/edge filters share one gather instead
            # of re-indexing ctx.node_ids per filter stage.
            nodes = ctx.node_ids
            if k.skip_zero_degree:
                sel = np.flatnonzero(ctx.degrees() > 0)
                if sel.size == 0:
                    return
                nodes = ctx.node_ids[sel]
            if k.charge_per_source:
                ctx.charge(int(k.charge_per_source * sel.size))
            if sel.size == 0:
                return
            if k.require_active is not None:
                keep = k.require_active.is_active_bulk(ctx.host, nodes)
                sel = sel[keep]
                nodes = nodes[keep]
                if sel.size == 0:
                    return
            values = None
            if k.source is not None:
                values = k.source.read_local_bulk(ctx.host, ctx.local_ids[sel])
                if k.value_filter is not None:
                    keep = np.asarray(
                        apply_value_filter(k.value_filter, values, nodes)
                    )
                    sel = sel[keep]
                    nodes = nodes[keep]
                    values = values[keep]
                    if sel.size == 0:
                        return
                if k.transform is not None:
                    values = np.asarray(k.transform(values, nodes))
            source_pos, edge_ids = ctx.expand_edges(ctx.local_ids[sel])
            if k.charge_per_edge:
                ctx.charge(int(k.charge_per_edge * edge_ids.size))
            if edge_ids.size == 0:
                return
            threads = ctx.threads[sel][source_pos]
            dst = ctx.edge_dst(edge_ids)
            if k.const_value is not None:
                pushes = np.full(edge_ids.size, k.const_value)
            else:
                pushes = values[source_pos]
            if k.edge_filter is not None:
                keep = np.asarray(k.edge_filter(nodes[source_pos], dst))
                if not np.all(keep):
                    threads = threads[keep]
                    dst = dst[keep]
                    pushes = pushes[keep]
                    edge_ids = edge_ids[keep]
                    if edge_ids.size == 0:
                        return
            if k.with_weight == "add":
                weights = (
                    np.ones(edge_ids.size, dtype=np.float64)
                    if k.unit_weights
                    else ctx.edge_weights(edge_ids)
                )
                pushes = pushes + weights
            k.target.reduce_bulk(ctx.host, threads, dst, pushes, k.op)

        return body

    # --------------------------------------------- NodeUpdate, both forms

    def _node_update_scalar(self, k: NodeUpdate) -> Callable[[OperatorContext], None]:
        value_of = _elementwise(k.value)

        def body(ctx: OperatorContext) -> None:
            if k.charge_per_node:
                ctx.charge(k.charge_per_node)
            k.target.reduce(ctx.host, ctx.thread, ctx.node, value_of(ctx.node), k.op)

        return body

    def _node_update_bulk(self, k: NodeUpdate) -> Callable[[BulkOperatorContext], None]:
        def body(ctx: BulkOperatorContext) -> None:
            if k.charge_per_node:
                ctx.charge(int(k.charge_per_node * ctx.node_ids.size))
            if ctx.node_ids.size == 0:
                return
            values = np.asarray(k.value(ctx.node_ids))
            k.target.reduce_bulk(ctx.host, ctx.threads, ctx.node_ids, values, k.op)

        return body

    # ------------------------------------------- DegreeReduce, both forms

    def _degree_reduce_scalar(
        self, k: DegreeReduce
    ) -> Callable[[OperatorContext], None]:
        def body(ctx: OperatorContext) -> None:
            local_degree = ctx.part.degree(ctx.local)
            if local_degree:
                k.target.reduce(ctx.host, ctx.thread, ctx.node, local_degree, SUM)

        return body

    def _degree_reduce_bulk(
        self, k: DegreeReduce
    ) -> Callable[[BulkOperatorContext], None]:
        def body(ctx: BulkOperatorContext) -> None:
            degs = ctx.degrees()
            sel = np.flatnonzero(degs > 0)
            if sel.size:
                k.target.reduce_bulk(
                    ctx.host, ctx.threads[sel], ctx.node_ids[sel], degs[sel], SUM
                )

        return body


__all__ = ["Executor"]
