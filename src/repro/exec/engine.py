"""Pluggable execution engines: who owns the drive loop.

The :class:`~repro.exec.executor.Executor` owns kernel dispatch (scalar vs
bulk bodies, codegen, the host-shard pool endpoints); an :class:`Engine`
owns *when* those kernels run - round scheduling, convergence, quiesce,
checkpoint hooks. Two engines ship:

* :class:`BSPEngine` - the bulk-synchronous loop, extracted verbatim from
  the pre-engine ``Executor``: one pass over the plan's steps per round,
  sync collectives as barriers, ``run_recoverable_loop`` for
  checkpoint/recovery, the self-healing supervisor for ``jobs=N``. It is
  the byte-identity oracle: running through it produces bit-for-bit the
  same counters, traffic, modeled seconds and values as before the
  extraction, for every app x backend x jobs x fault plan.

* :class:`AsyncEngine` - GraphLab-style vertex-consistency execution with
  priority/delta scheduling: a per-node residual priority queue, the
  highest-residual nodes processed first in configurable chunk sizes, no
  global barrier, eager cross-host update messages, and owner-serialized
  apply order inside each chunk so runs are deterministic for a fixed
  seed. Plans opt in by declaring :class:`~repro.exec.plan.ResidualDecl`
  on their :class:`~repro.exec.plan.EdgePush` kernel; async results are
  verified by value-equivalence (``verify.check_equivalent_values``)
  against the BSP oracle, not byte-identity - chunk scheduling visits a
  different update order than rounds do.

The async engine is the quantitative answer to the paper's Section 4.1
rejection of asynchrony: ``benchmarks/bench_engine_comparison.py`` runs
both engines on PR/SSSP/CC-LP across all four partitioning policies and
reports updates-to-convergence and modeled seconds side by side.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.cluster.metrics import PhaseKind
from repro.core.propmap import KEY_BYTES
from repro.exec.plan import (
    CmpFilter,
    EdgePush,
    OperatorStep,
    Plan,
    ResidualDecl,
    apply_value_filter,
)
from repro.exec.pool import HEALABLE_ERRORS
from repro.faults.recovery import run_recoverable_loop
from repro.runtime.engine import NonQuiescenceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executor import Executor


class UnsupportedPlanError(ValueError):
    """The selected engine cannot execute this plan."""


class Engine:
    """The drive-loop interface: schedules a plan's kernels to completion.

    Engines borrow everything stateful from their executor (cluster, pool,
    compiled plans); they own only control flow. ``run`` executes a whole
    plan and returns completed rounds (0 for ``once`` plans); ``drive`` is
    the loop body re-entry point the host-shard pool uses to replay or
    resume a plan on worker processes.
    """

    name = "?"

    def __init__(self, executor: "Executor") -> None:
        self.executor = executor

    def run(self, plan: Plan) -> int:
        raise NotImplementedError

    def drive(self, plan: Plan, resume_rounds: int | None = None) -> int:
        raise NotImplementedError


class BSPEngine(Engine):
    """Today's bulk-synchronous loop, extracted unchanged from ``Executor``.

    Every method body here is a pure move: the byte-identity suites (bulk,
    parallel, chaos, codegen equivalence) pass unmodified against it, and
    ``--engine bsp`` reports are ``cmp``-equal to pre-refactor output.
    """

    name = "bsp"

    def run(self, plan: Plan) -> int:
        """Execute a plan; returns completed rounds (0 for ``once`` plans)."""
        executor = self.executor
        pool = executor._ensure_pool(plan)
        # pool.active means this is a nested run launched from a HostStep
        # of an in-flight parallel run: it replays replicated on every
        # process (the outer run's replay reaches this same call), so it
        # must not re-frame the epoch protocol.
        if pool is not None and not pool.active and pool.begin_run(plan):
            # The worker group is persistent and warm: begin_run reuses the
            # forked workers when they already know this plan (epoch blob
            # resynchronizes their state), reforks when they cannot (new
            # plan: kernels close over lambdas and only fork inheritance
            # ships them), and end_run parks them for the next run.
            failed = True
            try:
                rounds = self.drive(plan)
                failed = False
                return rounds
            finally:
                pool.end_run(failed)
        return self.drive(plan)

    def drive(self, plan: Plan, resume_rounds: int | None = None) -> int:
        """The plan loop proper, replayed identically by every process of
        a parallel run (the pool endpoint decides shard vs replicated work
        per phase inside ``Executor._run_operator``). ``resume_rounds``
        re-enters an in-flight loop on a heal-time replacement worker (see
        :meth:`HostShardPool.heal`)."""
        executor = self.executor
        if plan.once:
            executor.cluster.loop_rounds = 0
            self._guarded_round(plan)
            return 0
        quiesce = tuple(plan.quiesce)
        maps = tuple(plan.maps) if plan.maps else quiesce

        def before_round() -> None:
            for prop in quiesce:
                prop.reset_updated()

        def converged() -> bool:
            if quiesce and not any(prop.is_updated() for prop in quiesce):
                return True
            if plan.converged is not None:
                return bool(plan.converged())
            return False

        on_max_rounds = None
        if plan.raise_on_max_rounds:
            names = [prop.name for prop in (quiesce or maps)]
            loop_label = plan.loop_label

            def on_max_rounds(rounds: int) -> Exception:
                return NonQuiescenceError(rounds, names, loop=loop_label)

        return run_recoverable_loop(
            executor.cluster,
            list(maps),
            lambda: self._guarded_round(plan),
            converged=converged,
            before_round=before_round,
            max_rounds=plan.max_rounds,
            advance_rounds=plan.advance_rounds,
            extra_snapshot=plan.extra_snapshot,
            extra_restore=plan.extra_restore,
            on_max_rounds=on_max_rounds,
            resume_rounds=resume_rounds,
        )

    def _guarded_round(self, plan: Plan) -> None:
        """One round, wrapped in the self-healing supervisor when it is on.

        The coordinator snapshots the round-start state, runs the round,
        and on a healable failure (:data:`~repro.exec.pool.HEALABLE_ERRORS`)
        asks the pool to heal - reap the group, roll back to the snapshot,
        re-fork or reshard - then retries the round. When resharding
        degrades the pool to a single shard the retry runs serially, which
        is the ``jobs=1`` oracle. Workers never guard (the coordinator
        replaces the whole group); with healing off this is exactly
        ``run_round``.
        """
        executor = self.executor
        pool = executor._pool
        if (
            pool is None
            or pool.is_worker
            or not pool.healing
            or not pool.active
            or pool._guard_depth
        ):
            executor.run_round(plan)
            return
        pool._guard_depth += 1
        try:
            snapshot = pool.snapshot_round(plan)
            while True:
                try:
                    executor.run_round(plan)
                    return
                except HEALABLE_ERRORS as err:
                    pool.heal(err, plan, snapshot)
                    if not pool.active:
                        # Degraded to the serial path mid-run: finish this
                        # round (and the rest of the loop) as jobs=1.
                        executor.run_round(plan)
                        return
        finally:
            pool._guard_depth = 0


class AsyncEngine(Engine):
    """Priority/delta asynchronous execution (Distributed GraphLab style).

    Highest-residual-first: a global priority queue over node residuals,
    popped in chunks of ``chunk_size``; each chunk opens one barrier-free
    ``ASYNC_COMPUTE`` phase whose updates apply immediately (later nodes
    of the same chunk see earlier nodes' writes - vertex consistency).
    Cross-host updates send one eager message each, priced by the cost
    model with communication overlapped behind compute (no sync phases
    exist at all). Inside a chunk, applies are serialized by owner host
    (then node id), so a run is a pure function of the plan: deterministic
    for a fixed seed.

    ``once`` plans (warm-ups, host-driven phase groups) delegate to the
    BSP engine unchanged; loop plans must carry a
    :class:`~repro.exec.plan.ResidualDecl` on their ``EdgePush`` kernel.
    """

    name = "async"

    def __init__(
        self, executor: "Executor", chunk_size: int = 64, seed: int = 0
    ) -> None:
        super().__init__(executor)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)
        # Scheduling is fully deterministic (ties break by node id), so the
        # seed only names the run; it is accepted for API symmetry with
        # samplers that could randomize chunk composition.
        self.seed = int(seed)
        self._bsp = BSPEngine(executor)
        # Updates-to-convergence instrumentation for the engine-comparison
        # bench: node applies (processed pops) and chunks of the last run.
        self.last_updates = 0
        self.last_chunks = 0

    # ------------------------------------------------------------ dispatch

    def run(self, plan: Plan) -> int:
        if plan.once:
            # Warm-ups and per-round phase groups are one-shot BSP phase
            # sequences; there is no loop for the async scheduler to own.
            return self._bsp.run(plan)
        if self.executor.cluster.faults is not None:
            raise UnsupportedPlanError(
                "the async engine does not run under fault injection; "
                "checkpoint/recovery is round-structured (use engine='bsp')"
            )
        kernel = self._residual_kernel(plan)
        decl = kernel.residual
        value_map = decl.value if decl.value is not None else kernel.target
        if not value_map.variant.uses_gar:
            raise UnsupportedPlanError(
                f"async execution needs the GAR master layout; map "
                f"{value_map.name!r} uses variant {value_map.variant.label!r}"
            )
        if decl.mode == "monotone":
            return self._run_monotone(plan, kernel, decl)
        return self._run_accumulate(plan, kernel, decl)

    def drive(self, plan: Plan, resume_rounds: int | None = None) -> int:
        # Worker replay is a BSP-pool concern; the async engine never forks.
        return self._bsp.drive(plan, resume_rounds)

    def _residual_kernel(self, plan: Plan) -> EdgePush:
        for step in plan.steps:
            if isinstance(step, OperatorStep) and isinstance(
                step.operator.kernel, EdgePush
            ):
                if step.operator.kernel.residual is not None:
                    return step.operator.kernel
        raise UnsupportedPlanError(
            f"plan {plan.name!r} declares no residual on any EdgePush "
            "kernel; only residual-declared plans can run asynchronously "
            "(see ResidualDecl / 'repro plan --json')"
        )

    # ----------------------------------------------------------- machinery

    def _operator_label(self, plan: Plan, kernel: EdgePush) -> str:
        for step in plan.steps:
            if isinstance(step, OperatorStep) and step.operator.kernel is kernel:
                return step.operator.label
        return plan.name

    def _chunk_phase(self, plan: Plan, operator: str):
        return self.executor.cluster.phase(
            PhaseKind.ASYNC_COMPUTE,
            label=f"{plan.name}:chunk",
            operator=operator,
        )

    def _pop_chunk(
        self,
        heap: list[tuple[float, int]],
        priority: np.ndarray,
        owner: np.ndarray,
    ) -> list[int]:
        """Up to ``chunk_size`` live (non-stale) nodes, highest residual
        first, re-serialized by (owner host, node id) for the apply order."""
        nodes: list[int] = []
        while heap and len(nodes) < self.chunk_size:
            neg, node = heapq.heappop(heap)
            # Lazy deletion: an entry is live only while it matches the
            # node's current priority; superseded entries are skipped.
            if -neg == priority[node] and priority[node] > 0.0:
                priority[node] = 0.0
                nodes.append(node)
        nodes.sort(key=lambda n: (int(owner[n]), n))
        return nodes

    def _finish(
        self,
        plan: Plan,
        operator: str,
        value_map,
        values: np.ndarray,
        chunks: int,
    ) -> int:
        """Materialize the final values into the map's masters (one last
        barrier-free phase) so ``snapshot()`` sees the async fixed point."""
        executor = self.executor
        cluster = executor.cluster
        pgraph = plan.pgraph
        with cluster.phase(
            PhaseKind.ASYNC_COMPUTE,
            label=f"{plan.name}:materialize",
            operator=operator,
        ) as record:
            record.chunk = chunks
            for host in range(cluster.num_hosts):
                keys = pgraph.parts[host].masters_global
                if keys.size == 0:
                    continue
                cluster.counters(host).materialize_ops += int(keys.size)
                value_map._set_bulk(host, keys, values[keys])
        self.last_chunks = chunks + 1
        # Rounds in the result schema mean "scheduler steps": chunks here.
        return chunks + 1

    # ------------------------------------------------- monotone (SSSP, CC)

    def _run_monotone(self, plan: Plan, kernel: EdgePush, decl: ResidualDecl) -> int:
        """Label-correcting relaxation: values improve monotonically under
        the kernel's reducer, residual = size of the last improvement."""
        executor = self.executor
        cluster = executor.cluster
        pgraph = plan.pgraph
        graph = pgraph.graph
        owner = pgraph.owner
        indptr, indices = graph.indptr, graph.indices
        weights = graph.weights
        op = kernel.op
        target = kernel.target
        values = np.array(target.snapshot_array(), copy=True)
        num_nodes = int(values.size)
        # Initial frontier: every node whose value is pushable. Residuals
        # start at +inf (nothing has been processed yet); ties and equal
        # priorities break by node id via the heap tuple. A declarative
        # value filter (CmpFilter) seeds the frontier as one compiled
        # mask over the whole value array; an opaque callable keeps the
        # per-node probe (its scalar contract is all we may assume).
        priority = np.zeros(num_nodes, dtype=np.float64)
        vf = kernel.value_filter
        if vf is None or isinstance(vf, CmpFilter):
            if vf is None:
                seed = np.arange(num_nodes, dtype=np.int64)
            else:
                all_nodes = np.arange(num_nodes, dtype=np.int64)
                keep = np.asarray(apply_value_filter(vf, values, all_nodes))
                seed = np.flatnonzero(keep)
            priority[seed] = np.inf
            heap: list[tuple[float, int]] = [
                (-np.inf, int(node)) for node in seed
            ]
        else:
            heap = []
            for node in range(num_nodes):
                if not bool(vf(values[node])):
                    continue
                priority[node] = np.inf
                heap.append((-np.inf, node))
        heapq.heapify(heap)
        self.last_updates = 0
        chunks = 0
        while heap:
            nodes = self._pop_chunk(heap, priority, owner)
            if not nodes:
                break
            with self._chunk_phase(
                plan, self._operator_label(plan, kernel)
            ) as record:
                record.chunk = chunks
                for u in nodes:
                    host = int(owner[u])
                    counters = cluster.counters(host)
                    counters.node_iters += 1
                    if kernel.charge_per_source:
                        counters.local_ops += kernel.charge_per_source
                    self.last_updates += 1
                    value = values[u]
                    # Per-pop, not chunk-prefiltered: values improve
                    # mid-chunk (vertex consistency), so a node failing
                    # the filter at chunk start can pass by its pop.
                    if kernel.value_filter is not None and not bool(
                        apply_value_filter(kernel.value_filter, value, u)
                    ):
                        continue
                    for edge in range(int(indptr[u]), int(indptr[u + 1])):
                        counters.edge_iters += 1
                        if kernel.charge_per_edge:
                            counters.local_ops += kernel.charge_per_edge
                        dst = int(indices[edge])
                        if kernel.edge_filter is not None and not bool(
                            kernel.edge_filter(u, dst)
                        ):
                            continue
                        candidate = value
                        if kernel.with_weight == "add":
                            weight = (
                                1.0
                                if kernel.unit_weights or weights is None
                                else float(weights[edge])
                            )
                            candidate = value + weight
                        old = values[dst]
                        new = op(old, candidate)
                        if new == old:
                            continue
                        # The apply happens at the destination's owner;
                        # a foreign improvement is one eager message.
                        dst_owner = int(owner[dst])
                        counters.reduce_calls += 1
                        if dst_owner != host:
                            cluster.network.send(
                                host,
                                dst_owner,
                                KEY_BYTES + target.value_nbytes,
                            )
                        cluster.counters(dst_owner).local_ops += 1
                        values[dst] = new
                        gain = float(abs(old - new)) if old != np.inf else np.inf
                        if gain > priority[dst]:
                            priority[dst] = gain
                            heapq.heappush(heap, (-gain, dst))
            chunks += 1
        return self._finish(
            plan, self._operator_label(plan, kernel), target, values, chunks
        )

    # ------------------------------------------------ accumulate (PageRank)

    def _run_accumulate(
        self, plan: Plan, kernel: EdgePush, decl: ResidualDecl
    ) -> int:
        """Delta-style mass propagation: processing a node folds its
        residual into its value and pushes ``transform(residual, node)``
        along each out-edge; zero-out-degree mass pools and is flushed
        uniformly. Stops when the remaining residual mass (queue + pool)
        falls below ``decl.tolerance``."""
        executor = self.executor
        cluster = executor.cluster
        pgraph = plan.pgraph
        graph = pgraph.graph
        owner = pgraph.owner
        indptr, indices = graph.indptr, graph.indices
        value_map = decl.value
        num_nodes = pgraph.num_nodes
        all_nodes = np.arange(num_nodes, dtype=np.int64)
        values = np.asarray(decl.init_value(all_nodes), dtype=np.float64).copy()
        residual = np.asarray(
            decl.init_residual(all_nodes), dtype=np.float64
        ).copy()
        degrees = np.diff(indptr)
        # Below this per-node residual a node is not worth scheduling: the
        # unscheduled leftover across all nodes stays under the tolerance.
        threshold = decl.tolerance / max(num_nodes, 1)
        priority = np.zeros(num_nodes, dtype=np.float64)
        heap: list[tuple[float, int]] = []
        for node in range(num_nodes):
            if residual[node] > threshold:
                priority[node] = residual[node]
                heap.append((-residual[node], node))
        heapq.heapify(heap)
        pool_mass = 0.0
        label = self._operator_label(plan, kernel)
        self.last_updates = 0
        chunks = 0
        while True:
            nodes = self._pop_chunk(heap, priority, owner)
            if not nodes:
                # Queue drained: flush the dangling pool uniformly if it
                # still carries meaningful mass, else converge.
                if decl.dangling != "uniform" or pool_mass < decl.tolerance:
                    break
                with self._chunk_phase(plan, label) as record:
                    record.chunk = chunks
                    share = pool_mass / max(num_nodes, 1)
                    pool_mass = 0.0
                    residual += share
                    for host in range(cluster.num_hosts):
                        masters = pgraph.parts[host].masters_global
                        cluster.counters(host).local_ops += int(masters.size)
                    for node in np.flatnonzero(residual > threshold).tolist():
                        if residual[node] > priority[node]:
                            priority[node] = residual[node]
                            heapq.heappush(heap, (-residual[node], node))
                chunks += 1
                continue
            with self._chunk_phase(plan, label) as record:
                record.chunk = chunks
                for u in nodes:
                    mass = residual[u]
                    residual[u] = 0.0
                    if mass <= 0.0:
                        continue
                    host = int(owner[u])
                    counters = cluster.counters(host)
                    counters.node_iters += 1
                    if kernel.charge_per_source:
                        counters.local_ops += kernel.charge_per_source
                    self.last_updates += 1
                    values[u] += mass
                    if degrees[u] == 0:
                        if decl.dangling == "uniform":
                            pool_mass += decl.dangling_scale * mass
                        continue
                    if kernel.transform is not None:
                        push = float(
                            np.asarray(
                                kernel.transform(
                                    np.asarray([mass]),
                                    np.asarray([u], dtype=np.int64),
                                )
                            )[0]
                        )
                    else:
                        push = mass
                    for edge in range(int(indptr[u]), int(indptr[u + 1])):
                        counters.edge_iters += 1
                        if kernel.charge_per_edge:
                            counters.local_ops += kernel.charge_per_edge
                        dst = int(indices[edge])
                        dst_owner = int(owner[dst])
                        counters.reduce_calls += 1
                        if dst_owner != host:
                            cluster.network.send(
                                host,
                                dst_owner,
                                KEY_BYTES + value_map.value_nbytes,
                            )
                        cluster.counters(dst_owner).local_ops += 1
                        residual[dst] += push
                        if (
                            residual[dst] > threshold
                            and residual[dst] > priority[dst]
                        ):
                            priority[dst] = residual[dst]
                            heapq.heappush(heap, (-residual[dst], dst))
            chunks += 1
        return self._finish(plan, label, value_map, values, chunks)


ENGINES = ("bsp", "async")


def make_engine(executor: "Executor", name: str, **options: Any) -> Engine:
    """Resolve an engine by name for an executor."""
    if name == "bsp":
        return BSPEngine(executor)
    if name == "async":
        return AsyncEngine(executor, **options)
    raise ValueError(f"unknown engine {name!r}; have {ENGINES}")


__all__ = [
    "Engine",
    "BSPEngine",
    "AsyncEngine",
    "UnsupportedPlanError",
    "ENGINES",
    "make_engine",
]
