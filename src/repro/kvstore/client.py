"""The client side: modulo-hashed routing with per-operation messages.

Every operation issued "from" a host records request and response messages
on the simulated network, and charges the string-key cost the paper blames
in Section 6.4 (Memcached requires string keys instead of Kimbap's integer
keys). ``mget`` batches keys per destination server in fixed-size chunks -
better than per-key gets, but still far chattier than Kimbap's one message
per host pair per round.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.cluster.cluster import Cluster
from repro.kvstore.store import CasResult, KvServer

KEY_OVERHEAD_BYTES = 24  # string key + memcached frame header
VALUE_BYTES = 16  # value + version (CAS unique) token
MGET_CHUNK = 32


class KvClient:
    """Routes operations to the server owning each key (modulo hashing)."""

    def __init__(self, cluster: Cluster, servers: list[KvServer] | None = None) -> None:
        self.cluster = cluster
        self.servers = servers or [KvServer(i) for i in range(cluster.num_hosts)]
        if len(self.servers) != cluster.num_hosts:
            raise ValueError("need exactly one server per host")

    def server_of(self, key: str) -> int:
        # crc32 keeps routing deterministic across processes (Python's str
        # hash is salted per process).
        return zlib.crc32(key.encode()) % len(self.servers)

    def _key_bytes(self, key: str) -> int:
        return len(key) + KEY_OVERHEAD_BYTES

    def _charge_key_op(self, host: int, count: int = 1) -> None:
        self.cluster.counters(host).kv_string_ops += count

    def _request(self, host: int, server: int, nbytes: int) -> None:
        """Issue one request message, preceded by any injected timeouts.

        With a fault injector installed, each transient timeout costs one
        extra request message (the client-side retry loop re-sends after
        its timeout expires); without one this is a single plain send.
        """
        faults = self.cluster.faults
        if faults is not None:
            for _ in range(faults.kv_retries(host, server)):
                self.cluster.network.send(host, server, nbytes)
        self.cluster.network.send(host, server, nbytes)

    # -- operations, all issued from a given host ---------------------------

    def get(self, host: int, key: str) -> tuple[Any, int] | None:
        server = self.server_of(key)
        self._charge_key_op(host)
        self._request(host, server, self._key_bytes(key))
        result = self.servers[server].get(key)
        self.cluster.network.send(server, host, VALUE_BYTES)
        return result

    def mget(self, host: int, keys: list[str]) -> dict[str, tuple[Any, int]]:
        """Fetch many keys; one request/response message pair per chunk per server."""
        by_server: dict[int, list[str]] = {}
        for key in keys:
            by_server.setdefault(self.server_of(key), []).append(key)
        found: dict[str, tuple[Any, int]] = {}
        for server, server_keys in by_server.items():
            for start in range(0, len(server_keys), MGET_CHUNK):
                chunk = server_keys[start : start + MGET_CHUNK]
                self._charge_key_op(host, len(chunk))
                self._request(
                    host, server, sum(self._key_bytes(k) for k in chunk)
                )
                response = self.servers[server].mget(chunk)
                self.cluster.network.send(server, host, VALUE_BYTES * max(len(response), 1))
                found.update(response)
        return found

    def set(self, host: int, key: str, value: Any) -> int:
        server = self.server_of(key)
        self._charge_key_op(host)
        self._request(host, server, self._key_bytes(key) + VALUE_BYTES)
        version = self.servers[server].set(key, value)
        self.cluster.network.send(server, host, 8)
        return version

    def add(self, host: int, key: str, value: Any) -> bool:
        server = self.server_of(key)
        self._charge_key_op(host)
        self._request(host, server, self._key_bytes(key) + VALUE_BYTES)
        stored = self.servers[server].add(key, value)
        self.cluster.network.send(server, host, 8)
        return stored

    def cas(self, host: int, key: str, value: Any, version: int) -> CasResult:
        server = self.server_of(key)
        self._charge_key_op(host)
        self._request(host, server, self._key_bytes(key) + VALUE_BYTES)
        result = self.servers[server].cas(key, value, version)
        self.cluster.network.send(server, host, 8)
        return result

    def flush_all(self) -> None:
        for server in self.servers:
            server.flush()
