"""A Memcached-like distributed in-memory key-value store.

Substrate for the paper's MC runtime variant (Section 6.4): string keys,
modulo hashing across servers, per-operation messages, get/mget/set and
compare-and-swap. One server runs on every simulated host, exactly as the
paper co-locates a Memcached server and client per host.
"""

from repro.kvstore.store import KvServer, CasResult
from repro.kvstore.client import KvClient

__all__ = ["KvServer", "KvClient", "CasResult"]
