"""The server side: a versioned dictionary with CAS semantics."""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Any


class CasResult(enum.Enum):
    STORED = "stored"
    EXISTS = "exists"  # version mismatch: somebody raced us
    NOT_FOUND = "not_found"


@dataclass
class _Entry:
    value: Any
    version: int


@dataclass
class KvServer:
    """One host's key-value store shard.

    Versions increment on every successful write, which is what makes
    compare-and-swap detect concurrent reducers (the paper's reduction
    emulation retries CAS until it succeeds).
    """

    server_id: int
    _data: dict[str, _Entry] = field(default_factory=dict)

    def get(self, key: str) -> tuple[Any, int] | None:
        entry = self._data.get(key)
        if entry is None:
            return None
        return entry.value, entry.version

    def mget(self, keys: list[str]) -> dict[str, tuple[Any, int]]:
        result = {}
        for key in keys:
            entry = self._data.get(key)
            if entry is not None:
                result[key] = (entry.value, entry.version)
        return result

    def set(self, key: str, value: Any) -> int:
        entry = self._data.get(key)
        if entry is None:
            self._data[key] = _Entry(value, 1)
            return 1
        entry.value = value
        entry.version += 1
        return entry.version

    def add(self, key: str, value: Any) -> bool:
        """Store only if absent (memcached ``add``); False if present."""
        if key in self._data:
            return False
        self._data[key] = _Entry(value, 1)
        return True

    def cas(self, key: str, value: Any, version: int) -> CasResult:
        entry = self._data.get(key)
        if entry is None:
            return CasResult.NOT_FOUND
        if entry.version != version:
            return CasResult.EXISTS
        entry.value = value
        entry.version += 1
        return CasResult.STORED

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def scan_prefix(self, prefix: str):
        """Iterate live ``(key, value)`` pairs under ``prefix`` (no copy).

        One traversal of the shard instead of one formatted-key probe per
        possible id; snapshot() uses this to read a whole map back.
        """
        for key, entry in self._data.items():
            if key.startswith(prefix):
                yield key, entry.value

    # -- checkpointing (repro.faults) ---------------------------------------

    def count_prefix(self, prefix: str) -> int:
        """How many live keys belong to ``prefix`` (one map's shard size)."""
        return sum(1 for key in self._data if key.startswith(prefix))

    def snapshot_prefix(self, prefix: str) -> dict[str, tuple[Any, int]]:
        """Copy every (value, version) under ``prefix``; not charged (the
        checkpoint phase prices serialization via the cluster counters)."""
        return {
            key: (copy.deepcopy(entry.value), entry.version)
            for key, entry in self._data.items()
            if key.startswith(prefix)
        }

    def restore_prefix(
        self, prefix: str, snapshot: dict[str, tuple[Any, int]]
    ) -> None:
        """Drop every key under ``prefix`` and reinstate the snapshot."""
        for key in [k for k in self._data if k.startswith(prefix)]:
            del self._data[key]
        for key, (value, version) in snapshot.items():
            self._data[key] = _Entry(copy.deepcopy(value), version)

    def flush(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)
