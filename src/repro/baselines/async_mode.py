"""Asynchronous execution baseline: the design Kimbap rejected (Section 4.1).

"An asynchronous execution model may hide communication overheads, but may
generate a large number of messages, generate duplicate messages, and
yield high materialization overheads. Kimbap instead batches and
de-duplicates messages..."

This module implements that rejected alternative for label-propagation
connected components, faithfully to the quote:

* every reduction that improves a remote node's value sends an *immediate*
  message to the owner (no per-round batching: one message per update);
* the owner eagerly forwards every accepted update to all mirror hosts
  (again one message per mirror per update - duplicates included, since
  the same label can be forwarded repeatedly along different paths);
* each received update pays a materialization cost on arrival (no bulk
  sorted-array construction to amortize into).

Asynchrony converges in fewer sweeps (updates are visible immediately),
but the per-update messaging dwarfs the savings - which is the paper's
argument, and what `benchmarks/bench_ablations.py` measures.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.faults.recovery import run_recoverable_loop
from repro.partition.base import PartitionedGraph

UPDATE_BYTES = 16  # key + value, one per message


def async_cc_lp(cluster: Cluster, pgraph: PartitionedGraph) -> AlgorithmResult:
    """Asynchronous label propagation with eager per-update messaging.

    The sweep loop rides on the shared :func:`run_recoverable_loop`
    skeleton (the same driver the engine layer uses) rather than a private
    ``while changed`` loop; ``advance_rounds=False`` keeps the emitted
    phases byte-identical to the historical baseline.
    """
    graph = pgraph.graph
    # canonical labels at owners; each host also has a local cache of every
    # proxy it hosts
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    caches = [
        {int(g): int(g) for g in part.local_to_global} for part in pgraph.parts
    ]
    owner = pgraph.owner
    state = {"changed": True}

    def sweep() -> None:
        changed = False
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="async_lp"):
            for part in pgraph.parts:
                host = part.host_id
                counters = cluster.counters(host)
                cache = caches[host]
                for local in range(part.num_local):
                    node = int(part.local_to_global[local])
                    counters.node_iters += 1
                    node_label = cache[node]
                    for edge in part.edge_range(local):
                        counters.edge_iters += 1
                        dst = int(part.local_to_global[part.edge_dst(edge)])
                        if cache[dst] <= node_label:
                            continue
                        # immediate message to the destination's owner
                        dst_owner = int(owner[dst])
                        cluster.network.send(host, dst_owner, UPDATE_BYTES)
                        counters.local_ops += 1
                        if labels[dst] > node_label:
                            labels[dst] = node_label
                            changed = True
                            caches[dst_owner][dst] = node_label
                            cluster.counters(dst_owner).materialize_ops += 1
                            # eager forwarding to every mirror host; the
                            # same node's label may be forwarded many times
                            # per sweep (the duplicate messages the paper
                            # warns about)
                            for mirror_part in pgraph.parts:
                                if mirror_part.host_id == dst_owner:
                                    continue
                                if dst in mirror_part.global_to_local:
                                    cluster.network.send(
                                        dst_owner, mirror_part.host_id, UPDATE_BYTES
                                    )
                                    caches[mirror_part.host_id][dst] = node_label
                                    cluster.counters(
                                        mirror_part.host_id
                                    ).materialize_ops += 1
                        cache[dst] = min(cache[dst], node_label)
        state["changed"] = changed

    sweeps = run_recoverable_loop(
        cluster,
        [],
        sweep,
        converged=lambda: not state["changed"],
        advance_rounds=False,
    )
    values = {node: int(labels[node]) for node in range(graph.num_nodes)}
    return AlgorithmResult(name="Async-LP", values=values, rounds=sweeps)
