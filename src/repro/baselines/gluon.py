"""Gluon-like adjacent-vertex engine (Dathathri et al. [27]) with CC-LP.

Gluon's execution differs from Kimbap's in how reductions are absorbed
(Section 4.1): mirrors are always cached and operators reduce *directly
into the cached values with atomics* during compute - no thread-local maps
and no combining step. Atomic min/max reductions rarely retry in practice
(a failed CAS whose value is already better simply drops out), so the
conflict accounting here only charges when a cross-thread update actually
changes the slot. Communication uses the partitioning-invariant elisions:
only updated values are reduced to masters (temporal invariant), and
broadcast is elided for mirrors a push-style operator never reads.

The paper's claim to reproduce: Kimbap's CC-LP is *comparable* to Gluon's
(Figures 9c/10c) - the compiler's pinned-mirror specialization closes the
gap that request/response would otherwise open.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN, ReduceOp
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for


class GluonAtomicReduction:
    """In-place atomic reductions into the cached proxy values.

    Unlike :class:`~repro.core.reduction.SharedMapReduction` (whose hash
    map slots ping-pong on every cross-thread touch), Gluon reduces into a
    dense per-proxy array with compare-exchange loops; an attempt whose
    value no longer improves the slot costs nothing extra. Conflicts are
    therefore charged only for cross-thread updates that *change* the
    value - the reason Gluon stays fast on power-law graphs.
    """

    conflict_free = False

    def __init__(self, cluster: Cluster, host_id: int) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.map: dict[int, Any] = {}
        self._last_writer: dict[int, int] = {}

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        counters.cas_attempts += 1
        old = self.map.get(key)
        new = value if old is None else op(old, value)
        if new != old:
            previous_writer = self._last_writer.get(key)
            if previous_writer is not None and previous_writer != thread:
                counters.cas_conflicts += 1
            self.map[key] = new
            self._last_writer[key] = thread

    def pending(self) -> int:
        return len(self.map)

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        del op
        combined = self.map
        self.map = {}
        self._last_writer.clear()
        return combined


def make_gluon_map(
    cluster: Cluster, pgraph: PartitionedGraph, name: str, value_nbytes: int = 8
) -> NodePropMap:
    """A node-property map wired the Gluon way: GAR-style storage (Gluon
    also keeps masters + mirrors in dense local arrays) with in-place
    atomic reduction instead of thread-local maps."""
    prop = NodePropMap(
        cluster, pgraph, name, variant=RuntimeVariant.KIMBAP, value_nbytes=value_nbytes
    )
    prop.reductions = [
        GluonAtomicReduction(cluster, host) for host in range(cluster.num_hosts)
    ]
    return prop


def gluon_sssp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    source: int = 0,
    unit_weights: bool = False,
) -> AlgorithmResult:
    """Gluon's data-driven SSSP (push-style Bellman-Ford on atomics)."""
    import math

    dist = make_gluon_map(cluster, pgraph, "gluon_dist")
    dist.set_initial(lambda node: 0.0 if node == source else math.inf)
    dist.pin_mirrors(invariant="none")

    def round_body() -> None:
        def relax(ctx) -> None:
            if ctx.part.degree(ctx.local) == 0:
                return
            ctx.charge(1)
            if not dist.is_active(ctx.host, ctx.node):
                return
            my_dist = dist.read_local(ctx.host, ctx.local)
            if my_dist == math.inf:
                return
            for edge in ctx.edges():
                weight = 1.0 if unit_weights else ctx.edge_weight(edge)
                dist.reduce(
                    ctx.host, ctx.thread, ctx.edge_dst(edge), my_dist + weight, MIN
                )

        par_for(cluster, pgraph, "all", relax, label="gluon_sssp")
        dist.reduce_sync()
        dist.broadcast_sync()

    rounds = kimbap_while(dist, round_body)
    dist.unpin_mirrors()
    return AlgorithmResult(name="Gluon-SSSP", values=dist.snapshot(), rounds=rounds)


def gluon_bfs(
    cluster: Cluster, pgraph: PartitionedGraph, source: int = 0
) -> AlgorithmResult:
    import math

    result = gluon_sssp(cluster, pgraph, source=source, unit_weights=True)
    levels = {
        node: (int(v) if v != math.inf else math.inf)
        for node, v in result.values.items()
    }
    return AlgorithmResult(name="Gluon-BFS", values=levels, rounds=result.rounds)


def gluon_cc_lp(cluster: Cluster, pgraph: PartitionedGraph) -> AlgorithmResult:
    """Gluon's label-propagation connected components."""
    label = make_gluon_map(cluster, pgraph, "gluon_label")
    label.set_initial(lambda node: node)
    label.pin_mirrors(invariant="push")

    def round_body() -> None:
        def operator(ctx) -> None:
            if ctx.part.degree(ctx.local) == 0:
                return
            ctx.charge(1)
            if not label.is_active(ctx.host, ctx.node):
                return  # Gluon's worklist: only changed labels push
            node_label = label.read_local(ctx.host, ctx.local)
            for edge in ctx.edges():
                label.reduce(ctx.host, ctx.thread, ctx.edge_dst(edge), node_label, MIN)

        par_for(cluster, pgraph, "all", operator, label="gluon_lp")
        label.reduce_sync()
        label.broadcast_sync()

    rounds = kimbap_while(label, round_body)
    label.unpin_mirrors()
    return AlgorithmResult(
        name="Gluon-LP", values=label.snapshot(), rounds=rounds
    )
