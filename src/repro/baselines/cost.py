"""COST guardrail: single-threaded straight-loop baselines.

"Scalability! But at what COST?" (McSherry et al.) measures a parallel
system by the *Configuration that Outperforms a Single Thread*: a system
that only beats a competent single-threaded loop at high parallelism has
a high COST; one that never beats it has unbounded COST. The reproduction
applies the same discipline to its own execution backends: these
baselines are deliberately plain single-threaded Python loops over the
CSR arrays - no simulator, no metering, no per-phase bookkeeping - and
``benchmarks/bench_cost_baseline.py`` reports, per app, the cheapest
``(backend, jobs)`` configuration whose wall clock beats them.

Mirroring the COST paper's two baseline strengths, each app gets two:

* ``COST_STRAIGHT`` - the *same algorithm* the simulated app runs
  (round-based push loops), single-threaded. Beating it is the CI
  floor: a metered simulator that cannot outrun its own algorithm in a
  plain loop has no business claiming speedups.
* ``COST_BASELINES`` - the *tuned* baseline (Dijkstra, union-find;
  PageRank has no smarter sequential algorithm, so the straight loop
  is also the tuned one). The paper's headline finding is that parallel
  systems routinely lose to these; the bench reports that COST honestly
  and it may be unbounded.

The baselines double as value oracles: each returns the exact per-node
results the simulated apps must agree with (PageRank to a tight absolute
tolerance - the vectorized fold order differs - SSSP and CC exactly).
Workload graphs are symmetric (every edge stored in both directions), so
union-find component minima match label propagation, and Dijkstra's
fold-left path sums match the Bellman-Ford fixpoint for the non-negative
weights the generators produce.
"""

from __future__ import annotations

import heapq
import math

from repro.graph.csr import Graph

UNREACHED = math.inf


def cost_pagerank(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_rounds: int = 100,
) -> tuple[list[float], int]:
    """Single-threaded PageRank push loop; returns (ranks, rounds).

    Same update rule as :func:`repro.algorithms.pagerank.pagerank`:
    per-round push of ``damping * rank[u] / deg(u)`` along out-edges,
    dangling mass redistributed uniformly, L1-delta convergence. The
    per-node sums fold in adjacency order, so ranks agree with the
    simulator's to floating-point reassociation (compare with a tight
    absolute tolerance, not equality).
    """
    n = graph.num_nodes
    if n == 0:
        return [], 0
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    degrees = [indptr[v + 1] - indptr[v] for v in range(n)]
    base = (1.0 - damping) / n
    rank = [1.0 / n] * n
    rounds = 0
    for _ in range(max_rounds):
        contribution = [0.0] * n
        dangling = 0.0
        for u in range(n):
            deg = degrees[u]
            if deg == 0:
                dangling += rank[u]
                continue
            share = damping * rank[u] / deg
            for e in range(indptr[u], indptr[u + 1]):
                contribution[indices[e]] += share
        uniform = base + damping * dangling / n
        new_rank = [uniform + contribution[v] for v in range(n)]
        delta = 0.0
        for v in range(n):
            delta += abs(new_rank[v] - rank[v])
        rank = new_rank
        rounds += 1
        if delta < tolerance:
            break
    return rank, rounds


def cost_sssp(graph: Graph, source: int = 0) -> list[float]:
    """Single-threaded Dijkstra; returns per-node distances (inf =
    unreached). Exactly equal to the simulated SSSP fixpoint: both fold
    a path's weights left to right, and with non-negative weights the
    FP-min over paths is order-independent."""
    n = graph.num_nodes
    dist = [UNREACHED] * n
    if n == 0:
        return dist
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = (
        [1.0] * len(indices) if graph.weights is None else graph.weights.tolist()
    )
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def cost_sssp_rounds(graph: Graph, source: int = 0) -> list[float]:
    """Single-threaded Bellman-Ford label correction over an active
    frontier - the same round-based algorithm the simulated SSSP app
    runs, as one straight loop. Distances equal :func:`cost_sssp`'s
    exactly (both fold a path's weights left to right)."""
    n = graph.num_nodes
    dist = [UNREACHED] * n
    if n == 0:
        return dist
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = (
        [1.0] * len(indices) if graph.weights is None else graph.weights.tolist()
    )
    dist[source] = 0.0
    frontier = [source]
    queued = [False] * n
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            du = dist[u]
            for e in range(indptr[u], indptr[u + 1]):
                v = indices[e]
                nd = du + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    if not queued[v]:
                        queued[v] = True
                        next_frontier.append(v)
        for v in next_frontier:
            queued[v] = False
        frontier = next_frontier
    return dist


def cost_cc_rounds(graph: Graph) -> list[int]:
    """Single-threaded min-label propagation over an active frontier -
    the same round-based algorithm the simulated CC-LP app runs, as one
    straight loop. Labels equal :func:`cost_cc`'s exactly (minimum node
    id per component on the symmetric workload graphs)."""
    n = graph.num_nodes
    labels = list(range(n))
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    frontier = list(range(n))
    queued = [False] * n
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lu = labels[u]
            for e in range(indptr[u], indptr[u + 1]):
                v = indices[e]
                if lu < labels[v]:
                    labels[v] = lu
                    if not queued[v]:
                        queued[v] = True
                        next_frontier.append(v)
        for v in next_frontier:
            queued[v] = False
        frontier = next_frontier
    return labels


def cost_cc(graph: Graph) -> list[int]:
    """Single-threaded union-find connected components; returns per-node
    labels (the minimum node id of the component - exactly the CC-LP
    fixpoint on the symmetric workload graphs)."""
    n = graph.num_nodes
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    for u in range(n):
        for e in range(indptr[u], indptr[u + 1]):
            ru, rv = find(u), find(indices[e])
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)
    labels = [0] * n
    minimum = list(range(n))
    for v in range(n):
        root = find(v)
        if v < minimum[root]:
            minimum[root] = v
    for v in range(n):
        labels[v] = minimum[find(v)]
    return labels


COST_BASELINES = {
    "PR": cost_pagerank,
    "SSSP": cost_sssp,
    "CC-LP": cost_cc,
}

COST_STRAIGHT = {
    "PR": cost_pagerank,
    "SSSP": cost_sssp_rounds,
    "CC-LP": cost_cc_rounds,
}

__all__ = [
    "COST_BASELINES",
    "COST_STRAIGHT",
    "cost_cc",
    "cost_cc_rounds",
    "cost_pagerank",
    "cost_sssp",
    "cost_sssp_rounds",
]
