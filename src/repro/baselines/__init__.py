"""Faithful-mechanism reimplementations of the paper's comparison systems.

* :mod:`repro.baselines.vite` - Vite [38]: hand-optimized distributed
  Louvain. SGR communication, but a *single-threaded* inspection phase
  building one shared map per host, and atomic reductions from all threads
  into that shared map (the two mechanisms Section 6.4 blames for Vite
  losing to Kimbap by ~4x).
* :mod:`repro.baselines.gluon` - Gluon [27]: the state-of-the-art
  adjacent-vertex system. Mirrors always cached, reductions applied with
  atomics directly into the cached values during compute, partitioning-
  invariant communication elisions. Kimbap-LP must be comparable to it.
* :mod:`repro.baselines.cost` - the COST guardrail ("Scalability! But at
  what COST?"): single-threaded straight-loop implementations of
  PageRank/SSSP/CC - one per baseline strength the COST paper uses
  (same-algorithm and tuned) - that the simulator's parallel
  configurations are benchmarked against
  (``benchmarks/bench_cost_baseline.py``).
* :mod:`repro.baselines.galois` - Galois [64]: single-host shared-memory
  asynchronous runtime. In-place atomic updates are immediately visible,
  so pointer jumping converges in a handful of sweeps (Table 3's Galois
  wins on MSF/CC-SV) while Leiden's subcluster updates contend heavily
  (Table 3's Galois loss on LD).
"""

from repro.baselines.cost import (
    COST_BASELINES,
    COST_STRAIGHT,
    cost_cc,
    cost_cc_rounds,
    cost_pagerank,
    cost_sssp,
    cost_sssp_rounds,
)
from repro.baselines.vite import vite_louvain
from repro.baselines.gluon import gluon_bfs, gluon_cc_lp, gluon_sssp
from repro.baselines.async_mode import async_cc_lp
from repro.baselines.galois import (
    galois_cc_lp,
    galois_cc_sv,
    galois_louvain,
    galois_leiden,
    galois_mis,
    galois_msf,
)

__all__ = [
    "COST_BASELINES",
    "COST_STRAIGHT",
    "cost_cc",
    "cost_cc_rounds",
    "cost_pagerank",
    "cost_sssp",
    "cost_sssp_rounds",
    "vite_louvain",
    "gluon_cc_lp",
    "gluon_bfs",
    "gluon_sssp",
    "async_cc_lp",
    "galois_cc_lp",
    "galois_cc_sv",
    "galois_louvain",
    "galois_leiden",
    "galois_mis",
    "galois_msf",
]
