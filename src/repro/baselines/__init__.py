"""Faithful-mechanism reimplementations of the paper's comparison systems.

* :mod:`repro.baselines.vite` - Vite [38]: hand-optimized distributed
  Louvain. SGR communication, but a *single-threaded* inspection phase
  building one shared map per host, and atomic reductions from all threads
  into that shared map (the two mechanisms Section 6.4 blames for Vite
  losing to Kimbap by ~4x).
* :mod:`repro.baselines.gluon` - Gluon [27]: the state-of-the-art
  adjacent-vertex system. Mirrors always cached, reductions applied with
  atomics directly into the cached values during compute, partitioning-
  invariant communication elisions. Kimbap-LP must be comparable to it.
* :mod:`repro.baselines.galois` - Galois [64]: single-host shared-memory
  asynchronous runtime. In-place atomic updates are immediately visible,
  so pointer jumping converges in a handful of sweeps (Table 3's Galois
  wins on MSF/CC-SV) while Leiden's subcluster updates contend heavily
  (Table 3's Galois loss on LD).
"""

from repro.baselines.vite import vite_louvain
from repro.baselines.gluon import gluon_bfs, gluon_cc_lp, gluon_sssp
from repro.baselines.async_mode import async_cc_lp
from repro.baselines.galois import (
    galois_cc_lp,
    galois_cc_sv,
    galois_louvain,
    galois_leiden,
    galois_mis,
    galois_msf,
)

__all__ = [
    "vite_louvain",
    "gluon_cc_lp",
    "gluon_bfs",
    "gluon_sssp",
    "async_cc_lp",
    "galois_cc_lp",
    "galois_cc_sv",
    "galois_louvain",
    "galois_leiden",
    "galois_mis",
    "galois_msf",
]
