"""Vite-like distributed Louvain (Ghosh et al. [38]).

Same deterministic synchronous Louvain as :mod:`repro.algorithms.louvain`
(identical move rule, tie-breaks, and singleton guard, so the clustering
output matches Kimbap's LV exactly), but executed the way Vite executes it:

* **single-threaded inspection phase** per refinement round: one thread
  per host walks its edges to build the shared cluster-info map
  (``parallel=False`` - this serial section is why SGR-only beats Vite by
  ~3x in Figure 11);
* **execution phase**: all threads perform atomic reductions on the one
  shared map - concurrent same-cluster updates conflict, which is what CF
  avoids (hub-heavy graphs suffer most);
* **SGR communication**: one partial-update message per host pair, plus a
  mirror broadcast of changed cluster assignments (edge-cut only, as Vite
  supports only edge-cuts);
* optional **early termination**: skip a node with 75% probability once
  its cluster survived 4 consecutive rounds (the application-specific
  heuristic the paper deliberately did not port to Kimbap).

Computation and communication overlap in Vite, so per the paper we report
a single fused time; the cost model's compute/comm split is still recorded
for the curious.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import AlgorithmResult, coarsen, modularity, weighted_degrees
from repro.cluster.cluster import Cluster, static_thread
from repro.cluster.metrics import PhaseKind
from repro.partition.base import PartitionedGraph
from repro.partition.policies import partition


def _vite_moving_round(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    labels: np.ndarray,
    tots: np.ndarray,
    sizes: np.ndarray,
    strengths: np.ndarray,
    two_m: float,
    gamma: float,
    skip_mask: np.ndarray,
    round_parity: int,
) -> list[tuple[int, int, int]]:
    """One synchronous round; returns the (node, old, new) moves."""
    moves: list[tuple[int, int, int]] = []

    # Inspection: one thread per host builds the shared map of cluster info
    # (a slot per node plus a half-pass over the edges to size the
    # neighbor-cluster entries).
    with cluster.phase(PhaseKind.SERIAL, parallel=False, label="vite:inspect"):
        for part in pgraph.parts:
            counters = cluster.counters(part.host_id)
            counters.node_iters += part.num_masters
            counters.edge_iters += part.num_edges() // 2

    # Execution: all threads, atomic reductions into the shared map.
    with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="vite:execute"):
        for part in pgraph.parts:
            counters = cluster.counters(part.host_id)
            writers: dict[int, set[int]] = {}
            map_writers: set[int] = set()
            write_count = 0
            num_masters = part.num_masters
            for index in range(num_masters):
                node = int(part.local_to_global[index])
                counters.node_iters += 1
                if skip_mask[node]:
                    continue
                if (node ^ round_parity) & 1:
                    # same parity gating as Kimbap's LV (both implement the
                    # same deterministic algorithm, Section 6.1)
                    continue
                thread = static_thread(index, num_masters, cluster.threads_per_host)
                own_cluster = int(labels[node])
                strength = float(strengths[node])
                weight_to: dict[int, float] = {}
                for edge in part.edge_range(index):
                    counters.edge_iters += 1
                    dst = int(part.local_to_global[part.edge_dst(edge)])
                    if dst == node:
                        continue
                    neighbor_cluster = int(labels[dst])
                    weight_to[neighbor_cluster] = (
                        weight_to.get(neighbor_cluster, 0.0) + part.edge_weight(edge)
                    )
                    # The per-neighbor-cluster weight accumulates in the
                    # *shared* map the inspection phase built (Kimbap's CF
                    # keeps this in thread-local maps instead): one atomic
                    # RMW per edge, with structural map contention.
                    counters.cas_attempts += 1
                    map_writers.add(thread)
                    write_count += 1
                    if len(map_writers) > 1:
                        counters.cas_conflicts += write_count % 2
                own_tot = float(tots[own_cluster]) - strength
                stay_score = (
                    weight_to.get(own_cluster, 0.0) - gamma * own_tot * strength / two_m
                )
                best_cluster, best_score = own_cluster, stay_score
                for candidate, weight in sorted(weight_to.items()):
                    if candidate == own_cluster:
                        continue
                    counters.local_ops += 2
                    counters.hash_probes += 1
                    score = weight - gamma * float(tots[candidate]) * strength / two_m
                    if score > best_score or (
                        score == best_score and candidate < best_cluster
                    ):
                        best_cluster, best_score = candidate, score
                if best_cluster == own_cluster:
                    continue
                if sizes[own_cluster] == 1 and sizes[best_cluster] == 1:
                    if best_cluster > own_cluster:
                        continue
                moves.append((node, own_cluster, best_cluster))
                # Atomic updates to the shared map: tot/size of both
                # clusters. Cross-thread same-key updates conflict, and the
                # shared concurrent map also contends structurally (same
                # 1-in-2 model as SharedMapReduction).
                for key in (own_cluster, best_cluster):
                    counters.cas_attempts += 2  # tot and size
                    key_writers = writers.setdefault(key, set())
                    key_writers.add(thread)
                    if len(key_writers) > 1:
                        counters.cas_conflicts += 2
                    map_writers.add(thread)
                    write_count += 2
                    if len(map_writers) > 1:
                        counters.cas_conflicts += write_count % 2

    # SGR: partial updates to owners, one message per host pair; changed
    # assignments broadcast to mirror hosts.
    with cluster.phase(PhaseKind.REDUCE_SYNC, label="vite:sgr"):
        per_pair = max(len(moves) // max(cluster.num_hosts, 1), 1)
        for src in range(cluster.num_hosts):
            for dst in range(cluster.num_hosts):
                cluster.network.send(src, dst, 24 * per_pair)
        cluster.network.allreduce(1)

    # Apply synchronously (the BSP step boundary).
    for node, old, new in moves:
        labels[node] = new
        tots[old] -= strengths[node]
        tots[new] += strengths[node]
        sizes[old] -= 1
        sizes[new] += 1
    return moves


def _vite_level(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    gamma: float,
    max_rounds: int,
    early_termination: bool,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    graph = pgraph.graph
    strengths = weighted_degrees(graph)
    two_m = float(strengths.sum())
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    if two_m == 0:
        return labels, 0
    tots = strengths.copy()
    sizes = np.ones(graph.num_nodes, dtype=np.int64)
    stable_rounds = np.zeros(graph.num_nodes, dtype=np.int64)
    # Vite's footprint: the single shared map holds (label, tot, size) per
    # node plus per-host mirrored label copies - no thread-local maps.
    for part in pgraph.parts:
        cluster.track_memory(
            part.host_id, "vite", 3 * part.num_masters + part.num_mirrors
        )
    min_moves = max(int(0.01 * graph.num_nodes), 1)
    previous_moves = graph.num_nodes
    best_quality = -np.inf
    stalled_rounds = 0
    rounds = 0
    while rounds < max_rounds:
        if early_termination:
            eligible = stable_rounds >= 4
            skip_mask = eligible & (rng.random(graph.num_nodes) < 0.75)
        else:
            skip_mask = np.zeros(graph.num_nodes, dtype=bool)
        moves = _vite_moving_round(
            cluster, pgraph, labels, tots, sizes, strengths, two_m, gamma, skip_mask,
            round_parity=rounds % 2,
        )
        moved_nodes = {node for node, _, _ in moves}
        stable_rounds += 1
        if moved_nodes:
            stable_rounds[list(moved_nodes)] = 0
        rounds += 1
        if len(moves) + previous_moves < min_moves:
            # same iteration cutoff as Kimbap's LV (Vite/Grappolo use one too)
            break
        previous_moves = len(moves)
        quality = modularity(graph, labels, gamma)
        if quality > best_quality + 1e-12:
            best_quality = quality
            stalled_rounds = 0
        else:
            stalled_rounds += 1
            if stalled_rounds >= 4:
                break
    return labels, rounds


def vite_louvain(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    gamma: float = 1.0,
    min_gain: float = 1e-6,
    max_rounds_per_level: int = 40,
    max_levels: int = 12,
    early_termination: bool = False,
    seed: int = 0,
) -> AlgorithmResult:
    """Run Vite-style distributed Louvain; values are community ids."""
    if pgraph.policy not in ("oec", "iec"):
        raise ValueError("Vite supports edge-cut partitioning only")
    rng = np.random.default_rng(seed)
    level_graph = pgraph.graph
    level_pgraph = pgraph
    node_to_coarse = np.arange(level_graph.num_nodes, dtype=np.int64)
    best_modularity = modularity(level_graph, np.arange(level_graph.num_nodes), gamma)
    total_rounds = 0
    levels = 0
    while levels < max_levels:
        labels, rounds = _vite_level(
            cluster, level_pgraph, gamma, max_rounds_per_level, early_termination, rng
        )
        total_rounds += rounds
        levels += 1
        level_modularity = modularity(level_graph, labels, gamma)
        moved = bool(np.any(labels != np.arange(level_graph.num_nodes)))
        if not moved or level_modularity < best_modularity + min_gain:
            best_modularity = max(best_modularity, level_modularity)
            node_to_coarse = labels[node_to_coarse]
            break
        best_modularity = level_modularity
        coarse_graph, coarse_of = coarsen(level_graph, labels, cluster, level_pgraph)
        node_to_coarse = coarse_of[node_to_coarse]
        if coarse_graph.num_nodes == level_graph.num_nodes:
            break
        level_graph = coarse_graph
        level_pgraph = partition(coarse_graph, cluster.num_hosts, pgraph.policy)
    communities = {
        node: int(node_to_coarse[node]) for node in range(pgraph.graph.num_nodes)
    }
    final_labels = np.asarray(
        [communities[node] for node in range(pgraph.graph.num_nodes)], dtype=np.int64
    )
    return AlgorithmResult(
        name="Vite-LV",
        values=communities,
        rounds=total_rounds,
        stats={
            "modularity": modularity(pgraph.graph, final_labels, gamma),
            "levels": levels,
            "num_communities": len(set(communities.values())),
        },
    )
