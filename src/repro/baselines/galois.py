"""Galois-like single-host shared-memory asynchronous runtime [64].

Galois runs vertex operators asynchronously: updates are applied in place
with atomics and become visible immediately, so value-propagating
algorithms converge in a handful of sweeps instead of O(log n) BSP rounds
- no per-round request/materialize/sync machinery at all. That is exactly
why Table 3 shows Galois beating Kimbap-on-1-host for MSF and CC-SV
(pointer jumping), while losing badly on LD, where many threads contend on
the same subcluster properties through atomics (Kimbap's thread-local maps
avoid those conflicts entirely).

Conflict accounting:

* value-changing atomic reductions (min/max/labels) charge a conflict only
  when a cross-thread update actually changes the slot - benign retries of
  idempotent reductions are free, as on real hardware;
* Leiden's subcluster total updates are read-modify-write accumulations
  (sums), where *every* cross-thread same-slot update pays the cache-line
  transfer - the SharedMap regime.
"""

from __future__ import annotations


import numpy as np

from repro.algorithms.common import AlgorithmResult, coarsen, modularity, weighted_degrees
from repro.cluster.cluster import Cluster, static_thread
from repro.cluster.metrics import PhaseKind
from repro.graph.csr import Graph


# Galois's speculative task scheduler costs a few dozen ns per activity
# (worklist push/pop + commit bookkeeping); charged per node task.
TASK_OVERHEAD_UNITS = 2


class _AtomicSlots:
    """Per-sweep conflict accounting for in-place atomic updates."""

    def __init__(self, cluster: Cluster, heavy: bool = False) -> None:
        self.cluster = cluster
        self.heavy = heavy
        self._last_writer: dict[int, int] = {}
        self._writers: dict[int, set[int]] = {}

    def update(self, thread: int, key: int, changed: bool) -> None:
        counters = self.cluster.counters(0)
        counters.cas_attempts += 1
        if self.heavy:
            # Read-modify-write accumulation: every concurrent writer to a
            # hot slot pays a cache-line transfer + retry per competitor
            # (the retry-storm regime; value-blind, unlike min/max).
            writers = self._writers.setdefault(key, set())
            writers.add(thread)
            counters.cas_conflicts += len(writers) - 1
            return
        if changed:
            previous = self._last_writer.get(key)
            if previous is not None and previous != thread:
                counters.cas_conflicts += 1
            self._last_writer[key] = thread

    def new_sweep(self) -> None:
        self._last_writer.clear()
        self._writers.clear()


def _check_single_host(cluster: Cluster) -> None:
    if cluster.num_hosts != 1:
        raise ValueError("Galois is a shared-memory (single host) system")


# ------------------------------------------------------------ CC algorithms


def galois_cc_sv(cluster: Cluster, graph: Graph) -> AlgorithmResult:
    """Asynchronous hook + inline path compression."""
    _check_single_host(cluster)
    parent = np.arange(graph.num_nodes, dtype=np.int64)
    slots = _AtomicSlots(cluster)
    sweeps = 0
    changed = True
    while changed:
        changed = False
        slots.new_sweep()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_sv"):
            counters = cluster.counters(0)
            for node in range(graph.num_nodes):
                counters.node_iters += 1
                counters.local_ops += TASK_OVERHEAD_UNITS
                thread = static_thread(node, graph.num_nodes, cluster.threads_per_host)
                # inline compression: immediately visible to later reads
                while parent[parent[node]] != parent[node]:
                    counters.vector_reads += 2
                    parent[node] = parent[parent[node]]
                    slots.update(thread, node, True)
                    changed = True
                own = int(parent[node])
                counters.vector_reads += 1
                for edge in graph.edge_range(node):
                    counters.edge_iters += 1
                    neighbor = int(parent[graph.edge_dst(edge)])
                    counters.vector_reads += 1
                    low, high = min(own, neighbor), max(own, neighbor)
                    if low < high and parent[high] > low:
                        parent[high] = min(int(parent[high]), low)
                        slots.update(thread, high, True)
                        changed = True
                        own = int(parent[node])
        sweeps += 1
    # final flatten
    with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_sv:flat"):
        counters = cluster.counters(0)
        for node in range(graph.num_nodes):
            while parent[parent[node]] != parent[node]:
                parent[node] = parent[parent[node]]
                counters.vector_reads += 2
    values = {node: int(parent[node]) for node in range(graph.num_nodes)}
    return AlgorithmResult(name="Galois-CC-SV", values=values, rounds=sweeps)


def galois_cc_lp(cluster: Cluster, graph: Graph) -> AlgorithmResult:
    """Label propagation with asynchronous visibility."""
    _check_single_host(cluster)
    label = np.arange(graph.num_nodes, dtype=np.int64)
    slots = _AtomicSlots(cluster)
    sweeps = 0
    changed = True
    while changed:
        changed = False
        slots.new_sweep()
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_lp"):
            counters = cluster.counters(0)
            for node in range(graph.num_nodes):
                counters.node_iters += 1
                counters.local_ops += TASK_OVERHEAD_UNITS
                thread = static_thread(node, graph.num_nodes, cluster.threads_per_host)
                own = int(label[node])
                counters.vector_reads += 1
                for edge in graph.edge_range(node):
                    counters.edge_iters += 1
                    dst = graph.edge_dst(edge)
                    if label[dst] > own:
                        label[dst] = own
                        slots.update(thread, dst, True)
                        changed = True
                    counters.vector_reads += 1
        sweeps += 1
    values = {node: int(label[node]) for node in range(graph.num_nodes)}
    return AlgorithmResult(name="Galois-CC-LP", values=values, rounds=sweeps)


# ------------------------------------------------------------------ MSF


def galois_msf(cluster: Cluster, graph: Graph) -> AlgorithmResult:
    """Asynchronous Boruvka with union-find path compression."""
    _check_single_host(cluster)
    parent = np.arange(graph.num_nodes, dtype=np.int64)
    slots = _AtomicSlots(cluster)
    forest: set[tuple[int, int, float]] = set()
    rounds = 0

    def find(node: int, counters) -> int:
        root = node
        while parent[root] != root:
            counters.vector_reads += 1
            root = int(parent[root])
        while parent[node] != root:  # compress
            parent[node], node = root, int(parent[node])
            counters.vector_reads += 1
        return root

    while True:
        slots.new_sweep()
        best: dict[int, tuple[float, int, int, int]] = {}
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_msf:min"):
            counters = cluster.counters(0)
            for node in range(graph.num_nodes):
                counters.node_iters += 1
                counters.local_ops += TASK_OVERHEAD_UNITS
                thread = static_thread(node, graph.num_nodes, cluster.threads_per_host)
                own_root = find(node, counters)
                for edge in graph.edge_range(node):
                    counters.edge_iters += 1
                    dst = graph.edge_dst(edge)
                    dst_root = find(dst, counters)
                    if own_root == dst_root:
                        continue
                    candidate = (
                        graph.edge_weight(edge),
                        min(node, dst),
                        max(node, dst),
                        dst_root,
                    )
                    current = best.get(own_root)
                    if current is None or candidate < current:
                        best[own_root] = candidate
                        slots.update(thread, own_root, True)
                    else:
                        slots.update(thread, own_root, False)
        if not best:
            break
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_msf:hook"):
            counters = cluster.counters(0)
            for root, (weight, endpoint_a, endpoint_b, other_root) in best.items():
                counters.local_ops += 1
                root_now = find(root, counters)
                other_now = find(other_root, counters)
                if root_now == other_now:
                    continue
                forest.add((endpoint_a, endpoint_b, weight))
                high, low = max(root_now, other_now), min(root_now, other_now)
                parent[high] = low
        rounds += 1
    with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_msf:flat"):
        counters = cluster.counters(0)
        for node in range(graph.num_nodes):
            find(node, counters)
    values = {node: int(parent[node]) for node in range(graph.num_nodes)}
    total_weight = sum(weight for _, _, weight in forest)
    return AlgorithmResult(
        name="Galois-MSF",
        values=values,
        rounds=rounds,
        stats={"forest_weight": total_weight, "forest_edges": float(len(forest))},
        extra={"forest": sorted(forest)},
    )


# ------------------------------------------------------------------ MIS


def galois_mis(cluster: Cluster, graph: Graph) -> AlgorithmResult:
    """Priority MIS (same priority order as the distributed version)."""
    from repro.algorithms.mis import IN_SET, OUT, UNDECIDED, _hash_priority

    _check_single_host(cluster)
    degrees = graph.out_degrees()
    priority = [
        (int(degrees[node]), _hash_priority(node), node)
        for node in range(graph.num_nodes)
    ]
    state = np.full(graph.num_nodes, UNDECIDED, dtype=np.int64)
    sweeps = 0
    changed = True
    while changed:
        changed = False
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_mis"):
            counters = cluster.counters(0)
            for node in range(graph.num_nodes):
                counters.node_iters += 1
                counters.local_ops += TASK_OVERHEAD_UNITS
                if state[node] != UNDECIDED:
                    continue
                blocked = False
                for edge in graph.edge_range(node):
                    counters.edge_iters += 1
                    dst = graph.edge_dst(edge)
                    counters.vector_reads += 1
                    if state[dst] == UNDECIDED and priority[dst] > priority[node]:
                        blocked = True
                        break
                    if state[dst] == IN_SET:
                        state[node] = OUT
                        blocked = True
                        changed = True
                        break
                if not blocked:
                    state[node] = IN_SET
                    changed = True
                    counters.cas_attempts += 1
                    for edge in graph.edge_range(node):
                        counters.edge_iters += 1
                        dst = graph.edge_dst(edge)
                        if state[dst] == UNDECIDED:
                            state[dst] = OUT
                            counters.cas_attempts += 1
        sweeps += 1
    values = {node: int(state[node]) for node in range(graph.num_nodes)}
    return AlgorithmResult(
        name="Galois-MIS",
        values=values,
        rounds=sweeps,
        stats={"set_size": sum(1 for v in values.values() if v == IN_SET)},
    )


# ----------------------------------------------------------- LV / LD


def _galois_moving(
    cluster: Cluster,
    graph: Graph,
    gamma: float,
    max_sweeps: int,
    heavy_conflicts: bool,
    constraint: np.ndarray | None = None,
    initial: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Local moving with in-place atomic accumulations.

    The paper's LV/LD are *the deterministic algorithm* in both systems
    (Section 6.1), so the move rule, parity gating, and cutoffs match
    :func:`repro.algorithms.louvain.local_moving` exactly; what differs is
    the execution substrate - direct array reads and atomic in-place
    updates instead of request phases and thread-local maps."""
    strengths = weighted_degrees(graph)
    two_m = float(strengths.sum())
    labels = (initial if initial is not None else np.arange(graph.num_nodes)).astype(
        np.int64
    ).copy()
    if two_m == 0:
        return labels, 0
    tots = np.zeros(graph.num_nodes)
    np.add.at(tots, labels, strengths)
    sizes = np.bincount(labels, minlength=graph.num_nodes)
    slots = _AtomicSlots(cluster, heavy=heavy_conflicts)
    min_moves = max(int(0.01 * graph.num_nodes), 1)
    best_quality = -np.inf
    stalled_sweeps = 0
    sweeps = 0
    changed = True
    while changed and sweeps < max_sweeps:
        changed = False
        moves_this_sweep = 0
        slots.new_sweep()
        round_parity = sweeps % 2
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="galois_moving"):
            counters = cluster.counters(0)
            for node in range(graph.num_nodes):
                counters.node_iters += 1
                counters.local_ops += TASK_OVERHEAD_UNITS
                if (node ^ round_parity) & 1:
                    continue
                thread = static_thread(node, graph.num_nodes, cluster.threads_per_host)
                own_cluster = int(labels[node])
                strength = float(strengths[node])
                weight_to: dict[int, float] = {}
                for edge in graph.edge_range(node):
                    counters.edge_iters += 1
                    dst = graph.edge_dst(edge)
                    if dst == node:
                        continue
                    counters.vector_reads += 1
                    neighbor_cluster = int(labels[dst])
                    weight_to[neighbor_cluster] = (
                        weight_to.get(neighbor_cluster, 0.0) + graph.edge_weight(edge)
                    )
                    if heavy_conflicts:
                        # LD refinement accumulates subcluster connectivity
                        # in place per edge - the atomic updates the paper
                        # blames for Galois' LD timeout.
                        slots.update(thread, neighbor_cluster, True)
                own_tot = float(tots[own_cluster]) - strength
                stay = weight_to.get(own_cluster, 0.0) - gamma * own_tot * strength / two_m
                best_cluster, best_score = own_cluster, stay
                for candidate, weight in sorted(weight_to.items()):
                    if candidate == own_cluster:
                        continue
                    if constraint is not None and constraint[candidate] != constraint[node]:
                        continue
                    counters.local_ops += 2
                    counters.vector_reads += 1
                    score = weight - gamma * float(tots[candidate]) * strength / two_m
                    if score > best_score or (
                        score == best_score and candidate < best_cluster
                    ):
                        best_cluster, best_score = candidate, score
                if best_cluster == own_cluster:
                    continue
                # async move: apply immediately with atomic accumulations
                labels[node] = best_cluster
                tots[own_cluster] -= strength
                tots[best_cluster] += strength
                sizes[own_cluster] -= 1
                sizes[best_cluster] += 1
                for key in (own_cluster, best_cluster):
                    slots.update(thread, key, True)
                    slots.update(thread, key, True)  # tot and size
                changed = True
                moves_this_sweep += 1
        sweeps += 1
        if changed and moves_this_sweep < min_moves:
            break
        if changed:
            quality = modularity(graph, labels, gamma)
            if quality > best_quality + 1e-12:
                best_quality = quality
                stalled_sweeps = 0
            else:
                stalled_sweeps += 1
                if stalled_sweeps >= 4:
                    break
    return labels, sweeps


def galois_louvain(
    cluster: Cluster,
    graph: Graph,
    gamma: float = 1.0,
    min_gain: float = 1e-6,
    max_sweeps_per_level: int = 40,
    max_levels: int = 12,
) -> AlgorithmResult:
    _check_single_host(cluster)
    level_graph = graph
    node_to_coarse = np.arange(graph.num_nodes, dtype=np.int64)
    best_q = modularity(level_graph, np.arange(level_graph.num_nodes), gamma)
    total_sweeps = 0
    levels = 0
    while levels < max_levels:
        labels, sweeps = _galois_moving(
            cluster, level_graph, gamma, max_sweeps_per_level, heavy_conflicts=False
        )
        total_sweeps += sweeps
        levels += 1
        level_q = modularity(level_graph, labels, gamma)
        moved = bool(np.any(labels != np.arange(level_graph.num_nodes)))
        if not moved or level_q < best_q + min_gain:
            node_to_coarse = labels[node_to_coarse]
            break
        best_q = level_q
        coarse_graph, coarse_of = coarsen(level_graph, labels)
        node_to_coarse = coarse_of[node_to_coarse]
        if coarse_graph.num_nodes == level_graph.num_nodes:
            break
        level_graph = coarse_graph
    communities = {node: int(node_to_coarse[node]) for node in range(graph.num_nodes)}
    final = np.asarray([communities[n] for n in range(graph.num_nodes)])
    return AlgorithmResult(
        name="Galois-LV",
        values=communities,
        rounds=total_sweeps,
        stats={
            "modularity": modularity(graph, final, gamma),
            "levels": levels,
            "num_communities": len(set(communities.values())),
        },
    )


def galois_leiden(
    cluster: Cluster,
    graph: Graph,
    gamma: float = 1.0,
    max_sweeps_per_level: int = 40,
    max_levels: int = 12,
) -> AlgorithmResult:
    """Leiden with in-place atomics: the subcluster refinement's property
    updates contend heavily (the paper's explanation for Galois timing out
    on LD), charged via the heavy-conflict regime."""
    _check_single_host(cluster)
    level_graph = graph
    node_to_coarse = np.arange(graph.num_nodes, dtype=np.int64)
    communities_of_original = node_to_coarse.copy()
    initial: np.ndarray | None = None
    total_sweeps = 0
    levels = 0
    while levels < max_levels:
        labels, sweeps = _galois_moving(
            cluster,
            level_graph,
            gamma,
            max_sweeps_per_level,
            heavy_conflicts=False,
            initial=initial,
        )
        total_sweeps += sweeps
        levels += 1
        seeds = initial if initial is not None else np.arange(level_graph.num_nodes)
        moved = bool(np.any(labels != seeds))
        communities_of_original = labels[node_to_coarse]
        # Refinement with atomics on subcluster properties: heavy conflicts.
        refined, refine_sweeps = _galois_moving(
            cluster,
            level_graph,
            gamma,
            max_sweeps_per_level,
            heavy_conflicts=True,
            constraint=labels,
        )
        total_sweeps += refine_sweeps
        coarse_graph, coarse_of = coarsen(level_graph, refined)
        if not moved and coarse_graph.num_nodes == level_graph.num_nodes:
            break
        parent_cluster = np.zeros(coarse_graph.num_nodes, dtype=np.int64)
        parent_cluster[coarse_of] = labels
        representative: dict[int, int] = {}
        for coarse_id, parent in enumerate(parent_cluster.tolist()):
            representative.setdefault(parent, coarse_id)
        initial = np.asarray(
            [representative[parent] for parent in parent_cluster.tolist()],
            dtype=np.int64,
        )
        node_to_coarse = coarse_of[node_to_coarse]
        if coarse_graph.num_nodes == level_graph.num_nodes:
            break
        level_graph = coarse_graph
    communities = {
        node: int(communities_of_original[node]) for node in range(graph.num_nodes)
    }
    final = np.asarray([communities[n] for n in range(graph.num_nodes)])
    return AlgorithmResult(
        name="Galois-LD",
        values=communities,
        rounds=total_sweeps,
        stats={
            "modularity": modularity(graph, final, gamma),
            "levels": levels,
            "num_communities": len(set(communities.values())),
        },
    )
