"""Compressed-sparse-row graph storage.

The whole reproduction operates on directed CSR graphs. Undirected graphs
are represented, as in the paper (Section 6.1), by symmetrizing: every edge
appears in both directions. Edge weights are optional and only used by the
weighted algorithms (Louvain, Leiden, Boruvka MSF).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class Graph:
    """A directed graph in CSR form.

    Nodes are integers ``0 .. num_nodes - 1``. Edges of node ``u`` occupy
    the index range ``indptr[u] : indptr[u + 1]`` of ``indices`` (their
    destinations) and ``weights`` (their weights, if any).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= indptr.size - 1):
            raise ValueError("edge destination out of range")
        self.indptr = indptr
        self.indices = indices
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise ValueError("weights must match indices in shape")
        self.weights = weights

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edge_list(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        weights: Iterable[float] | None = None,
    ) -> "Graph":
        """Build a graph from ``(src, dst)`` pairs (kept in input order per node)."""
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        srcs, dsts = edge_array[:, 0], edge_array[:, 1]
        if srcs.size and (srcs.min() < 0 or srcs.max() >= num_nodes):
            raise ValueError("edge source out of range")
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(list(weights), dtype=np.float64)
            if weight_array.shape != srcs.shape:
                raise ValueError("weights must match edges in length")
        order = np.argsort(srcs, kind="stable")
        srcs, dsts = srcs[order], dsts[order]
        if weight_array is not None:
            weight_array = weight_array[order]
        counts = np.bincount(srcs, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dsts, weight_array)

    @classmethod
    def from_arrays(
        cls,
        num_nodes: int,
        srcs: np.ndarray,
        dsts: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "Graph":
        """Vectorized variant of :meth:`from_edge_list`."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have the same shape")
        if srcs.size and (srcs.min() < 0 or srcs.max() >= num_nodes):
            raise ValueError("edge source out of range")
        order = np.argsort(srcs, kind="stable")
        srcs, dsts = srcs[order], dsts[order]
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)[order]
        counts = np.bincount(srcs, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dsts, weights)

    # -- basic accessors --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        return int(self.out_degrees().max(initial=0))

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def edge_range(self, node: int) -> range:
        """Edge index range of ``node``, usable to index ``indices``/``weights``."""
        return range(int(self.indptr[node]), int(self.indptr[node + 1]))

    def edge_dst(self, edge: int) -> int:
        return int(self.indices[edge])

    def edge_weight(self, edge: int) -> float:
        if self.weights is None:
            return 1.0
        return float(self.weights[edge])

    def nodes(self) -> range:
        return range(self.num_nodes)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for src in self.nodes():
            for dst in self.neighbors(src):
                yield src, int(dst)

    def edge_sources(self) -> np.ndarray:
        """The source node of every edge index (the CSR expansion of indptr)."""
        return np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.out_degrees())

    # -- transformations ---------------------------------------------------

    def symmetrized(self) -> "Graph":
        """Return the graph with every edge also present in reverse.

        Duplicate (src, dst) pairs are collapsed; for weighted graphs the
        weight of a collapsed pair is the maximum of the duplicates so that
        symmetrizing an already-symmetric graph is a no-op.
        """
        srcs = self.edge_sources()
        dsts = self.indices
        all_srcs = np.concatenate([srcs, dsts])
        all_dsts = np.concatenate([dsts, srcs])
        if self.weights is not None:
            all_weights = np.concatenate([self.weights, self.weights])
        else:
            all_weights = None
        keys = all_srcs * self.num_nodes + all_dsts
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        keep = np.ones(keys.size, dtype=bool)
        keep[1:] = keys[1:] != keys[:-1]
        uniq = order[keep]
        srcs_u, dsts_u = all_srcs[uniq], all_dsts[uniq]
        weights_u = None
        if all_weights is not None:
            # max weight per duplicate group
            group_ids = np.cumsum(keep) - 1
            weights_sorted = all_weights[order]
            weights_u = np.full(int(group_ids[-1]) + 1 if keys.size else 0, -np.inf)
            np.maximum.at(weights_u, group_ids, weights_sorted)
        return Graph.from_arrays(self.num_nodes, srcs_u, dsts_u, weights_u)

    def without_self_loops(self) -> "Graph":
        srcs = self.edge_sources()
        keep = srcs != self.indices
        weights = self.weights[keep] if self.weights is not None else None
        return Graph.from_arrays(self.num_nodes, srcs[keep], self.indices[keep], weights)

    def is_symmetric(self) -> bool:
        srcs = self.edge_sources()
        forward = set(zip(srcs.tolist(), self.indices.tolist()))
        return all((dst, src) in forward for src, dst in forward)

    def with_unit_weights(self) -> "Graph":
        return Graph(self.indptr, self.indices, np.ones(self.num_edges))

    # -- interop ------------------------------------------------------------

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` (weights become the ``weight`` attr)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(self.nodes())
        srcs = self.edge_sources()
        if self.weights is None:
            nx_graph.add_edges_from(zip(srcs.tolist(), self.indices.tolist()))
        else:
            nx_graph.add_weighted_edges_from(
                zip(srcs.tolist(), self.indices.tolist(), self.weights.tolist())
            )
        return nx_graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        weighted = "weighted" if self.weights is not None else "unweighted"
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges}, {weighted})"
