"""Synthetic graph generators.

The paper evaluates on four real graphs (Table 1). Those inputs are hundreds
of gigabytes and unavailable here, so each gets a scaled-down synthetic analog
that preserves the structural property the evaluation leans on:

* ``road_like``      -> road-europe: high diameter, near-uniform tiny degrees.
* ``powerlaw_like``  -> friendster: power-law degree distribution (RMAT).
* ``web_like``       -> clueweb12: denser power-law web crawl (RMAT).
* ``web_like_xl``    -> wdc12: densest, most skewed analog (RMAT).

All generators are deterministic given ``seed`` and return symmetrized graphs
(the paper symmetrizes all inputs), optionally with uniform-random weights
for the weighted algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph


def _attach_weights(graph: Graph, seed: int) -> Graph:
    """Give every undirected edge a weight, consistent in both directions."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    srcs = graph.edge_sources()
    dsts = graph.indices
    low = np.minimum(srcs, dsts)
    high = np.maximum(srcs, dsts)
    # Hash the canonical (low, high) pair so both directions agree.
    mix = (low * 2654435761 + high * 40503 + seed) % (2**31)
    weights = 1.0 + (mix % 1000) / 1000.0 * 9.0  # in [1, 10)
    del rng
    return Graph(graph.indptr, graph.indices, weights.astype(np.float64))


def road_like(
    rows: int = 64,
    cols: int = 16,
    chord_fraction: float = 0.02,
    seed: int = 0,
    weighted: bool = False,
) -> Graph:
    """A high-diameter, low-degree road-network analog (elongated grid).

    The grid is ``rows x cols`` with 4-neighbor connectivity plus a small
    fraction of short chords, giving diameter ~ ``rows + cols`` and average
    degree ~ 4 after symmetrization, like road-europe's uniform small degrees.
    """
    if rows < 2 or cols < 1:
        raise ValueError("rows must be >= 2 and cols >= 1")
    num_nodes = rows * cols
    srcs, dsts = [], []
    node_ids = np.arange(num_nodes).reshape(rows, cols)
    right = node_ids[:, :-1].ravel(), node_ids[:, 1:].ravel()
    down = node_ids[:-1, :].ravel(), node_ids[1:, :].ravel()
    srcs.extend([right[0], down[0]])
    dsts.extend([right[1], down[1]])
    rng = np.random.default_rng(seed)
    num_chords = int(chord_fraction * num_nodes)
    if num_chords:
        chord_src = rng.integers(0, num_nodes, num_chords)
        # Chords stay short (within ~2 rows) to keep the diameter high.
        offset = rng.integers(2, 2 * cols + 1, num_chords)
        chord_dst = np.minimum(chord_src + offset, num_nodes - 1)
        srcs.append(chord_src)
        dsts.append(chord_dst)
    # Shuffle node ids within small windows: real road-network ids are
    # spatially local (so blocked partitions stay geometric) but not so
    # perfectly ordered that an id-ordered sweep gets a free monotone
    # propagation chain down the whole map.
    window = 32
    perm = np.arange(num_nodes)
    for start in range(0, num_nodes, window):
        stop = min(start + window, num_nodes)
        perm[start:stop] = start + rng.permutation(stop - start)
    all_srcs = perm[np.concatenate(srcs)]
    all_dsts = perm[np.concatenate(dsts)]
    graph = Graph.from_arrays(
        num_nodes, all_srcs, all_dsts
    ).without_self_loops().symmetrized()
    if weighted:
        graph = _attach_weights(graph, seed)
    return graph


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = False,
) -> Graph:
    """Recursive-matrix (RMAT) power-law generator.

    Generates ``edge_factor * 2**scale`` directed edges over ``2**scale``
    nodes by recursively descending a 2x2 probability matrix, then removes
    self-loops, deduplicates, and symmetrizes. With Graph500-style
    parameters this yields a small number of very high-degree hubs.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must be in (0, 1)")
    num_nodes = 1 << scale
    num_edges = edge_factor * num_nodes
    rng = np.random.default_rng(seed)
    srcs = np.zeros(num_edges, dtype=np.int64)
    dsts = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        draws = rng.random(num_edges)
        src_bit = draws >= a + b  # quadrants c and d set the source bit
        dst_bit = (draws >= a) & (draws < a + b) | (draws >= a + b + c)
        srcs |= src_bit.astype(np.int64) << bit
        dsts |= dst_bit.astype(np.int64) << bit
    # Permute node ids so hubs are not clustered at id 0.
    perm = rng.permutation(num_nodes)
    srcs, dsts = perm[srcs], perm[dsts]
    graph = Graph.from_arrays(num_nodes, srcs, dsts)
    graph = graph.without_self_loops().symmetrized()
    if weighted:
        graph = _attach_weights(graph, seed)
    return graph


def powerlaw_like(scale: int = 10, seed: int = 0, weighted: bool = False) -> Graph:
    """Friendster analog: social-network-like power-law graph."""
    return rmat(scale, edge_factor=16, a=0.57, b=0.19, c=0.19, seed=seed, weighted=weighted)


def web_like(scale: int = 11, seed: int = 1, weighted: bool = False) -> Graph:
    """clueweb12 analog: denser web-crawl-like power-law graph."""
    return rmat(scale, edge_factor=24, a=0.60, b=0.17, c=0.17, seed=seed, weighted=weighted)


def web_like_xl(scale: int = 12, seed: int = 2, weighted: bool = False) -> Graph:
    """wdc12 analog: the largest, most skewed analog."""
    return rmat(scale, edge_factor=20, a=0.63, b=0.16, c=0.16, seed=seed, weighted=weighted)


# -- small deterministic graphs for tests and examples ----------------------


def path(num_nodes: int, weighted: bool = False) -> Graph:
    """A symmetrized path 0 - 1 - ... - (n-1)."""
    srcs = np.arange(num_nodes - 1)
    graph = Graph.from_arrays(num_nodes, srcs, srcs + 1).symmetrized()
    return _attach_weights(graph, 0) if weighted else graph


def cycle(num_nodes: int, weighted: bool = False) -> Graph:
    srcs = np.arange(num_nodes)
    dsts = (srcs + 1) % num_nodes
    graph = Graph.from_arrays(num_nodes, srcs, dsts).symmetrized()
    return _attach_weights(graph, 0) if weighted else graph


def star(num_leaves: int, weighted: bool = False) -> Graph:
    """Node 0 connected to ``num_leaves`` leaves; a one-hub stress test."""
    srcs = np.zeros(num_leaves, dtype=np.int64)
    dsts = np.arange(1, num_leaves + 1)
    graph = Graph.from_arrays(num_leaves + 1, srcs, dsts).symmetrized()
    return _attach_weights(graph, 0) if weighted else graph


def complete(num_nodes: int, weighted: bool = False) -> Graph:
    src_grid, dst_grid = np.meshgrid(np.arange(num_nodes), np.arange(num_nodes))
    mask = src_grid != dst_grid
    graph = Graph.from_arrays(num_nodes, src_grid[mask], dst_grid[mask])
    return _attach_weights(graph, 0) if weighted else graph


def disjoint_union(first: Graph, second: Graph) -> Graph:
    """The two graphs side by side (useful for multi-component tests)."""
    offset = first.num_nodes
    srcs = np.concatenate([first.edge_sources(), second.edge_sources() + offset])
    dsts = np.concatenate([first.indices, second.indices + offset])
    weights = None
    if first.weights is not None and second.weights is not None:
        weights = np.concatenate([first.weights, second.weights])
    return Graph.from_arrays(first.num_nodes + second.num_nodes, srcs, dsts, weights)


def erdos_renyi(num_nodes: int, avg_degree: float, seed: int = 0, weighted: bool = False) -> Graph:
    """Uniform random graph; degree distribution has no heavy tail."""
    rng = np.random.default_rng(seed)
    num_edges = int(num_nodes * avg_degree / 2)
    srcs = rng.integers(0, num_nodes, num_edges)
    dsts = rng.integers(0, num_nodes, num_edges)
    graph = Graph.from_arrays(num_nodes, srcs, dsts).without_self_loops().symmetrized()
    return _attach_weights(graph, seed) if weighted else graph
