"""Graph substrate: CSR storage, synthetic generators, IO, and statistics."""

from repro.graph.csr import Graph
from repro.graph.stats import GraphStats, compute_stats
from repro.graph import generators, io

__all__ = ["Graph", "GraphStats", "compute_stats", "generators", "io"]
