"""Graph serialization: whitespace edge-list text and NPZ binary formats."""

from __future__ import annotations

import os

import numpy as np

from repro.graph.csr import Graph


def save_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``src dst [weight]`` lines; first line is ``# nodes <n>``."""
    srcs = graph.edge_sources()
    with open(path, "w") as handle:
        handle.write(f"# nodes {graph.num_nodes}\n")
        if graph.weights is None:
            for src, dst in zip(srcs.tolist(), graph.indices.tolist()):
                handle.write(f"{src} {dst}\n")
        else:
            for src, dst, weight in zip(
                srcs.tolist(), graph.indices.tolist(), graph.weights.tolist()
            ):
                handle.write(f"{src} {dst} {weight}\n")


def load_edge_list(path: str | os.PathLike) -> Graph:
    """Read the format written by :func:`save_edge_list`.

    Files without the ``# nodes`` header are accepted; the node count is then
    inferred as ``max(node id) + 1``.
    """
    num_nodes = None
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "nodes":
                    num_nodes = int(parts[1])
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) > 2:
                weights.append(float(parts[2]))
    if num_nodes is None:
        num_nodes = max(max(srcs, default=-1), max(dsts, default=-1)) + 1
    if weights and len(weights) != len(srcs):
        raise ValueError("some edges have weights and some do not")
    return Graph.from_arrays(
        num_nodes,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights) if weights else None,
    )


def save_metis(graph: Graph, path: str | os.PathLike) -> None:
    """Write METIS adjacency format (1-indexed; symmetric graphs only).

    METIS counts each undirected edge once in the header; the body lists
    every node's neighbors (with ``dst weight`` pairs when weighted).
    """
    if not graph.is_symmetric():
        raise ValueError("METIS files describe undirected (symmetric) graphs")
    num_undirected = graph.num_edges // 2
    weighted = graph.weights is not None
    with open(path, "w") as handle:
        fmt = " 1" if weighted else ""
        handle.write(f"{graph.num_nodes} {num_undirected}{fmt}\n")
        for node in graph.nodes():
            parts = []
            for edge in graph.edge_range(node):
                parts.append(str(graph.edge_dst(edge) + 1))
                if weighted:
                    parts.append(str(graph.edge_weight(edge)))
            handle.write(" ".join(parts) + "\n")


def load_metis(path: str | os.PathLike) -> Graph:
    """Read METIS adjacency format (edge weights supported, fmt '1')."""
    with open(path) as handle:
        # blank lines are meaningful (isolated nodes); only comments drop
        lines = [
            line.rstrip("\n") for line in handle if not line.startswith("%")
        ]
    while lines and not lines[0].strip():
        lines.pop(0)
    header = lines[0].split()
    num_nodes = int(header[0])
    weighted = len(header) > 2 and header[2].endswith("1")
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    body = lines[1 : 1 + num_nodes]
    trailing = lines[1 + num_nodes :]
    if len(body) != num_nodes or any(line.strip() for line in trailing):
        raise ValueError(
            f"METIS header declares {num_nodes} nodes but file has "
            f"{len(lines) - 1} adjacency lines"
        )
    lines = [lines[0]] + body
    for node, line in enumerate(lines[1:]):
        tokens = line.split()
        step = 2 if weighted else 1
        for index in range(0, len(tokens), step):
            srcs.append(node)
            dsts.append(int(tokens[index]) - 1)
            if weighted:
                weights.append(float(tokens[index + 1]))
    return Graph.from_arrays(
        num_nodes,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights) if weighted else None,
    )


def save_npz(graph: Graph, path: str | os.PathLike) -> None:
    arrays = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str | os.PathLike) -> Graph:
    with np.load(path) as data:
        weights = data["weights"] if "weights" in data else None
        return Graph(data["indptr"], data["indices"], weights)
