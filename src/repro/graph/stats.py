"""Graph statistics: the columns of the paper's Table 1 plus a diameter probe."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph


@dataclass(frozen=True)
class GraphStats:
    """Table 1 row: |V|, |E|, |E|/|V|, max degree, plus extras for context."""

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    approx_diameter: int
    size_mb: float

    def row(self) -> tuple:
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            round(self.avg_degree, 1),
            self.max_degree,
            self.approx_diameter,
            round(self.size_mb, 2),
        )


def approx_diameter(graph: Graph, num_probes: int = 4, seed: int = 0) -> int:
    """Lower-bound the diameter with a few double-sweep BFS probes."""
    if graph.num_nodes == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    start = int(rng.integers(0, graph.num_nodes))
    for _ in range(num_probes):
        dist = _bfs_eccentricity(graph, start)
        reached = dist >= 0
        if not reached.any():
            break
        eccentricity = int(dist[reached].max())
        best = max(best, eccentricity)
        # Double sweep: restart from the farthest reached node.
        start = int(np.flatnonzero(dist == eccentricity)[0])
    return best


def _bfs_eccentricity(graph: Graph, start: int) -> np.ndarray:
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[start] = 0
    frontier = [start]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if dist[neighbor] < 0:
                    dist[neighbor] = level
                    next_frontier.append(int(neighbor))
        frontier = next_frontier
    return dist


def compute_stats(name: str, graph: Graph) -> GraphStats:
    size_bytes = graph.indptr.nbytes + graph.indices.nbytes
    if graph.weights is not None:
        size_bytes += graph.weights.nbytes
    return GraphStats(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        avg_degree=graph.num_edges / max(graph.num_nodes, 1),
        max_degree=graph.max_degree(),
        approx_diameter=approx_diameter(graph),
        size_mb=size_bytes / 2**20,
    )
