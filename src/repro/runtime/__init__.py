"""BSP runtime: phase drivers for vertex-centric programs.

The engine executes the paper's four-phase rounds (request-compute,
request-sync, reduce-compute, reduce-sync) over the simulated cluster.
Hand-written kernels (and the compiler's interpreted programs) use
:func:`par_for` for compute phases and the node-property map's collective
methods for sync phases.
"""

from repro.runtime.engine import OperatorContext, par_for, kimbap_while
from repro.runtime.bool_reducer import BoolReducer

__all__ = ["OperatorContext", "par_for", "kimbap_while", "BoolReducer"]
