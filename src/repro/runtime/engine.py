"""Compute-phase drivers: ParFor over partitions and the KimbapWhile loop.

``par_for`` is the runtime realization of the paper's ParFor: it visits the
chosen iteration set on every host, dealing items to virtual threads with
OpenMP-static chunking, and charges one ``node_iters`` event per active
node. The operator body receives an :class:`OperatorContext` exposing
host/thread/partition plus convenience edge iteration that charges
``edge_iters``.

``kimbap_while`` realizes the quiescence loop: repeat the round body until
none of the given node-property maps changed in a round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.partition.base import LocalPartition, PartitionedGraph

ITERATION_MODES = ("masters", "all")


class NonQuiescenceError(RuntimeError):
    """A quiescence loop hit its round cap without converging.

    Subclasses ``RuntimeError`` for backward compatibility; carries the
    rounds executed and the names of the maps that kept updating so
    ``eval.harness`` can record the failure as a structured run outcome
    (like the paper's OOM cells) instead of crashing.
    """

    def __init__(self, rounds: int, map_names: Sequence[str], loop: str = "KimbapWhile") -> None:
        names = ", ".join(map_names) or "<none>"
        super().__init__(
            f"{loop} did not quiesce in {rounds} rounds (maps: {names})"
        )
        self.rounds = rounds
        self.map_names = list(map_names)
        self.loop = loop


@dataclass
class OperatorContext:
    """Everything an operator body may touch for one active node."""

    cluster: Cluster
    part: LocalPartition
    host: int
    thread: int
    local: int  # active node, local id
    node: int  # active node, global id

    def edges(self) -> Iterator[int]:
        """Local edge indices of the active node; charges per edge."""
        counters = self.cluster.counters(self.host)
        for edge in self.part.edge_range(self.local):
            counters.edge_iters += 1
            yield edge

    def edge_dst_local(self, edge: int) -> int:
        return self.part.edge_dst(edge)

    def edge_dst(self, edge: int) -> int:
        """Global id of the edge's destination."""
        return int(self.part.local_to_global[self.part.edge_dst(edge)])

    def edge_weight(self, edge: int) -> float:
        return self.part.edge_weight(edge)

    def charge(self, ops: int = 1) -> None:
        """Charge generic operator-body ALU work."""
        self.cluster.counters(self.host).local_ops += ops


@dataclass
class BulkOperatorContext:
    """One host's whole iteration set, as arrays (the bulk ParFor).

    Positions align: ``local_ids[i]``, ``node_ids[i]``, and ``threads[i]``
    describe active node ``i`` of the iteration set. Accounting matches the
    scalar :class:`OperatorContext` aggregate-for-aggregate: the edge
    expansion charges one ``edge_iters`` per produced edge, ``charge``
    prices operator ALU work.
    """

    cluster: Cluster
    part: LocalPartition
    host: int
    local_ids: np.ndarray
    node_ids: np.ndarray
    threads: np.ndarray

    def degrees(self, local_ids: np.ndarray | None = None) -> np.ndarray:
        """Out-degrees of the given local ids (defaults to all; uncharged,
        like reading ``part.indptr`` directly)."""
        if local_ids is None:
            local_ids = self.local_ids
        indptr = self.part.indptr
        return indptr[local_ids + 1] - indptr[local_ids]

    def expand_edges(
        self, local_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR edge expansion: ``(source_pos, edge_ids)`` with one entry per
        edge of each given node, in adjacency order. ``source_pos[j]``
        indexes back into ``local_ids`` (gather per-source values with it).
        Charges ``edge_iters`` per edge, like the scalar ``ctx.edges()``.
        """
        indptr = self.part.indptr
        starts = indptr[local_ids]
        counts = indptr[local_ids + 1] - starts
        total = int(counts.sum())
        self.cluster.counters(self.host).edge_iters += total
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        source_pos = np.repeat(np.arange(local_ids.size, dtype=np.int64), counts)
        offsets = np.cumsum(counts) - counts
        edge_ids = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        return source_pos, edge_ids

    def edge_dst_local(self, edge_ids: np.ndarray) -> np.ndarray:
        return self.part.indices[edge_ids]

    def edge_dst(self, edge_ids: np.ndarray) -> np.ndarray:
        """Global ids of the edges' destinations."""
        return self.part.local_to_global[self.part.indices[edge_ids]]

    def edge_weights(self, edge_ids: np.ndarray) -> np.ndarray:
        if self.part.weights is None:
            return np.ones(edge_ids.size, dtype=np.float64)
        return self.part.weights[edge_ids]

    def charge(self, ops: int = 1) -> None:
        """Charge generic operator-body ALU work (aggregate)."""
        self.cluster.counters(self.host).local_ops += int(ops)


def _iteration_set(part: LocalPartition, mode: str) -> range:
    if mode == "masters":
        return range(part.num_masters)
    if mode == "all":
        return range(part.num_local)
    raise ValueError(f"unknown iteration mode {mode!r}; have {ITERATION_MODES}")


def par_for(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    mode: str,
    body: Callable[[OperatorContext], None],
    kind: PhaseKind = PhaseKind.REDUCE_COMPUTE,
    label: str = "",
    hosts: Sequence[int] | None = None,
) -> None:
    """Run ``body`` once per active node on every host, inside one phase.

    ``hosts`` restricts the visit to a subset of hosts (ascending order
    expected): the host-shard execution of ``repro.exec.pool``, where each
    worker process drives only the hosts it owns. Per-host work is
    independent inside a phase (the BSP contract), so the restricted visit
    produces exactly the serial per-host effects for the visited hosts.
    """
    operator = label or getattr(body, "__qualname__", getattr(body, "__name__", ""))
    with cluster.phase(kind, label=label, operator=operator):
        for host in range(cluster.num_hosts) if hosts is None else hosts:
            part = pgraph.parts[host]
            items = _iteration_set(part, mode)
            total = len(items)
            counters = cluster.counters(host)
            for index, local in enumerate(items):
                counters.node_iters += 1
                thread = cluster.thread_of(index, total)
                body(
                    OperatorContext(
                        cluster=cluster,
                        part=part,
                        host=host,
                        thread=thread,
                        local=local,
                        node=int(part.local_to_global[local]),
                    )
                )


def par_for_bulk(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    mode: str,
    body: Callable[[BulkOperatorContext], None],
    kind: PhaseKind = PhaseKind.REDUCE_COMPUTE,
    label: str = "",
    hosts: Sequence[int] | None = None,
) -> None:
    """The bulk ParFor: one ``body`` call per host, whole iteration set.

    The fast path of the execution engine. Accounting contract: running an
    equivalent operator body produces byte-identical counters, conflict
    counts, and folded values to :func:`par_for` - ``node_iters`` is
    charged in aggregate, thread dealing comes from the closed-form chunk
    bounds of ``static_thread``, and bulk map operations match their scalar
    counterparts event-for-event. ``hosts`` restricts the visit to a host
    shard, as in :func:`par_for`.
    """
    operator = label or getattr(body, "__qualname__", getattr(body, "__name__", ""))
    with cluster.phase(kind, label=label, operator=operator):
        for host in range(cluster.num_hosts) if hosts is None else hosts:
            part = pgraph.parts[host]
            total = len(_iteration_set(part, mode))
            cluster.counters(host).node_iters += total
            body(
                BulkOperatorContext(
                    cluster=cluster,
                    part=part,
                    host=host,
                    local_ids=np.arange(total, dtype=np.int64),
                    node_ids=part.local_to_global[:total],
                    threads=cluster.threads_of(total),
                )
            )


def kimbap_while(
    maps: Sequence[NodePropMap] | NodePropMap,
    round_body: Callable[[], None],
    max_rounds: int = 100000,
) -> int:
    """Repeat ``round_body`` until none of ``maps`` updated; returns rounds.

    ``round_body`` is one full BSP round: compute phases plus the sync
    collectives (which is where the maps' updated flags get set).

    With a fault injector installed on the cluster (``repro.faults``), the
    loop runs under the recoverable driver: it checkpoints the maps every
    ``checkpoint_interval`` rounds and, on an injected host crash, restores
    the last checkpoint and replays to an identical fixed point.
    """
    if isinstance(maps, NodePropMap):
        maps = [maps]
    cluster = maps[0].cluster if maps else None
    if cluster is not None and cluster.faults is not None:
        from repro.faults.recovery import run_recoverable_loop

        return run_recoverable_loop(
            cluster,
            maps,
            round_body,
            before_round=lambda: [m.reset_updated() for m in maps],
            converged=lambda: not any(m.is_updated() for m in maps),
            max_rounds=max_rounds,
            advance_rounds=True,
            on_max_rounds=lambda rounds: NonQuiescenceError(
                rounds, [m.name for m in maps]
            ),
        )
    rounds = 0
    while True:
        for prop_map in maps:
            prop_map.reset_updated()
        if cluster is not None:
            # Stamp every phase of this iteration with its BSP round id so
            # traces and profiles can attribute modeled time per round.
            cluster.advance_round()
        round_body()
        rounds += 1
        if not any(prop_map.is_updated() for prop_map in maps):
            return rounds
        if rounds >= max_rounds:
            raise NonQuiescenceError(max_rounds, [m.name for m in maps])
