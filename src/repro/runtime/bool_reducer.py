"""The distributed boolean reducer of Figure 4 (``BoolReducer``).

Tracks a cluster-wide boolean with per-host local flags OR-combined at an
explicit ``sync()`` (one small allreduce), mirroring how the paper's
``work_done`` flag decides whether hook + shortcut must repeat.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind


class BoolReducer:
    """A (distributed) concurrent reducer for a boolean value."""

    def __init__(self, cluster: Cluster, name: str = "bool") -> None:
        self.cluster = cluster
        self.name = name
        self._flags = [False] * cluster.num_hosts
        self._value = False

    def set_all(self, value: bool) -> None:
        """Reset the global value and all host-local flags (no races: init)."""
        self._flags = [bool(value)] * self.cluster.num_hosts
        self._value = bool(value)

    def reduce(self, host: int, value: bool) -> None:
        """OR ``value`` into the host-local flag (logical_or reduction)."""
        self.cluster.counters(host).local_ops += 1
        self._flags[host] = self._flags[host] or bool(value)

    def sync(self) -> None:
        """Combine host flags into the global value (one-byte allreduce)."""
        with self.cluster.phase(PhaseKind.REDUCE_SYNC, label=self.name):
            self.cluster.network.allreduce(1)
            self._value = any(self._flags)

    def read(self) -> bool:
        return self._value

    # Effect-carrier protocol (repro.exec.pool): the host flag is the only
    # state a compute phase mutates, and it is per-host addressable, so a
    # kernel that reduces into this object stays shardable by declaring it
    # in ``ScalarKernel.extra_effects``.

    def export_compute_effects(self, host: int) -> bool:
        return self._flags[host]

    def install_compute_effects(self, host: int, effects: bool, resolve_op) -> None:
        del resolve_op  # uniform carrier signature; no operators to resolve
        self._flags[host] = bool(effects)

    # Epoch protocol (warm worker reuse): between plan runs only the
    # coordinator executes driver code (``set_all``, ``sync``), so a new
    # run starts by replacing the workers' copy of the full state.

    def export_epoch_state(self) -> tuple[list[bool], bool]:
        return list(self._flags), self._value

    def install_epoch_state(self, state, resolve_op) -> None:
        del resolve_op
        flags, value = state
        self._flags = list(flags)
        self._value = bool(value)
