"""Output validators for every algorithm family.

Shared by the test suite, the examples, and downstream users who want to
check a run's output against ground truth (networkx where applicable).
Each function raises :class:`VerificationError` with a specific message on
the first violation, and returns quietly on success.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import networkx as nx
import numpy as np

from repro.graph.csr import Graph


class VerificationError(AssertionError):
    """An algorithm output failed validation."""


def _undirected(graph: Graph):
    return graph.to_networkx().to_undirected()


# --------------------------------------------------- run equivalence


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and value != value


def _values_match(want: Any, got: Any, tolerance: float) -> bool:
    # NaN is a legitimate fixed-point value (e.g. an uninitialized rank):
    # two NaNs agree with each other even though NaN != NaN.
    if _is_nan(want) or _is_nan(got):
        return _is_nan(want) and _is_nan(got)
    if want == got:
        # Exact match first: also covers inf == inf, whose difference is
        # NaN and would fail a naive tolerance comparison.
        return True
    if (
        tolerance > 0
        and isinstance(want, (int, float))
        and isinstance(got, (int, float))
    ):
        return abs(float(want) - float(got)) <= tolerance
    return False


def check_equivalent_values(
    expected: Mapping[int, Any],
    actual: Mapping[int, Any],
    tolerance: float = 0.0,
    map_name: str | None = None,
) -> None:
    """Two runs' per-node values must agree (run equivalence).

    Used by the fault-injection harness to certify that a crashed-and-
    recovered run converged to the same fixed point as the fault-free
    baseline, and by the async engine's verification against the BSP
    oracle (value-equivalence, not byte-identity). Numeric values may
    differ by up to ``tolerance`` (absolute); NaN compares equal to NaN;
    everything else must compare equal.

    The error reports *all* diverging nodes (count plus the first few),
    not just the first, so async-vs-BSP investigations see the shape of a
    divergence in one shot. ``map_name`` prefixes the report when the
    values belong to a named property map.
    """
    prefix = f"map {map_name!r}: " if map_name else ""
    if set(expected) != set(actual):
        only_expected = sorted(set(expected) - set(actual))[:5]
        only_actual = sorted(set(actual) - set(expected))[:5]
        raise VerificationError(
            f"{prefix}value key sets differ: only-expected {only_expected}, "
            f"only-actual {only_actual}"
        )
    mismatched = [
        node
        for node in expected
        if not _values_match(expected[node], actual[node], tolerance)
    ]
    if mismatched:
        shown = sorted(mismatched)[:5]
        detail = ", ".join(
            f"node {node}: {actual[node]!r} != expected {expected[node]!r}"
            for node in shown
        )
        suffix = f" (tolerance {tolerance})" if tolerance > 0 else ""
        raise VerificationError(
            f"{prefix}{len(mismatched)} of {len(expected)} nodes diverge"
            f"{suffix}: {detail}"
        )


def check_equivalent_value_maps(
    expected: Mapping[str, Mapping[int, Any]],
    actual: Mapping[str, Mapping[int, Any]],
    tolerance: float = 0.0,
    tolerances: Mapping[str, float] | None = None,
) -> None:
    """Multi-map run equivalence with per-map tolerance overrides.

    ``expected``/``actual`` map property-map names to per-node value
    dicts; ``tolerances`` overrides the default ``tolerance`` for named
    maps (e.g. ranks to 1e-6, labels exactly). The error names every
    diverging map, each with its own node-level report.
    """
    if set(expected) != set(actual):
        only_expected = sorted(set(expected) - set(actual))
        only_actual = sorted(set(actual) - set(expected))
        raise VerificationError(
            f"map sets differ: only-expected {only_expected}, "
            f"only-actual {only_actual}"
        )
    failures: list[str] = []
    for name in sorted(expected):
        map_tolerance = (
            tolerances[name]
            if tolerances is not None and name in tolerances
            else tolerance
        )
        try:
            check_equivalent_values(
                expected[name], actual[name], map_tolerance, map_name=name
            )
        except VerificationError as error:
            failures.append(str(error))
    if failures:
        raise VerificationError(
            f"{len(failures)} map(s) diverge: " + "; ".join(failures)
        )


# ---------------------------------------------------------- components


def expected_components(graph: Graph) -> dict[int, int]:
    """Ground truth: every node mapped to its component's minimum id."""
    expected: dict[int, int] = {}
    for component in nx.connected_components(_undirected(graph)):
        smallest = min(component)
        for node in component:
            expected[node] = smallest
    return expected


def check_components(graph: Graph, values: Mapping[int, Any]) -> None:
    """Values must equal the min-id component labeling exactly."""
    expected = expected_components(graph)
    for node in range(graph.num_nodes):
        if values.get(node) != expected[node]:
            raise VerificationError(
                f"node {node}: component {values.get(node)!r}, "
                f"expected {expected[node]}"
            )


# ---------------------------------------------------------------- MIS


def check_independent_set(graph: Graph, values: Mapping[int, int]) -> None:
    """Values (1=IN, 2=OUT) must form a maximal independent set."""
    nx_graph = _undirected(graph)
    for node in range(graph.num_nodes):
        if values.get(node) not in (1, 2):
            raise VerificationError(f"node {node} undecided: {values.get(node)!r}")
    for u, v in nx_graph.edges():
        if values[u] == 1 and values[v] == 1:
            raise VerificationError(f"adjacent nodes {u} and {v} both selected")
    for node in nx_graph.nodes():
        if values[node] != 1 and not any(
            values[m] == 1 for m in nx_graph.neighbors(node)
        ):
            raise VerificationError(f"node {node} excluded without a selected neighbor")


# ---------------------------------------------------------------- MSF


def check_spanning_forest(
    graph: Graph, forest: Iterable[tuple[int, int, float]]
) -> None:
    """The edges must form a minimum spanning forest (exact weight match)."""
    forest = list(forest)
    nx_graph = _undirected(graph)
    candidate = nx.Graph()
    candidate.add_nodes_from(range(graph.num_nodes))
    candidate.add_weighted_edges_from(forest)
    if not nx.is_forest(candidate):
        raise VerificationError("forest contains a cycle")
    if nx.number_connected_components(candidate) != nx.number_connected_components(
        nx_graph
    ):
        raise VerificationError("forest does not span every component")
    expected_weight = sum(
        data["weight"]
        for _, _, data in nx.minimum_spanning_edges(nx_graph, data=True)
    )
    actual_weight = sum(weight for _, _, weight in forest)
    if abs(actual_weight - expected_weight) > 1e-6 * max(expected_weight, 1.0):
        raise VerificationError(
            f"forest weight {actual_weight} != minimum {expected_weight}"
        )
    edge_set = {(min(u, v), max(u, v)) for u, v, _ in forest}
    for u, v, _ in forest:
        if not nx_graph.has_edge(u, v):
            raise VerificationError(f"forest edge ({u}, {v}) not in the graph")
    if len(edge_set) != len(forest):
        raise VerificationError("forest lists a duplicate edge")


# --------------------------------------------------------- communities


def check_community_partition(
    graph: Graph, values: Mapping[int, Any], require_connected: bool = False
) -> None:
    """Values must label every node; optionally every community connected
    (Leiden's guarantee)."""
    missing = [n for n in range(graph.num_nodes) if n not in values]
    if missing:
        raise VerificationError(f"nodes without a community: {missing[:5]}...")
    if require_connected:
        nx_graph = _undirected(graph)
        for community in set(values.values()):
            members = [n for n, c in values.items() if c == community]
            if members and not nx.is_connected(nx_graph.subgraph(members)):
                raise VerificationError(f"community {community!r} is disconnected")


def partition_modularity(graph: Graph, values: Mapping[int, Any]) -> float:
    from repro.algorithms.common import modularity

    labels = np.asarray([values[n] for n in range(graph.num_nodes)])
    # np.unique-compact non-integer labels
    _, compact = np.unique(labels, return_inverse=True)
    return modularity(graph, compact)


# -------------------------------------------------------- vertex cover


def check_vertex_cover(graph: Graph, in_cover: Mapping[int, bool]) -> None:
    """Every edge must have at least one covered endpoint."""
    for src, dst in graph.iter_edges():
        if not (in_cover.get(src) or in_cover.get(dst)):
            raise VerificationError(f"edge ({src}, {dst}) uncovered")


# -------------------------------------------------------------- k-core


def check_core_numbers(graph: Graph, values: Mapping[int, int]) -> None:
    """Core numbers must match networkx exactly."""
    simple = _undirected(graph)
    simple.remove_edges_from(nx.selfloop_edges(simple))
    expected = nx.core_number(simple)
    for node in range(graph.num_nodes):
        if values.get(node) != expected.get(node, 0):
            raise VerificationError(
                f"node {node}: core {values.get(node)!r}, expected {expected.get(node)}"
            )
